"""The orchestration platform (OP).

Owns the per-worker queues, the assignment policy, the GPIO bank, and
the telemetry collector.  Workers (built by :mod:`repro.cluster`) pull
jobs from their queues and report completions back here.

Job flow (Sec. IV-D): ``submit`` stamps the job, the policy picks a
queue, the push triggers a GPIO power-on if that worker is sleeping, the
worker boots/executes/reports, and ``wait_all`` lets experiments run the
simulation until every submitted job has completed.

Recovery (opt-in via a :class:`~repro.core.policies.RecoveryPolicy`):
jobs carry idempotency keys and are executed *at least once* — crash
resubmission, per-attempt timeouts with backoff, and straggler hedging
may all launch duplicate attempts, and ``complete``/``fail`` deliver
exactly the first result per logical job, suppressing the rest.  A
:class:`~repro.core.policies.WorkerHealthTracker` circuit breaker
quarantines flapping boards out of the scheduler's candidate set.
Without a policy the orchestrator behaves exactly as before.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.core.gpio import GpioBank
from repro.core.job import Job, JobStatus
from repro.core.platform import ARM
from repro.core.policies import RecoveryPolicy, WorkerHealthTracker
from repro.core.queue import RemoteQueueStub, WorkerQueue
from repro.core.scheduler import AssignmentPolicy, RandomSamplingPolicy
from repro.core.telemetry import InvocationRecord, TelemetryCollector
from repro.obs import trace as obs
from repro.obs.trace import NULL_RECORDER
from repro.sim.kernel import Environment, Event
from repro.workloads.profiles import profile_for


class Orchestrator:
    """The MicroFaaS control plane."""

    def __init__(
        self,
        env: Environment,
        policy: Optional[AssignmentPolicy] = None,
        gpio: Optional[GpioBank] = None,
        recovery: Optional[RecoveryPolicy] = None,
        telemetry: Optional[TelemetryCollector] = None,
        tracer=None,
    ):
        self.env = env
        self.policy = policy if policy is not None else RandomSamplingPolicy()
        self.gpio = gpio if gpio is not None else GpioBank()
        #: Span recorder (see :mod:`repro.obs`).  The default no-op
        #: recorder never samples, so ``job.trace_id`` stays None and
        #: every tracing hook below short-circuits on one comparison.
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        self.recovery = recovery
        self.health: Optional[WorkerHealthTracker] = (
            WorkerHealthTracker.from_policy(recovery)
            if recovery is not None
            else None
        )
        # Callers running at megatrace scale pass a streaming collector
        # (``TelemetryCollector(exact=False)``); the default retains
        # every record, as before.
        self.telemetry = (
            telemetry if telemetry is not None else TelemetryCollector()
        )
        #: When True, finished jobs are dropped from :attr:`jobs` (and
        #: the delivered-id set) as their results arrive, keeping OP
        #: memory O(in-flight) instead of O(all-time).  Only safe
        #: without a recovery policy — duplicate suppression and retry
        #: bookkeeping need the full history — so megatrace-scale runs
        #: opt in explicitly.
        self.evict_finished = False
        self.queues: List[WorkerQueue] = []
        self.jobs: Dict[int, Job] = {}
        self.dead_workers: set = set()
        #: Energy control plane (opt-in; see
        #: :mod:`repro.energy.controlplane` and
        #: :class:`~repro.core.policies.TenantBudgetController`).  With
        #: both left None every hook below is one comparison and the
        #: run is bit-identical to the pre-control-plane platform.
        self.ledger = None
        self.budgets = None
        self.jobs_shed = 0
        #: Optional ``(job_id, function) -> tenant`` hook consulted by
        #: :meth:`make_job` so trace replays (which never construct jobs
        #: themselves) can run tenanted without a per-call tenant column.
        self.tenant_namer = None
        self.resubmissions = 0
        #: Recovery counters (only move when a policy is installed).
        self.duplicates_suppressed = 0
        self.timeout_retries = 0
        self.hedges = 0
        self.jobs_lost = 0
        self._next_job_id = 0
        self._submitted = 0
        self._completed = 0
        self._drain_events: List[Event] = []
        #: Logical jobs whose (first) result has been delivered.
        self._done: Set[int] = set()
        #: Attempts launched / last-launch time per logical job.
        self._attempt_count: Dict[int, int] = {}
        self._attempt_started: Dict[int, float] = {}
        self._hedged: Set[int] = set()
        #: When each worker's board was first seen off with work queued.
        self._board_stuck_since: Dict[int, float] = {}
        self._supervisor_running = False
        #: Sharding hooks (see :mod:`repro.shard`).  ``assign_override``
        #: lets a shard runtime capture policy-driven assignments (chaos
        #: salvage) for the coordinator to replay globally; the
        #: ``on_*`` callbacks report completions and worker liveness
        #: transitions at window boundaries.  All default to ``None``
        #: and cost one comparison when unused.
        self.assign_override: Optional[Callable[[Job, Optional[int]], bool]] = None
        self.on_complete: Optional[Callable[[Job, InvocationRecord], None]] = None
        self.on_worker_dead: Optional[Callable[[int], None]] = None
        self.on_worker_alive: Optional[Callable[[int], None]] = None
        #: Job-completion subscribers (see :meth:`on_job_done`).
        self._job_done_callbacks: List[
            Callable[[Job, Optional[InvocationRecord]], None]
        ] = []

    # -- workers ---------------------------------------------------------------

    def add_worker(self, platform: str = ARM, stub: bool = False) -> WorkerQueue:
        """Create the queue for a new worker, returning it.

        ``platform`` is the worker's tag (see
        :mod:`repro.cluster.platform`); heterogeneous clusters register
        workers of several platforms and platform-aware policies read
        the tag off each candidate queue.

        ``stub=True`` registers a :class:`RemoteQueueStub` instead of a
        live queue — blueprint-built shards claim the global id without
        paying for a store, wake hook, or enqueue path the shard can
        never use (see :mod:`repro.cluster.blueprint`).
        """
        if stub:
            queue = RemoteQueueStub(
                worker_id=len(self.queues), platform=platform
            )
            self.queues.append(queue)
            return queue
        queue = WorkerQueue(
            self.env, worker_id=len(self.queues), platform=platform
        )
        queue.on_enqueue(lambda job, wid=queue.worker_id: self._wake(wid, job))
        self.queues.append(queue)
        return queue

    def add_worker_stubs(self, count: int, platform: str = ARM) -> None:
        """Register ``count`` consecutive remote-worker stub queues.

        Equivalent to ``count`` calls of ``add_worker(stub=True)``;
        blueprint-built shards claim whole remote spans through this
        bulk path.
        """
        queues = self.queues
        base = len(queues)
        queues.extend(
            [
                RemoteQueueStub(worker_id=base + offset, platform=platform)
                for offset in range(count)
            ]
        )

    @property
    def worker_count(self) -> int:
        return len(self.queues)

    def _wake(self, worker_id: int, job: Optional[Job] = None) -> None:
        """Power on a sleeping worker when a job lands in its queue."""
        try:
            self.gpio.line(worker_id)
        except KeyError:
            return  # worker manages its own power (e.g. microVM host)
        pulsed = self.gpio.assert_power_on(worker_id)
        if pulsed and job is not None and job.trace_id is not None:
            self.tracer.annotate(
                job.trace_id, obs.POWER_ON, self.env.now,
                worker_id=worker_id,
            )

    def _is_powered(self, worker_id: int) -> bool:
        try:
            return self.gpio.line(worker_id).is_powered()
        except KeyError:
            return True

    # -- worker health -------------------------------------------------------------

    def mark_worker_dead(self, worker_id: int) -> None:
        """Stop assigning jobs to a failed worker."""
        if not 0 <= worker_id < len(self.queues):
            raise KeyError(f"no worker {worker_id}")
        self.dead_workers.add(worker_id)
        if len(self.dead_workers) == len(self.queues):
            raise RuntimeError("every worker is dead; cluster is lost")
        if self.on_worker_dead is not None:
            self.on_worker_dead(worker_id)

    def mark_worker_alive(self, worker_id: int) -> None:
        """A replaced/repaired worker rejoins the assignment pool."""
        self.dead_workers.discard(worker_id)
        if self.on_worker_alive is not None:
            self.on_worker_alive(worker_id)

    def note_worker_failure(self, worker_id: int) -> None:
        """Feed one failure observation into the circuit breaker."""
        if self.health is not None:
            self.health.record_failure(worker_id, self.env.now)

    def note_worker_recovered(self, worker_id: int) -> None:
        """A repaired worker rejoins with a clean breaker."""
        if self.health is not None:
            self.health.reset(worker_id, self.env.now)

    def _alive_queues(self) -> List[WorkerQueue]:
        if not self.dead_workers:
            # Fast path for healthy clusters: no per-submit list copy.
            # Callers only read/index the candidate list, never mutate.
            return self.queues
        return [
            queue for queue in self.queues
            if queue.worker_id not in self.dead_workers
        ]

    def _candidate_queues(self, exclude: Optional[int] = None) -> List[WorkerQueue]:
        """Schedulable queues: alive, un-quarantined, optionally minus one.

        Falls back one constraint at a time — the breaker never starves
        the cluster: if every alive worker is quarantined we schedule on
        alive workers anyway, and the ``exclude`` preference (avoid the
        worker a retry/hedge is fleeing) yields when it would leave no
        candidates.
        """
        alive = self._alive_queues()
        candidates = alive
        if self.health is not None:
            now = self.env.now
            healthy = [
                queue for queue in alive
                if self.health.is_available(queue.worker_id, now)
            ]
            if healthy:
                candidates = healthy
        if exclude is not None:
            spread = [q for q in candidates if q.worker_id != exclude]
            if spread:
                candidates = spread
        return candidates

    # -- job submission -----------------------------------------------------------

    def make_job(self, function: str) -> Job:
        """Build a job for ``function`` using its calibrated payload sizes."""
        profile = profile_for(function)
        job = Job(
            job_id=self._next_job_id,
            function=function,
            input_bytes=profile.input_bytes,
            output_bytes=profile.output_bytes,
        )
        self._next_job_id += 1
        if self.tenant_namer is not None:
            job.tenant = self.tenant_namer(job.job_id, function)
        return job

    def _assign(self, job: Job, exclude: Optional[int] = None) -> None:
        """Pick a schedulable queue via the policy and push the job."""
        if self.assign_override is not None and self.assign_override(job, exclude):
            return
        candidates = self._candidate_queues(exclude)
        if not candidates:
            raise RuntimeError("no alive workers available")
        index = self.policy.select(job, candidates, self._is_powered)
        if not 0 <= index < len(candidates):
            raise RuntimeError(
                f"policy {self.policy.name!r} chose invalid queue {index}"
            )
        if job.trace_id is not None:
            self.tracer.annotate(
                job.trace_id, obs.ASSIGN, self.env.now,
                worker_id=candidates[index].worker_id,
                attrs={
                    "policy": self.policy.name,
                    "candidates": len(candidates),
                },
            )
        candidates[index].push(job)

    def submit(self, job: Job) -> Job:
        """Accept a job and assign it to a worker queue."""
        if not self.queues:
            raise RuntimeError("no workers registered")
        if job.job_id in self.jobs:
            raise ValueError(f"job {job.job_id} already submitted")
        job.t_submit = self.env.now
        if job.idempotency_key is None:
            job.idempotency_key = f"{job.function}/{job.job_id}"
        # Head-based sampling: one decision per logical job, made here
        # so hedges and retries (clones) inherit the trace.
        if self.tracer.enabled and self.tracer.sample(job.job_id):
            job.trace_id = job.job_id
            self.tracer.begin_trace(
                job.trace_id, self.env.now, job.function,
                attrs={"idempotency_key": job.idempotency_key},
            )
            self.tracer.annotate(job.trace_id, obs.SUBMIT, self.env.now)
        self.jobs[job.job_id] = job
        self._submitted += 1
        if self.recovery is not None:
            self._attempt_count[job.job_id] = 1
            self._attempt_started[job.job_id] = self.env.now
            if not self._supervisor_running:
                self._supervisor_running = True
                self.env.process(self._supervise())
        if self.budgets is not None and job.tenant is not None:
            verdict, delay = self.budgets.admit(job, self.env.now)
            if verdict == "shed":
                self._shed(job)
                return job
            if verdict == "delay":
                if self.recovery is not None:
                    # Count the hold against the attempt clock so the
                    # supervisor doesn't fire a retry for the wait.
                    self._attempt_started[job.job_id] = self.env.now + delay
                self.env.process(self._launch_later(job, delay, exclude=None))
                return job
        self._assign(job)
        return job

    def submit_assigned(self, job: Job, worker_id: int) -> Job:
        """Accept a job whose placement was decided elsewhere.

        Identical to :meth:`submit` except the assignment policy is
        never consulted — the caller (a shard coordinator replaying the
        policy on global queue state) names the target worker directly.
        Stamps, traces, and counters match :meth:`submit` exactly.
        """
        if not 0 <= worker_id < len(self.queues):
            raise KeyError(f"no worker {worker_id}")
        if job.job_id in self.jobs:
            raise ValueError(f"job {job.job_id} already submitted")
        job.t_submit = self.env.now
        if job.idempotency_key is None:
            job.idempotency_key = f"{job.function}/{job.job_id}"
        if self.tracer.enabled and self.tracer.sample(job.job_id):
            job.trace_id = job.job_id
            self.tracer.begin_trace(
                job.trace_id, self.env.now, job.function,
                attrs={"idempotency_key": job.idempotency_key},
            )
            self.tracer.annotate(job.trace_id, obs.SUBMIT, self.env.now)
        self.jobs[job.job_id] = job
        self._submitted += 1
        if job.trace_id is not None:
            self.tracer.annotate(
                job.trace_id, obs.ASSIGN, self.env.now,
                worker_id=worker_id,
                attrs={"policy": self.policy.name, "candidates": -1},
            )
        self.queues[worker_id].push(job)
        return job

    def adopt_job(self, job: Job, worker_id: int) -> Job:
        """Take over a mid-flight job migrated from another shard.

        The job keeps its original ``t_submit``/attempt bookkeeping; it
        is simply pushed onto the named local queue at the current time
        (the chaos-detection boundary where the coordinator reassigned
        it).
        """
        if not 0 <= worker_id < len(self.queues):
            raise KeyError(f"no worker {worker_id}")
        if job.job_id in self.jobs:
            raise ValueError(f"job {job.job_id} already present")
        self.jobs[job.job_id] = job
        self._submitted += 1
        self.queues[worker_id].push(job)
        return job

    def release_job(self, job_id: int) -> Job:
        """Hand a mid-flight job off to another shard (the inverse of
        :meth:`adopt_job`): forget it locally without completing it."""
        job = self.jobs.pop(job_id)
        self._submitted -= 1
        return job

    def resubmit(self, job: Job) -> Job:
        """Reassign a job lost to a worker fault (no double-counting)."""
        if job.job_id not in self.jobs:
            raise KeyError(f"unknown job {job.job_id}")
        if job.is_finished:
            raise ValueError(f"job {job.job_id} already finished")
        if job.worker_id is not None:
            self.queues[job.worker_id].job_finished()
        if job.trace_id is not None:
            self._trace_attempt_lost(job, "crashed")
            self.tracer.annotate(
                job.trace_id, obs.RESUBMIT, self.env.now,
                worker_id=job.worker_id,
            )
        if self.ledger is not None:
            # Before reset_for_retry clears the window's endpoints.
            self.ledger.bill_crashed_attempt(job, self.env.now)
        job.reset_for_retry()
        self.resubmissions += 1
        self._assign(job)
        return job

    def recover_job(self, job: Job) -> bool:
        """Tolerant resubmission for chaos recovery paths.

        Unlike :meth:`resubmit`, this accepts attempts salvaged from a
        dead worker's queue whose logical job already finished elsewhere
        (a hedge or an earlier attempt won the race): those release
        their queue slot and are dropped.  Returns True when the attempt
        was actually reassigned.
        """
        if job.worker_id is not None:
            self.queues[job.worker_id].job_finished()
        canonical = self.jobs.get(job.job_id)
        if job.job_id in self._done or job.is_finished:
            self._trace_drop_attempt(job)
            return False
        if canonical is not None and canonical is not job and canonical.is_finished:
            self._trace_drop_attempt(job)
            return False
        if job.trace_id is not None:
            self._trace_attempt_lost(job, "crashed")
            self.tracer.annotate(
                job.trace_id, obs.RESUBMIT, self.env.now,
                worker_id=job.worker_id,
            )
        if self.ledger is not None:
            self.ledger.bill_crashed_attempt(job, self.env.now)
        job.reset_for_retry()
        self.resubmissions += 1
        if self.recovery is not None:
            self._attempt_count[job.job_id] = (
                self._attempt_count.get(job.job_id, 1) + 1
            )
            self._attempt_started[job.job_id] = self.env.now
        self._assign(job)
        return True

    def submit_function(self, function: str) -> Job:
        """Shorthand: build and submit one invocation of ``function``."""
        return self.submit(self.make_job(function))

    def submit_batch(self, functions: Iterable[str]) -> List[Job]:
        """Submit one job per function name, in order.

        Submission events (worker wake-ups, dispatch timers) are collected
        in a kernel bulk window and heap-merged once at the end — same
        firing order as N individual submits, without N heap pushes.
        """
        env = self.env
        env.begin_bulk()
        try:
            return [self.submit_function(name) for name in functions]
        finally:
            env.end_bulk()

    # -- arrivals -------------------------------------------------------------------

    def paper_arrival_process(
        self,
        functions: Sequence[str],
        jobs_per_interval: int,
        total_jobs: int,
        interval_s: float = 1.0,
        rng: Optional[random.Random] = None,
    ):
        """Sec. IV-D arrivals: every second, add jobs to random queues.

        Run as a process: ``env.process(op.paper_arrival_process(...))``.
        Functions are drawn round-robin from ``functions`` so every
        function gets an equal share (the Sec. V experiments issue 1,000
        invocations of each).

        The whole schedule is pre-sampled before the clock moves: the
        process then just submits one batch per interval, so each
        interval costs one timeout event regardless of batch size, and
        the submission order (hence every downstream draw) matches the
        old per-job loop exactly.
        """
        if jobs_per_interval < 1:
            raise ValueError("jobs_per_interval must be >= 1")
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        count = len(functions)
        batches = [
            [
                functions[issued % count]
                for issued in range(
                    first, min(first + jobs_per_interval, total_jobs)
                )
            ]
            for first in range(0, total_jobs, jobs_per_interval)
        ]
        for batch in batches:
            self.submit_batch(batch)
            yield self.env.timeout(interval_s)

    # -- completion ---------------------------------------------------------------

    def on_job_done(
        self,
        callback: Callable[[Job, Optional[InvocationRecord]], None],
    ) -> None:
        """Subscribe to logical-job resolution (push, not poll).

        ``callback(job, record)`` fires exactly once per logical job,
        at the simulated instant its first result is delivered —
        *before* eviction, so the job object is always live inside the
        callback even on ``evict_finished`` runs:

        - completion: ``record`` is the delivered
          :class:`~repro.core.telemetry.InvocationRecord`;
        - terminal failure or an abandoned deadline: ``record`` is
          ``None`` and ``job.failure`` names the reason.

        Suppressed duplicate attempts (hedges/retries losing the race)
        never fire.  Unlike :attr:`on_complete` — a single slot owned
        by the shard/federation runtimes, which also skips the failure
        paths — any number of subscribers may register here, and
        registration never perturbs the simulation: callbacks run
        synchronously inside the delivery event and draw no RNG.
        """
        self._job_done_callbacks.append(callback)

    def _notify_job_done(
        self, job: Job, record: Optional[InvocationRecord]
    ) -> None:
        for callback in self._job_done_callbacks:
            callback(job, record)

    def is_delivered(self, job_id: int) -> bool:
        """Whether the logical job's (first) result has been delivered.

        Workers consult this at claim time — the idempotency-key check —
        so a stranded duplicate attempt is discarded instead of executed.
        """
        return job_id in self._done

    def _trace_attempt_lost(self, job: Job, outcome: str) -> None:
        """Close a traced job's open attempt span (crash/loss paths)."""
        if job.trace_attempt is not None:
            self.tracer.end_attempt(
                job.trace_id, job.trace_attempt, self.env.now,
                attrs={"outcome": outcome},
            )
            job.trace_attempt = None

    def _trace_drop_attempt(self, job: Job) -> None:
        """A salvaged attempt turned out stale: mark it discarded."""
        if job.trace_id is None:
            return
        self._trace_attempt_lost(job, "discarded")
        self.tracer.annotate(
            job.trace_id, obs.DISCARDED, self.env.now,
            worker_id=job.worker_id,
        )

    def discard_stale_attempt(self, job: Job) -> None:
        """Release a popped attempt whose logical job already delivered."""
        if job.worker_id is not None:
            self.queues[job.worker_id].job_finished()
        if self.recovery is not None:
            self.duplicates_suppressed += 1
        self._trace_drop_attempt(job)

    def _fire_drain_events(self) -> None:
        if self._completed == self._submitted:
            for event in self._drain_events:
                if not event.triggered:
                    event.succeed(self._completed)
            self._drain_events.clear()

    def complete(self, job: Job, record: InvocationRecord) -> None:
        """Worker callback: an attempt finished; deliver at most one result.

        The first result per logical job is recorded; later duplicates
        (a hedge and its original both ran to completion — boards
        cannot cancel in-flight work) release their queue slot and are
        suppressed without touching telemetry or counters.
        """
        if job.job_id not in self.jobs:
            raise KeyError(f"unknown job {job.job_id}")
        now = self.env.now
        if job.worker_id is not None:
            self.queues[job.worker_id].job_finished()
            if self.health is not None:
                self.health.record_success(job.worker_id, now)
        if self.recovery is not None and job.job_id in self._done:
            self.duplicates_suppressed += 1
            if self.ledger is not None:
                # The race was lost: this attempt's joules are waste.
                self.ledger.bill_attempt(job, now, delivered=False)
            if not job.is_finished:
                job.transition(JobStatus.COMPLETED, now)
            return
        self._done.add(job.job_id)
        if self.ledger is not None:
            self.ledger.bill_attempt(job, now, delivered=True)
        job.transition(JobStatus.COMPLETED, now)
        canonical = self.jobs[job.job_id]
        if canonical is not job and not canonical.is_finished:
            canonical.absorb_completion(now)
        if job.trace_id is not None:
            # The delivering attempt span is still open (the worker
            # closes it after post-job housekeeping), so the trace
            # seals only once its reboot/shutdown spans are in.
            self.tracer.mark_delivered(
                job.trace_id, now, status="completed",
                attempt_id=job.trace_attempt,
            )
        self.telemetry.record(record)
        self._completed += 1
        if self.on_complete is not None:
            self.on_complete(job, record)
        if self._job_done_callbacks:
            self._notify_job_done(job, record)
        if self.evict_finished and self.recovery is None:
            del self.jobs[job.job_id]
            self._done.discard(job.job_id)
        self._fire_drain_events()

    def fail(self, job: Job, reason: str) -> None:
        """Worker callback: an attempt failed terminally."""
        now = self.env.now
        if job.worker_id is not None:
            self.queues[job.worker_id].job_finished()
            if self.health is not None:
                self.health.record_failure(job.worker_id, now)
        if self.recovery is not None and job.job_id in self._done:
            self.duplicates_suppressed += 1
            if self.ledger is not None:
                self.ledger.bill_attempt(job, now, delivered=False)
            if not job.is_finished:
                job.failure = reason
                job.transition(JobStatus.FAILED, now)
            return
        self._done.add(job.job_id)
        if self.ledger is not None:
            self.ledger.bill_attempt(job, now, delivered=False)
        job.failure = reason
        job.transition(JobStatus.FAILED, now)
        if job.trace_id is not None:
            self.tracer.mark_delivered(
                job.trace_id, now, status="failed",
                attempt_id=job.trace_attempt,
            )
        canonical = self.jobs.get(job.job_id)
        if canonical is not None and canonical is not job and not canonical.is_finished:
            canonical.failure = reason
            canonical.status = JobStatus.FAILED
            canonical.t_completed = now
        if self._job_done_callbacks:
            self._notify_job_done(job, None)
        self._completed += 1
        self._fire_drain_events()

    # -- recovery supervision ------------------------------------------------------

    def _supervise(self):
        """Recovery supervisor: scan in-flight jobs every ``tick_s``.

        Runs only when a :class:`RecoveryPolicy` is installed.  Draws no
        random numbers (jitter is hashed from job ids), so its presence
        never perturbs the simulation's RNG streams — a zero-fault run
        with recovery enabled is bit-identical to one without.
        """
        policy = self.recovery
        try:
            while self.pending > 0:
                yield self.env.timeout(policy.tick_s)
                now = self.env.now
                self._scan_jobs(policy, now)
                self._scan_stuck_workers(policy, now)
        finally:
            # Re-armed by the next submit() if more work arrives.
            self._supervisor_running = False

    def _scan_jobs(self, policy: RecoveryPolicy, now: float) -> None:
        for job_id, job in self.jobs.items():
            if job_id in self._done or job.is_finished:
                continue
            if (
                policy.job_deadline_s is not None
                and job.t_submit is not None
                and now - job.t_submit >= policy.job_deadline_s
            ):
                self._give_up(job, now)
                continue
            if job.t_started is None:
                # Still queued: saturation makes long waits normal, and
                # stranded queues are the stuck-worker scan's problem.
                continue
            launched = max(job.t_started, self._attempt_started.get(job_id, 0.0))
            age = now - launched
            count = self._attempt_count.get(job_id, 1)
            if age >= policy.attempt_timeout_s and count < policy.max_attempts:
                self._retry(job, count, now)
            elif (
                policy.hedge_after_s is not None
                and job_id not in self._hedged
                and age >= policy.hedge_after_s
                and count < policy.max_attempts
            ):
                self._hedge(job)

    def _shed(self, job: Job) -> None:
        """Budget shed: reject an over-budget tenant's submission.

        Shaped exactly like :meth:`_give_up` — the job resolves FAILED
        with a named reason, subscribers fire once, drain accounting
        stays balanced — but counted separately: shedding is a policy
        choice, not a loss.
        """
        now = self.env.now
        self._done.add(job.job_id)
        job.failure = "energy budget exhausted"
        job.status = JobStatus.FAILED
        job.t_completed = now
        if job.trace_id is not None:
            self.tracer.mark_delivered(job.trace_id, now, status="shed")
        self.jobs_shed += 1
        if self._job_done_callbacks:
            self._notify_job_done(job, None)
        self._completed += 1
        self._fire_drain_events()

    def _give_up(self, job: Job, now: float) -> None:
        """Deadline exceeded: abandon the job (the only loss path)."""
        self._done.add(job.job_id)
        job.failure = "deadline exceeded"
        job.status = JobStatus.FAILED
        job.t_completed = now
        if job.trace_id is not None:
            self.tracer.mark_delivered(job.trace_id, now, status="lost")
        self.jobs_lost += 1
        if self._job_done_callbacks:
            self._notify_job_done(job, None)
        self._completed += 1
        self._fire_drain_events()

    def _retry(self, job: Job, count: int, now: float) -> None:
        """The running attempt timed out: back off, then relaunch."""
        self.timeout_retries += 1
        self._attempt_count[job.job_id] = count + 1
        if job.worker_id is not None:
            self.note_worker_failure(job.worker_id)
        delay = self.recovery.backoff_s(count, job.job_id)
        # Stamp the launch time now (including the backoff) so the next
        # tick does not fire a second retry for the same stall.
        self._attempt_started[job.job_id] = now + delay
        if job.trace_id is not None:
            self.tracer.annotate(
                job.trace_id, obs.RETRY, now, worker_id=job.worker_id,
                attrs={"attempt": count + 1, "backoff_s": delay},
            )
        clone = job.spawn_attempt()
        self.env.process(
            self._launch_later(clone, delay, exclude=job.worker_id)
        )

    def _hedge(self, job: Job) -> None:
        """Straggler detected: launch one duplicate on another worker."""
        self.hedges += 1
        self._hedged.add(job.job_id)
        self._attempt_count[job.job_id] = (
            self._attempt_count.get(job.job_id, 1) + 1
        )
        if job.trace_id is not None:
            self.tracer.annotate(
                job.trace_id, obs.HEDGE, self.env.now,
                worker_id=job.worker_id,
            )
        clone = job.spawn_attempt()
        self._assign(clone, exclude=job.worker_id)

    def _launch_later(self, clone: Job, delay: float, exclude: Optional[int]):
        if delay > 0:
            yield self.env.timeout(delay)
        if clone.job_id in self._done:
            return
        try:
            self._assign(clone, exclude=exclude)
        except RuntimeError:
            # No alive workers right now; the next timeout retry (or a
            # chaos repair) will try again.
            pass

    def _scan_stuck_workers(self, policy: RecoveryPolicy, now: float) -> None:
        """Recover queues stranded on boards that are off but owe work.

        A stuck GPIO line (or a boot that never completed) leaves a
        powered-off board with a non-empty queue and no process able to
        serve it.  After ``stuck_worker_grace_s`` of that state the
        worker is declared dead and its queue recovered, exactly like a
        crash detection.
        """
        for queue in self.queues:
            wid = queue.worker_id
            if wid in self.dead_workers:
                self._board_stuck_since.pop(wid, None)
                continue
            if queue.outstanding > 0 and not self._is_powered(wid):
                since = self._board_stuck_since.setdefault(wid, now)
                if now - since >= policy.stuck_worker_grace_s:
                    self._board_stuck_since.pop(wid, None)
                    self._recover_stuck_worker(wid)
            else:
                self._board_stuck_since.pop(wid, None)

    def _recover_stuck_worker(self, worker_id: int) -> None:
        if len(self.dead_workers) + 1 >= len(self.queues):
            return  # never kill the last alive worker from a scan
        self.mark_worker_dead(worker_id)
        self.note_worker_failure(worker_id)
        for job in self.queues[worker_id].drain():
            self.recover_job(job)

    @property
    def pending(self) -> int:
        return self._submitted - self._completed

    def wait_all(self) -> Event:
        """Event that fires when every submitted job has finished."""
        event = Event(self.env)
        if self._submitted == self._completed and self._submitted > 0:
            event.succeed(self._completed)
        else:
            self._drain_events.append(event)
        return event


__all__ = ["Orchestrator"]
