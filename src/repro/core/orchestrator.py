"""The orchestration platform (OP).

Owns the per-worker queues, the assignment policy, the GPIO bank, and
the telemetry collector.  Workers (built by :mod:`repro.cluster`) pull
jobs from their queues and report completions back here.

Job flow (Sec. IV-D): ``submit`` stamps the job, the policy picks a
queue, the push triggers a GPIO power-on if that worker is sleeping, the
worker boots/executes/reports, and ``wait_all`` lets experiments run the
simulation until every submitted job has completed.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.gpio import GpioBank
from repro.core.job import Job, JobStatus
from repro.core.queue import WorkerQueue
from repro.core.scheduler import AssignmentPolicy, RandomSamplingPolicy
from repro.core.telemetry import InvocationRecord, TelemetryCollector
from repro.sim.kernel import Environment, Event
from repro.workloads.profiles import profile_for


class Orchestrator:
    """The MicroFaaS control plane."""

    def __init__(
        self,
        env: Environment,
        policy: Optional[AssignmentPolicy] = None,
        gpio: Optional[GpioBank] = None,
    ):
        self.env = env
        self.policy = policy if policy is not None else RandomSamplingPolicy()
        self.gpio = gpio if gpio is not None else GpioBank()
        self.telemetry = TelemetryCollector()
        self.queues: List[WorkerQueue] = []
        self.jobs: Dict[int, Job] = {}
        self.dead_workers: set = set()
        self.resubmissions = 0
        self._next_job_id = 0
        self._submitted = 0
        self._completed = 0
        self._drain_events: List[Event] = []

    # -- workers ---------------------------------------------------------------

    def add_worker(self) -> WorkerQueue:
        """Create the queue for a new worker, returning it."""
        queue = WorkerQueue(self.env, worker_id=len(self.queues))
        queue.on_enqueue(lambda _job, wid=queue.worker_id: self._wake(wid))
        self.queues.append(queue)
        return queue

    @property
    def worker_count(self) -> int:
        return len(self.queues)

    def _wake(self, worker_id: int) -> None:
        """Power on a sleeping worker when a job lands in its queue."""
        try:
            self.gpio.line(worker_id)
        except KeyError:
            return  # worker manages its own power (e.g. microVM host)
        self.gpio.assert_power_on(worker_id)

    def _is_powered(self, worker_id: int) -> bool:
        try:
            return self.gpio.line(worker_id).is_powered()
        except KeyError:
            return True

    # -- worker health -------------------------------------------------------------

    def mark_worker_dead(self, worker_id: int) -> None:
        """Stop assigning jobs to a failed worker."""
        if not 0 <= worker_id < len(self.queues):
            raise KeyError(f"no worker {worker_id}")
        self.dead_workers.add(worker_id)
        if len(self.dead_workers) == len(self.queues):
            raise RuntimeError("every worker is dead; cluster is lost")

    def mark_worker_alive(self, worker_id: int) -> None:
        """A replaced/repaired worker rejoins the assignment pool."""
        self.dead_workers.discard(worker_id)

    def _alive_queues(self) -> List[WorkerQueue]:
        return [
            queue for queue in self.queues
            if queue.worker_id not in self.dead_workers
        ]

    # -- job submission -----------------------------------------------------------

    def make_job(self, function: str) -> Job:
        """Build a job for ``function`` using its calibrated payload sizes."""
        profile = profile_for(function)
        job = Job(
            job_id=self._next_job_id,
            function=function,
            input_bytes=profile.input_bytes,
            output_bytes=profile.output_bytes,
        )
        self._next_job_id += 1
        return job

    def _assign(self, job: Job) -> None:
        """Pick an alive queue via the policy and push the job."""
        candidates = self._alive_queues()
        if not candidates:
            raise RuntimeError("no alive workers available")
        index = self.policy.select(job, candidates, self._is_powered)
        if not 0 <= index < len(candidates):
            raise RuntimeError(
                f"policy {self.policy.name!r} chose invalid queue {index}"
            )
        candidates[index].push(job)

    def submit(self, job: Job) -> Job:
        """Accept a job and assign it to a worker queue."""
        if not self.queues:
            raise RuntimeError("no workers registered")
        if job.job_id in self.jobs:
            raise ValueError(f"job {job.job_id} already submitted")
        job.t_submit = self.env.now
        self.jobs[job.job_id] = job
        self._submitted += 1
        self._assign(job)
        return job

    def resubmit(self, job: Job) -> Job:
        """Reassign a job lost to a worker fault (no double-counting)."""
        if job.job_id not in self.jobs:
            raise KeyError(f"unknown job {job.job_id}")
        if job.is_finished:
            raise ValueError(f"job {job.job_id} already finished")
        if job.worker_id is not None:
            self.queues[job.worker_id].job_finished()
        job.reset_for_retry()
        self.resubmissions += 1
        self._assign(job)
        return job

    def submit_function(self, function: str) -> Job:
        """Shorthand: build and submit one invocation of ``function``."""
        return self.submit(self.make_job(function))

    def submit_batch(self, functions: Iterable[str]) -> List[Job]:
        """Submit one job per function name, in order."""
        return [self.submit_function(name) for name in functions]

    # -- arrivals -------------------------------------------------------------------

    def paper_arrival_process(
        self,
        functions: Sequence[str],
        jobs_per_interval: int,
        total_jobs: int,
        interval_s: float = 1.0,
        rng: Optional[random.Random] = None,
    ):
        """Sec. IV-D arrivals: every second, add jobs to random queues.

        Run as a process: ``env.process(op.paper_arrival_process(...))``.
        Functions are drawn round-robin from ``functions`` so every
        function gets an equal share (the Sec. V experiments issue 1,000
        invocations of each).
        """
        if jobs_per_interval < 1:
            raise ValueError("jobs_per_interval must be >= 1")
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        rng = rng if rng is not None else random.Random(1)
        issued = 0
        while issued < total_jobs:
            batch = min(jobs_per_interval, total_jobs - issued)
            for _ in range(batch):
                function = functions[issued % len(functions)]
                self.submit_function(function)
                issued += 1
            yield self.env.timeout(interval_s)

    # -- completion ---------------------------------------------------------------

    def complete(self, job: Job, record: InvocationRecord) -> None:
        """Worker callback: a job finished; record its telemetry."""
        if job.job_id not in self.jobs:
            raise KeyError(f"unknown job {job.job_id}")
        job.transition(JobStatus.COMPLETED, self.env.now)
        if job.worker_id is not None:
            self.queues[job.worker_id].job_finished()
        self.telemetry.record(record)
        self._completed += 1
        if self._completed == self._submitted:
            for event in self._drain_events:
                if not event.triggered:
                    event.succeed(self._completed)
            self._drain_events.clear()

    def fail(self, job: Job, reason: str) -> None:
        """Worker callback: a job failed."""
        job.failure = reason
        job.transition(JobStatus.FAILED, self.env.now)
        if job.worker_id is not None:
            self.queues[job.worker_id].job_finished()
        self._completed += 1
        if self._completed == self._submitted:
            for event in self._drain_events:
                if not event.triggered:
                    event.succeed(self._completed)
            self._drain_events.clear()

    @property
    def pending(self) -> int:
        return self._submitted - self._completed

    def wait_all(self) -> Event:
        """Event that fires when every submitted job has finished."""
        event = Event(self.env)
        if self._submitted == self._completed and self._submitted > 0:
            event.succeed(self._completed)
        else:
            self._drain_events.append(event)
        return event


__all__ = ["Orchestrator"]
