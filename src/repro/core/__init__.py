"""MicroFaaS cluster orchestration platform (the paper's OP).

The orchestration platform (Sec. IV-D) is the paper's control plane: it
keeps one job queue per worker, assigns each incoming invocation to a
queue (the paper samples queues uniformly at random), powers workers on
and off through GPIO lines, and records the timestamps every experiment
in Sec. V is computed from.

- :mod:`repro.core.job` — jobs, status lifecycle, invocation records.
- :mod:`repro.core.queue` — per-worker job queues.
- :mod:`repro.core.scheduler` — assignment policies (random sampling
  plus round-robin / least-loaded / packing extensions).
- :mod:`repro.core.gpio` — the PWR_BUT control lines.
- :mod:`repro.core.lifecycle` — the run-to-completion worker policy
  (reboot between jobs, power off when idle).
- :mod:`repro.core.telemetry` — data collection and aggregate metrics.
- :mod:`repro.core.policies` — recovery policies (retry budgets,
  hedging, per-worker circuit breakers) for at-least-once execution.
- :mod:`repro.core.orchestrator` — the OP itself.
"""

from repro.core.gpio import GpioBank
from repro.core.job import Job, JobStatus
from repro.core.lifecycle import RunToCompletionPolicy
from repro.core.orchestrator import Orchestrator
from repro.core.policies import (
    BreakerState,
    BudgetPolicy,
    RecoveryPolicy,
    TenantBudgetController,
    WorkerHealthTracker,
)
from repro.core.queue import WorkerQueue
from repro.core.scheduler import (
    AssignmentPolicy,
    CarbonAwarePolicy,
    EnergyAwarePolicy,
    LeastLoadedPolicy,
    PackingPolicy,
    RandomSamplingPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.core.telemetry import InvocationRecord, TelemetryCollector
from repro.core.warmpool import WarmPool

__all__ = [
    "AssignmentPolicy",
    "BreakerState",
    "BudgetPolicy",
    "CarbonAwarePolicy",
    "EnergyAwarePolicy",
    "GpioBank",
    "InvocationRecord",
    "Job",
    "JobStatus",
    "LeastLoadedPolicy",
    "Orchestrator",
    "PackingPolicy",
    "RandomSamplingPolicy",
    "RecoveryPolicy",
    "RoundRobinPolicy",
    "RunToCompletionPolicy",
    "TelemetryCollector",
    "TenantBudgetController",
    "WorkerHealthTracker",
    "WorkerQueue",
    "make_policy",
]
