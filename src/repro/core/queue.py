"""Per-worker job queues.

The OP "maintains a job queue for each worker" (Sec. IV-D).  A
:class:`WorkerQueue` wraps a simulation :class:`~repro.sim.resources.Store`
with job bookkeeping: depth statistics and the enqueue hook the
orchestrator uses to trigger GPIO power-on for sleeping workers.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.job import Job, JobStatus
from repro.core.platform import ARM
from repro.sim.kernel import Environment
from repro.sim.resources import Store


class WorkerQueue:
    """FIFO job queue owned by one worker."""

    def __init__(self, env: Environment, worker_id: int, platform: str = ARM):
        self.env = env
        self.worker_id = worker_id
        #: Worker platform tag (see :mod:`repro.core.platform`) —
        #: the per-worker dimension platform-aware assignment policies
        #: read when choosing among heterogeneous candidates.
        self.platform = platform
        self._store = Store(env)
        self.jobs_enqueued = 0
        self.jobs_dequeued = 0
        #: Jobs assigned here and not yet completed (queued + in-flight).
        #: This is the load signal join-shortest-queue policies need —
        #: depth alone misses the job the worker is executing.
        self.outstanding = 0
        self.peak_depth = 0
        self._on_enqueue: List[Callable[[Job], None]] = []

    @property
    def depth(self) -> int:
        """Jobs currently waiting."""
        return len(self._store)

    def on_enqueue(self, callback: Callable[[Job], None]) -> None:
        """Register a hook fired on every enqueue (e.g. GPIO power-on)."""
        self._on_enqueue.append(callback)

    def push(self, job: Job) -> None:
        """Enqueue a job (the store is unbounded, so this never blocks)."""
        job.worker_id = self.worker_id
        job.transition(JobStatus.QUEUED, self.env.now)
        self._store.put(job)
        self.jobs_enqueued += 1
        self.outstanding += 1
        self.peak_depth = max(self.peak_depth, self.depth)
        for callback in self._on_enqueue:
            callback(job)

    def pop(self):
        """Event that fires with the next job (worker-side)."""
        event = self._store.get()
        event.callbacks.append(self._count_dequeue)
        return event

    def _count_dequeue(self, _event) -> None:
        self.jobs_dequeued += 1

    def cancel_pop(self, event) -> None:
        """Withdraw a pending :meth:`pop` (e.g. the worker died)."""
        self._store.cancel(event)

    def job_finished(self) -> None:
        """One assigned job completed/failed/left: drop it from the
        outstanding count."""
        if self.outstanding <= 0:
            raise RuntimeError(
                f"queue {self.worker_id}: outstanding underflow"
            )
        self.outstanding -= 1

    def drain(self) -> List[Job]:
        """Remove and return every queued job (dead-worker recovery)."""
        drained = list(self._store.items)
        self._store.items.clear()
        return drained

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WorkerQueue #{self.worker_id} depth={self.depth}>"


class RemoteQueueStub:
    """Queue-shaped placeholder for a worker another shard simulates.

    Blueprint-built shards (see :mod:`repro.cluster.blueprint`) keep
    every global worker id in ``orchestrator.queues`` so ids stay
    aligned with the serial build, but a remote worker never receives
    work locally — all policy decisions route through the coordinator
    before any queue is touched.  The stub carries only the identity
    and the always-zero load counters policies would read; any attempt
    to actually enqueue or dequeue on it is a sharding bug and raises.
    """

    __slots__ = ("worker_id", "platform")

    # Load counters are class attributes: always zero, and read-only
    # through instances (writes raise AttributeError via __slots__).
    depth = 0
    outstanding = 0
    jobs_enqueued = 0
    jobs_dequeued = 0
    peak_depth = 0

    def __init__(self, worker_id: int, platform: str = ARM):
        self.worker_id = worker_id
        self.platform = platform

    def push(self, job) -> None:
        raise RuntimeError(
            f"worker {self.worker_id} is remote to this shard; "
            "jobs must not be enqueued on its stub queue"
        )

    def pop(self):
        raise RuntimeError(
            f"worker {self.worker_id} is remote to this shard"
        )

    def drain(self):
        raise RuntimeError(
            f"worker {self.worker_id} is remote to this shard"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RemoteQueueStub #{self.worker_id}>"


__all__ = ["RemoteQueueStub", "WorkerQueue"]
