"""Control-plane capacity model for the orchestration platform.

The paper runs its OP on a *dedicated SBC* (Sec. IV-D) — a single-core
1 GHz board running Python.  Each invocation costs the OP real CPU:
assigning the job and serializing its input (*dispatch*), then parsing
and recording the result (*collect*).  At 10 workers (~3.3 jobs/s)
this is invisible; at datacenter scale it becomes the control plane's
scaling wall, which the scale-study experiment measures.

The model is a shared simulation resource (the OP's cores) plus
per-invocation service times; workers claim it around their transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.kernel import Environment
from repro.sim.resources import Resource


@dataclass(frozen=True)
class ControlPlaneModel:
    """Per-invocation OP costs.

    Defaults model CPython on the OP's single Cortex-A8 core: ~3 ms to
    assign/serialize a dispatch and ~2 ms to ingest a result — a
    capacity of 200 invocations/s, i.e. roughly 600 saturated workers.
    """

    dispatch_s: float = 3e-3
    collect_s: float = 2e-3
    cores: int = 1

    def __post_init__(self) -> None:
        if self.dispatch_s < 0 or self.collect_s < 0:
            raise ValueError("service times cannot be negative")
        if self.cores < 1:
            raise ValueError("the OP needs at least one core")

    @property
    def capacity_jobs_per_s(self) -> float:
        """Saturation throughput of the control plane alone."""
        per_job = self.dispatch_s + self.collect_s
        if per_job == 0:
            return float("inf")
        return self.cores / per_job

    def max_saturated_workers(self, mean_cycle_s: float) -> float:
        """How many busy workers the OP can keep fed."""
        if mean_cycle_s <= 0:
            raise ValueError("cycle time must be positive")
        return self.capacity_jobs_per_s * mean_cycle_s


class ControlPlane:
    """The OP's shared CPU, claimed per dispatch/collect."""

    def __init__(self, env: Environment, model: ControlPlaneModel):
        self.env = env
        self.model = model
        self.cpu = Resource(env, capacity=model.cores)
        self.dispatches = 0
        self.collections = 0
        self.busy_seconds = 0.0

    def dispatch(self):
        """Process helper: the OP prepares one invocation."""
        yield from self._work(self.model.dispatch_s)
        self.dispatches += 1

    def collect(self):
        """Process helper: the OP ingests one result."""
        yield from self._work(self.model.collect_s)
        self.collections += 1

    def _work(self, seconds: float):
        if seconds <= 0:
            return
        request = self.cpu.request()
        yield request
        try:
            yield self.env.timeout(seconds)
            self.busy_seconds += seconds
        finally:
            self.cpu.release(request)

    @property
    def queue_length(self) -> int:
        return self.cpu.queue_length

    def utilization(self, duration_s: float) -> float:
        """Busy fraction over a window."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        return min(1.0, self.busy_seconds / (duration_s * self.model.cores))


__all__ = ["ControlPlane", "ControlPlaneModel"]
