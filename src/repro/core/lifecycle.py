"""Run-to-completion worker lifecycle policy.

Encodes Sec. IV-D's worker behaviour: "Upon completion, the worker
either reboots and executes its next job or powers down until the OP
assigns it another job."  The two booleans exist so the ablation
benchmarks can measure what each piece of the policy buys:

- ``reboot_between_jobs`` — the clean-state security guarantee
  (Sec. III-a).  Turning it off gives warm workers: faster, but function
  N+1 sees whatever function N left behind.
- ``power_off_when_idle`` — the energy-proportionality mechanism
  (Sec. III-b).  Turning it off leaves idle workers burning idle power.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RunToCompletionPolicy:
    """What a worker does between jobs."""

    reboot_between_jobs: bool = True
    power_off_when_idle: bool = True
    #: How long an idle worker waits for another job before powering off
    #: (0 = immediately, the paper's behaviour).
    idle_grace_s: float = 0.0

    def __post_init__(self) -> None:
        if self.idle_grace_s < 0:
            raise ValueError("idle grace period cannot be negative")

    @classmethod
    def paper_default(cls) -> "RunToCompletionPolicy":
        """The policy the paper evaluates."""
        return cls(reboot_between_jobs=True, power_off_when_idle=True)

    @classmethod
    def warm_workers(cls) -> "RunToCompletionPolicy":
        """Ablation: conventional warm workers (no reboot, never off)."""
        return cls(reboot_between_jobs=False, power_off_when_idle=False)


__all__ = ["RunToCompletionPolicy"]
