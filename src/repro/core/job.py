"""Jobs and their lifecycle.

A :class:`Job` is one function invocation travelling through the
platform: submitted to the OP, assigned to a worker queue, executed
run-to-completion, and completed with its result timestamps.  The
timestamps mirror what the paper's OP and workers record (Sec. V uses
them to split runtime into *Working* and *Overhead*).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class JobStatus(enum.Enum):
    """Lifecycle states of a job."""

    SUBMITTED = "submitted"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"

    def can_transition_to(self, new: "JobStatus") -> bool:
        return new in _ALLOWED_TRANSITIONS[self]


#: Lifecycle DAG, built once — ``can_transition_to`` runs three times per
#: job, so rebuilding this mapping per call dominated large replays.
_ALLOWED_TRANSITIONS = {
    JobStatus.SUBMITTED: frozenset({JobStatus.QUEUED}),
    JobStatus.QUEUED: frozenset({JobStatus.RUNNING}),
    JobStatus.RUNNING: frozenset({JobStatus.COMPLETED, JobStatus.FAILED}),
    JobStatus.COMPLETED: frozenset(),
    JobStatus.FAILED: frozenset(),
}


@dataclass
class Job:
    """One function invocation."""

    job_id: int
    function: str
    input_bytes: int
    output_bytes: int
    payload: Optional[Dict[str, Any]] = None
    status: JobStatus = JobStatus.SUBMITTED
    #: Timestamps (simulated seconds); None until the event happens.
    t_submit: Optional[float] = None
    t_queued: Optional[float] = None
    t_started: Optional[float] = None
    t_completed: Optional[float] = None
    worker_id: Optional[int] = None
    failure: Optional[str] = None
    #: How many times the job has been (re)assigned after worker faults.
    attempts: int = 0
    #: At-least-once delivery: attempts of the same logical invocation
    #: share one key, so the OP can suppress duplicate results.  Stamped
    #: at submission; clones (hedges, timeout retries) inherit it.
    idempotency_key: Optional[str] = None
    #: Owning tenant for energy budgeting (see
    #: :class:`repro.core.policies.BudgetPolicy`); None means untenanted
    #: — the ledger and budget layers skip the job entirely.  Clones
    #: inherit it, so every attempt bills the same account.
    tenant: Optional[str] = None
    #: Tracing (see :mod:`repro.obs`): the trace this invocation belongs
    #: to, set at submission iff an enabled recorder sampled it — None
    #: is the "not traced" fast path every hot-path guard checks.
    #: Clones inherit it, so all attempts land in one trace.
    trace_id: Optional[int] = None
    #: The open attempt span this Job object is currently executing
    #: under (a recorder span id); owned by whichever worker claimed
    #: the attempt, cleared when the span closes.
    trace_attempt: Optional[int] = None

    def __post_init__(self) -> None:
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise ValueError("payload sizes must be non-negative")
        if not self.function:
            raise ValueError("job needs a function name")

    def transition(self, new: JobStatus, now: float) -> None:
        """Advance the lifecycle, stamping the matching timestamp."""
        if not self.status.can_transition_to(new):
            raise ValueError(
                f"job {self.job_id}: illegal transition "
                f"{self.status.value} -> {new.value}"
            )
        self.status = new
        if new is JobStatus.QUEUED:
            self.t_queued = now
        elif new is JobStatus.RUNNING:
            self.t_started = now
        elif new in (JobStatus.COMPLETED, JobStatus.FAILED):
            self.t_completed = now

    def reset_for_retry(self) -> None:
        """Return a lost job (dead worker) to the submittable state.

        Only queued or running jobs can be retried; completed/failed
        jobs are terminal.
        """
        if self.status not in (JobStatus.QUEUED, JobStatus.RUNNING):
            raise ValueError(
                f"job {self.job_id}: cannot retry from {self.status.value}"
            )
        self.status = JobStatus.SUBMITTED
        self.attempts += 1
        self.t_started = None
        self.worker_id = None
        self.trace_attempt = None

    def spawn_attempt(self) -> "Job":
        """Clone this job as a fresh attempt (hedge or timeout retry).

        At-least-once execution on run-to-completion workers cannot
        cancel an in-flight attempt, so a retry is a *new* Job object
        with a fresh lifecycle, sharing the logical identity (job_id,
        idempotency key, payload).  The OP keeps this object as the
        canonical record and suppresses whichever result arrives second.
        """
        clone = Job(
            job_id=self.job_id,
            function=self.function,
            input_bytes=self.input_bytes,
            output_bytes=self.output_bytes,
            payload=self.payload,
            idempotency_key=self.idempotency_key,
            tenant=self.tenant,
        )
        clone.t_submit = self.t_submit
        clone.trace_id = self.trace_id
        self.attempts += 1
        return clone

    def absorb_completion(self, now: float) -> None:
        """Mark the canonical record done off a duplicate attempt's result.

        The canonical object may sit QUEUED on a slow worker while its
        hedge completes, so this bypasses the transition table: it is
        only ever called by the orchestrator for the first result of a
        logical job.
        """
        self.status = JobStatus.COMPLETED
        if self.t_completed is None:
            self.t_completed = now

    @property
    def is_finished(self) -> bool:
        return self.status in (JobStatus.COMPLETED, JobStatus.FAILED)

    @property
    def queue_wait_s(self) -> float:
        """Time spent waiting in a worker queue."""
        if self.t_queued is None or self.t_started is None:
            raise ValueError(f"job {self.job_id} has not started")
        return self.t_started - self.t_queued

    @property
    def end_to_end_s(self) -> float:
        """Submission to completion."""
        if self.t_submit is None or self.t_completed is None:
            raise ValueError(f"job {self.job_id} has not completed")
        return self.t_completed - self.t_submit


__all__ = ["Job", "JobStatus"]
