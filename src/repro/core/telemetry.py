"""Telemetry: per-invocation records and aggregate metrics.

Workers report one :class:`InvocationRecord` per completed job, carrying
the phase breakdown the paper plots: boot time, *Working* time (function
body incl. backend waits), and *Overhead* (input/result transfer plus
session).  The collector computes the aggregates Sec. V reports —
throughput in func/min, per-function means, and the working/overhead
split of Fig. 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class InvocationRecord:
    """Phase breakdown of one completed invocation."""

    job_id: int
    function: str
    worker_id: int
    platform: str  # "arm" or "x86"
    t_queued: float
    t_started: float
    t_completed: float
    boot_s: float
    working_s: float
    overhead_s: float

    def __post_init__(self) -> None:
        if self.t_completed < self.t_started:
            raise ValueError("completion before start")
        for name in ("boot_s", "working_s", "overhead_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"negative {name}")

    @property
    def runtime_s(self) -> float:
        """Fig. 3 runtime: working plus overhead (boot excluded)."""
        return self.working_s + self.overhead_s

    @property
    def cycle_s(self) -> float:
        """Full worker occupancy: boot + working + overhead."""
        return self.boot_s + self.working_s + self.overhead_s

    @property
    def queue_wait_s(self) -> float:
        return self.t_started - self.t_queued


def _mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("no values")
    return sum(values) / len(values)


def _percentile(values: Sequence[float], p: float) -> float:
    if not values:
        raise ValueError("no values")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class FunctionStats:
    """Aggregates for one function (one group of Fig. 3 bars)."""

    function: str
    count: int
    mean_working_s: float
    mean_overhead_s: float
    mean_runtime_s: float
    p95_runtime_s: float


class TelemetryCollector:
    """Accumulates invocation records and computes Sec. V aggregates."""

    def __init__(self):
        self.records: List[InvocationRecord] = []

    def record(self, record: InvocationRecord) -> None:
        self.records.append(record)

    @property
    def count(self) -> int:
        return len(self.records)

    def first_start(self) -> float:
        if not self.records:
            raise ValueError("no records")
        return min(r.t_started for r in self.records)

    def last_completion(self) -> float:
        if not self.records:
            raise ValueError("no records")
        return max(r.t_completed for r in self.records)

    def throughput_per_min(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> float:
        """Completed functions per minute over the measured window."""
        if not self.records:
            raise ValueError("no records")
        start = self.first_start() if start is None else start
        end = self.last_completion() if end is None else end
        window = end - start
        if window <= 0:
            raise ValueError("empty measurement window")
        completed = sum(
            1 for r in self.records if start <= r.t_completed <= end
        )
        return completed * 60.0 / window

    def function_stats(self, function: str) -> FunctionStats:
        """Per-function aggregate (one Fig. 3 bar group)."""
        matching = [r for r in self.records if r.function == function]
        if not matching:
            raise KeyError(f"no records for function {function!r}")
        runtimes = [r.runtime_s for r in matching]
        return FunctionStats(
            function=function,
            count=len(matching),
            mean_working_s=_mean([r.working_s for r in matching]),
            mean_overhead_s=_mean([r.overhead_s for r in matching]),
            mean_runtime_s=_mean(runtimes),
            p95_runtime_s=_percentile(runtimes, 95),
        )

    def all_function_stats(self) -> Dict[str, FunctionStats]:
        """Stats for every function seen."""
        return {
            name: self.function_stats(name)
            for name in sorted({r.function for r in self.records})
        }

    def mean_cycle_s(self) -> float:
        """Mean full worker occupancy per job."""
        if not self.records:
            raise ValueError("no records")
        return _mean([r.cycle_s for r in self.records])

    def mean_queue_wait_s(self) -> float:
        if not self.records:
            raise ValueError("no records")
        return _mean([r.queue_wait_s for r in self.records])

    def percentile_queue_wait_s(self, p: float) -> float:
        return _percentile([r.queue_wait_s for r in self.records], p)

    def end_to_end_latencies_s(self) -> List[float]:
        """Per-job submission-to-completion latencies."""
        return [r.t_completed - r.t_queued for r in self.records]

    def slo_attainment(self, threshold_s: float) -> float:
        """Fraction of jobs completing within ``threshold_s`` of
        submission (the latency-SLO view of a trace replay)."""
        if threshold_s <= 0:
            raise ValueError("threshold must be positive")
        latencies = self.end_to_end_latencies_s()
        if not latencies:
            raise ValueError("no records")
        return sum(1 for l in latencies if l <= threshold_s) / len(latencies)


__all__ = ["FunctionStats", "InvocationRecord", "TelemetryCollector"]
