"""Telemetry: per-invocation records and aggregate metrics.

Workers report one :class:`InvocationRecord` per completed job, carrying
the phase breakdown the paper plots: boot time, *Working* time (function
body incl. backend waits), and *Overhead* (input/result transfer plus
session).  The collector computes the aggregates Sec. V reports —
throughput in func/min, per-function means, and the working/overhead
split of Fig. 3.

Two collection modes share one API:

- **exact** (the default, and the original behaviour): every record is
  retained, percentiles are computed from fully sorted data, and memory
  grows O(N) with completed jobs.  Small runs — everything up to the
  10-SBC testbed experiments — use this.
- **streaming** (``TelemetryCollector(exact=False)``): records are *not*
  retained.  The collector maintains per-function running accumulators
  (count / sum / sum-of-squares for working, overhead, runtime, and
  queue wait), running min/max for the measurement window, a
  log-bucketed :class:`QuantileSketch` per latency metric for p95/p99,
  and a bounded :class:`ReservoirSample` of records for exact-mode
  cross-checks.  Memory is O(1) per completed job, which is what lets
  the megatrace experiment replay millions of invocations.

Means are **bit-identical** between the modes: both accumulate the same
left-to-right float additions (``sum(list)`` and a running ``total +=``
perform the same IEEE operations in the same order).  Quantiles in
streaming mode carry the sketch's documented relative-error bound
(:attr:`QuantileSketch.relative_error_bound`) instead of being exact.

Sorting discipline: every exact-mode percentile routes through one
internal sorting site with a per-metric cache, so an aggregate pass over
a frozen collector sorts each series exactly once no matter how many
percentiles are requested (see :data:`SORT_COUNT`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Module-level counter of full sorts performed by exact-mode percentile
#: paths.  Tests use it to assert the sort-once discipline; it carries no
#: semantic meaning.
SORT_COUNT = 0


@dataclass(frozen=True)
class InvocationRecord:
    """Phase breakdown of one completed invocation."""

    job_id: int
    function: str
    worker_id: int
    platform: str  # "arm" or "x86"
    t_queued: float
    t_started: float
    t_completed: float
    boot_s: float
    working_s: float
    overhead_s: float

    def __post_init__(self) -> None:
        if self.t_completed < self.t_started:
            raise ValueError("completion before start")
        for name in ("boot_s", "working_s", "overhead_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"negative {name}")

    @property
    def runtime_s(self) -> float:
        """Fig. 3 runtime: working plus overhead (boot excluded)."""
        return self.working_s + self.overhead_s

    @property
    def cycle_s(self) -> float:
        """Full worker occupancy: boot + working + overhead."""
        return self.boot_s + self.working_s + self.overhead_s

    @property
    def queue_wait_s(self) -> float:
        return self.t_started - self.t_queued


def _mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("no values")
    return sum(values) / len(values)


def _sorted_once(values: Sequence[float]) -> List[float]:
    """The single sorting site for exact percentile paths."""
    global SORT_COUNT
    SORT_COUNT += 1
    return sorted(values)


def _percentile_of_sorted(ordered: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence."""
    if not ordered:
        raise ValueError("no values")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def _percentile(values: Sequence[float], p: float) -> float:
    if not values:
        raise ValueError("no values")
    return _percentile_of_sorted(_sorted_once(values), p)


def _nearest_rank_of_sorted(ordered: Sequence[float], p: float) -> float:
    """Rounded-rank percentile (the fault study's historical convention)."""
    if not ordered:
        raise ValueError("no values")
    index = min(
        len(ordered) - 1, max(0, int(round(p / 100.0 * (len(ordered) - 1))))
    )
    return ordered[index]


def percentiles(
    values: Sequence[float], ps: Sequence[float], method: str = "linear"
) -> List[float]:
    """Several percentiles of ``values`` with exactly one sort.

    The sort-once companion to :func:`_percentile` for callers (e.g. the
    fault study's tail metrics) that need one or more quantiles of the
    same series.  ``method`` is ``"linear"`` (interpolated, the
    collector's convention) or ``"nearest"`` (rounded rank).
    """
    if not values:
        raise ValueError("no values")
    if method == "linear":
        pick = _percentile_of_sorted
    elif method == "nearest":
        pick = _nearest_rank_of_sorted
    else:
        raise ValueError(f"unknown percentile method {method!r}")
    ordered = _sorted_once(values)
    return [pick(ordered, p) for p in ps]


class QuantileSketch:
    """Log-bucketed streaming quantile estimator with a hard error bound.

    Values are hashed into geometric buckets ``[gamma^i, gamma^(i+1))``;
    a quantile query walks the cumulative bucket counts to the target
    rank and returns the geometric midpoint of the bucket holding it.
    The returned estimate ``q`` therefore satisfies

        q / sqrt(gamma)  <=  true nearest-rank quantile  <=  q * sqrt(gamma)

    i.e. a relative error of at most ``sqrt(gamma) - 1`` (~1 % at the
    default ``gamma = 1.02``).  Memory is bounded by the number of
    occupied buckets, itself bounded by the dynamic range: values are
    clamped into ``[min_value, max_value]``, giving at most
    ``log(max/min)/log(gamma)`` buckets (~1,400 at the defaults) no
    matter how many samples are added.

    This is the DDSketch/HDR-histogram family rather than P²: unlike P²
    it answers *any* quantile after the fact and its error bound is a
    provable invariant, which is what the property tests pin down.
    """

    __slots__ = ("gamma", "min_value", "max_value", "_log_gamma",
                 "_buckets", "_zero_count", "count")

    def __init__(
        self,
        gamma: float = 1.02,
        min_value: float = 1e-6,
        max_value: float = 1e6,
    ):
        if gamma <= 1.0:
            raise ValueError(f"gamma must be > 1, got {gamma}")
        if not 0 < min_value < max_value:
            raise ValueError("need 0 < min_value < max_value")
        self.gamma = gamma
        self.min_value = min_value
        self.max_value = max_value
        self._log_gamma = math.log(gamma)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self.count = 0

    @property
    def relative_error_bound(self) -> float:
        """Worst-case relative error for values inside the clamp range."""
        return math.sqrt(self.gamma) - 1.0

    @property
    def bucket_count(self) -> int:
        """Occupied buckets — the sketch's whole memory footprint."""
        return len(self._buckets)

    def add(self, value: float) -> None:
        """Record one sample (non-positive values count as zero)."""
        self.count += 1
        if value <= self.min_value:
            # Zeros and sub-resolution values share one underflow bucket;
            # they are reported as ``min_value`` by quantile queries.
            self._zero_count += 1
            return
        clamped = min(value, self.max_value)
        # floor, not int(): truncation-toward-zero would shift sub-1
        # values (negative logs) one bucket up and break the bound.
        index = math.floor(math.log(clamped) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, p: float) -> float:
        """Nearest-rank p-th percentile estimate (p in [0, 100])."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            raise ValueError("no values")
        rank = max(1, math.ceil(p / 100.0 * self.count))
        if rank <= self._zero_count:
            return self.min_value
        seen = self._zero_count
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return math.exp((index + 0.5) * self._log_gamma)
        # Float slack on the last bucket: return its midpoint.
        index = max(self._buckets)
        return math.exp((index + 0.5) * self._log_gamma)

    def fraction_at_or_below(self, threshold: float) -> float:
        """Estimated CDF at ``threshold`` (error: one bucket's width)."""
        if self.count == 0:
            raise ValueError("no values")
        if threshold <= self.min_value:
            return self._zero_count / self.count
        boundary = math.floor(math.log(min(threshold, self.max_value))
                              / self._log_gamma)
        below = self._zero_count + sum(
            count for index, count in self._buckets.items()
            if index <= boundary
        )
        return below / self.count

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch of identical geometry into this one."""
        if (other.gamma, other.min_value, other.max_value) != (
            self.gamma, self.min_value, self.max_value
        ):
            raise ValueError("cannot merge sketches of differing geometry")
        self.count += other.count
        self._zero_count += other._zero_count
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count


class ReservoirSample:
    """Bounded uniform sample of a stream (Vitter's Algorithm R).

    Streaming mode keeps a reservoir of :class:`InvocationRecord` so
    exact-mode cross-checks (and debugging) can inspect representative
    raw records without unbounded growth.  Deterministic: the internal
    RNG is seeded from the capacity, not global state.
    """

    __slots__ = ("capacity", "items", "seen", "_rng")

    def __init__(self, capacity: int = 2048, seed: int = 0x5EED):
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self.items: List = []
        self.seen = 0
        self._rng = random.Random(seed ^ capacity)

    def add(self, item) -> None:
        self.seen += 1
        if len(self.items) < self.capacity:
            self.items.append(item)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self.items[slot] = item


class _RunningStat:
    """Count / sum / sum-of-squares / min / max of one metric stream.

    The running ``total`` performs the same left-to-right additions as
    ``sum()`` over the equivalent list, so means computed here are
    bit-identical to the exact-mode list path.
    """

    __slots__ = ("count", "total", "sum_sq", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.sum_sq += value * value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no values")
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Population variance from the running moments."""
        if self.count == 0:
            raise ValueError("no values")
        mean = self.total / self.count
        return max(0.0, self.sum_sq / self.count - mean * mean)

    def merge(self, other: "_RunningStat") -> None:
        """Fold another stat's moments into this one."""
        self.count += other.count
        self.total += other.total
        self.sum_sq += other.sum_sq
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum


class _FunctionAccumulator:
    """Streaming per-function aggregates (one Fig. 3 bar group)."""

    __slots__ = ("working", "overhead", "runtime", "queue_wait",
                 "runtime_sketch")

    def __init__(self, gamma: float):
        self.working = _RunningStat()
        self.overhead = _RunningStat()
        self.runtime = _RunningStat()
        self.queue_wait = _RunningStat()
        self.runtime_sketch = QuantileSketch(gamma=gamma)

    def add(self, record: InvocationRecord) -> None:
        runtime = record.runtime_s
        self.working.add(record.working_s)
        self.overhead.add(record.overhead_s)
        self.runtime.add(runtime)
        self.queue_wait.add(record.queue_wait_s)
        self.runtime_sketch.add(runtime)

    def merge(self, other: "_FunctionAccumulator") -> None:
        self.working.merge(other.working)
        self.overhead.merge(other.overhead)
        self.runtime.merge(other.runtime)
        self.queue_wait.merge(other.queue_wait)
        self.runtime_sketch.merge(other.runtime_sketch)


class _PlatformAccumulator:
    """Streaming per-platform aggregates (the hybrid-cluster dimension)."""

    __slots__ = ("latency", "queue_wait", "latency_sketch")

    def __init__(self, gamma: float):
        self.latency = _RunningStat()
        self.queue_wait = _RunningStat()
        self.latency_sketch = QuantileSketch(gamma=gamma)

    def add(self, latency: float, queue_wait: float) -> None:
        self.latency.add(latency)
        self.queue_wait.add(queue_wait)
        self.latency_sketch.add(latency)

    def merge(self, other: "_PlatformAccumulator") -> None:
        self.latency.merge(other.latency)
        self.queue_wait.merge(other.queue_wait)
        self.latency_sketch.merge(other.latency_sketch)


@dataclass(frozen=True)
class FunctionStats:
    """Aggregates for one function (one group of Fig. 3 bars)."""

    function: str
    count: int
    mean_working_s: float
    mean_overhead_s: float
    mean_runtime_s: float
    p95_runtime_s: float


class TelemetryCollector:
    """Accumulates invocation records and computes Sec. V aggregates.

    Parameters
    ----------
    exact:
        ``True`` (default) retains every record and computes exact
        percentiles; ``False`` runs in streaming mode with O(1) memory
        per completed job (see the module docstring for the contract).
    sketch_gamma:
        Bucket growth factor of the streaming quantile sketches.
    reservoir_capacity:
        Size of the streaming-mode record reservoir.
    """

    def __init__(
        self,
        exact: bool = True,
        sketch_gamma: float = 1.02,
        reservoir_capacity: int = 2048,
    ):
        self.exact = exact
        self.sketch_gamma = sketch_gamma
        self.records: List[InvocationRecord] = []
        self.reservoir: Optional[ReservoirSample] = (
            None if exact else ReservoirSample(reservoir_capacity)
        )
        # Running aggregates are maintained in *both* modes: they make
        # first_start/last_completion/mean_* O(1) in exact mode too, and
        # they are what the streaming==exact property tests compare.
        self._functions: Dict[str, _FunctionAccumulator] = {}
        # Per-platform aggregates: heterogeneous (SBC + microVM)
        # clusters report latency and counts per worker platform.
        self._platforms: Dict[str, _PlatformAccumulator] = {}
        self._cycle = _RunningStat()
        self._queue_wait = _RunningStat()
        self._latency = _RunningStat()
        self._queue_wait_sketch = QuantileSketch(gamma=sketch_gamma)
        self._latency_sketch = QuantileSketch(gamma=sketch_gamma)
        self._count = 0
        self._first_start = math.inf
        self._last_completion = -math.inf
        # Exact-mode sorted-series cache: metric key -> (version, sorted
        # values).  Invalidated by version bump on record(); guarantees
        # one sort per metric per aggregate pass.
        self._sorted_cache: Dict[str, Tuple[int, List[float]]] = {}
        self._version = 0

    def record(self, record: InvocationRecord) -> None:
        self._count += 1
        self._version += 1
        if record.t_started < self._first_start:
            self._first_start = record.t_started
        if record.t_completed > self._last_completion:
            self._last_completion = record.t_completed
        accumulator = self._functions.get(record.function)
        if accumulator is None:
            accumulator = _FunctionAccumulator(self.sketch_gamma)
            self._functions[record.function] = accumulator
        accumulator.add(record)
        self._cycle.add(record.cycle_s)
        queue_wait = record.queue_wait_s
        latency = record.t_completed - record.t_queued
        self._queue_wait.add(queue_wait)
        self._latency.add(latency)
        self._queue_wait_sketch.add(queue_wait)
        self._latency_sketch.add(latency)
        platform_acc = self._platforms.get(record.platform)
        if platform_acc is None:
            platform_acc = _PlatformAccumulator(self.sketch_gamma)
            self._platforms[record.platform] = platform_acc
        platform_acc.add(latency, queue_wait)
        if self.exact:
            self.records.append(record)
        else:
            self.reservoir.add(record)

    @property
    def count(self) -> int:
        return self._count

    @property
    def functions_seen(self) -> List[str]:
        return sorted(self._functions)

    def merge(self, other: "TelemetryCollector") -> None:
        """Fold another collector's state into this one.

        The shard-combining primitive for ``run_map``-style parallel
        experiments: each shard collects independently, then the
        results merge without replaying records.

        Mode rules:

        - exact ← exact: record lists concatenate, so every exact-mode
          query (percentiles, windowed throughput) stays exact.
        - streaming ← anything: running moments and sketches add
          (sketch bucket counts are integers, so merged quantiles are
          identical to single-pass streaming); the reservoir absorbs
          the other side's retained/reservoir records.
        - exact ← streaming: raises — the streaming side's records are
          gone, so the merged collector could not honour its exactness
          contract.

        Means merge exactly (sums and counts add); the *sequence* of
        additions differs from single-collector order, so merged means
        agree with a replay to float-addition noise, not bit-for-bit.
        Sketch geometries must match (``sketch_gamma``).
        """
        if self.exact and not other.exact:
            raise RuntimeError(
                "cannot merge a streaming collector into an exact one: "
                "its per-record data was never retained"
            )
        if other._count == 0:
            return
        for name, accumulator in other._functions.items():
            mine = self._functions.get(name)
            if mine is None:
                mine = _FunctionAccumulator(self.sketch_gamma)
                self._functions[name] = mine
            mine.merge(accumulator)
        for name, platform_acc in other._platforms.items():
            mine_platform = self._platforms.get(name)
            if mine_platform is None:
                mine_platform = _PlatformAccumulator(self.sketch_gamma)
                self._platforms[name] = mine_platform
            mine_platform.merge(platform_acc)
        self._cycle.merge(other._cycle)
        self._queue_wait.merge(other._queue_wait)
        self._latency.merge(other._latency)
        self._queue_wait_sketch.merge(other._queue_wait_sketch)
        self._latency_sketch.merge(other._latency_sketch)
        self._count += other._count
        if other._first_start < self._first_start:
            self._first_start = other._first_start
        if other._last_completion > self._last_completion:
            self._last_completion = other._last_completion
        self._version += 1
        if self.exact:
            self.records.extend(other.records)
        else:
            source = other.records if other.exact else other.reservoir.items
            for record in source:
                self.reservoir.add(record)

    def _require_records(self) -> None:
        if self._count == 0:
            raise ValueError("no records")

    def _require_exact(self, what: str) -> None:
        if not self.exact:
            raise RuntimeError(
                f"{what} needs per-record data; this collector runs in "
                "streaming mode (construct with exact=True for small runs)"
            )

    def _sorted_series(self, key: str, values_fn) -> List[float]:
        """Sorted copy of one exact-mode series, cached per version."""
        cached = self._sorted_cache.get(key)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        ordered = _sorted_once(values_fn())
        self._sorted_cache[key] = (self._version, ordered)
        return ordered

    # -- measurement window ---------------------------------------------------

    def first_start(self) -> float:
        """Earliest service start (running minimum — no scan)."""
        self._require_records()
        return self._first_start

    def last_completion(self) -> float:
        """Latest completion (running maximum — no scan)."""
        self._require_records()
        return self._last_completion

    def throughput_per_min(
        self,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> float:
        """Completed functions per minute over the measured window.

        With default bounds this is O(1) in both modes: every record
        completes inside ``[first_start, last_completion]`` by
        construction.  Explicit sub-windows need the per-record
        completion times and are exact-mode only.
        """
        self._require_records()
        full_window = start is None and end is None
        start = self._first_start if start is None else start
        end = self._last_completion if end is None else end
        window = end - start
        if window <= 0:
            raise ValueError("empty measurement window")
        if full_window:
            completed = self._count
        else:
            self._require_exact("windowed throughput")
            completed = sum(
                1 for r in self.records if start <= r.t_completed <= end
            )
        return completed * 60.0 / window

    # -- per-function aggregates ----------------------------------------------

    def function_stats(self, function: str) -> FunctionStats:
        """Per-function aggregate (one Fig. 3 bar group)."""
        accumulator = self._functions.get(function)
        if accumulator is None:
            raise KeyError(f"no records for function {function!r}")
        if self.exact:
            ordered = self._sorted_series(
                f"runtime:{function}",
                lambda: [
                    r.runtime_s for r in self.records
                    if r.function == function
                ],
            )
            p95 = _percentile_of_sorted(ordered, 95)
        else:
            p95 = accumulator.runtime_sketch.quantile(95)
        return FunctionStats(
            function=function,
            count=accumulator.runtime.count,
            mean_working_s=accumulator.working.mean,
            mean_overhead_s=accumulator.overhead.mean,
            mean_runtime_s=accumulator.runtime.mean,
            p95_runtime_s=p95,
        )

    def all_function_stats(self) -> Dict[str, FunctionStats]:
        """Stats for every function seen."""
        return {
            name: self.function_stats(name)
            for name in sorted(self._functions)
        }

    # -- per-platform aggregates ----------------------------------------------

    @property
    def platforms_seen(self) -> List[str]:
        """Worker platforms that completed at least one job."""
        return sorted(self._platforms)

    def _platform_accumulator(self, platform: str) -> _PlatformAccumulator:
        accumulator = self._platforms.get(platform)
        if accumulator is None:
            raise KeyError(
                f"no records for platform {platform!r}; "
                f"seen: {sorted(self._platforms)}"
            )
        return accumulator

    def platform_count(self, platform: str) -> int:
        """Completed jobs attributed to one worker platform."""
        return self._platform_accumulator(platform).latency.count

    def platform_mean_latency_s(self, platform: str) -> float:
        """Mean submission-to-completion latency on one platform."""
        return self._platform_accumulator(platform).latency.mean

    def platform_percentile_latency_s(self, platform: str, p: float) -> float:
        """Latency percentile on one platform (exact or sketch)."""
        accumulator = self._platform_accumulator(platform)
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.exact:
            ordered = self._sorted_series(
                f"latency:platform:{platform}",
                lambda: [
                    r.t_completed - r.t_queued
                    for r in self.records
                    if r.platform == platform
                ],
            )
            return _percentile_of_sorted(ordered, p)
        return accumulator.latency_sketch.quantile(p)

    def platform_mean_queue_wait_s(self, platform: str) -> float:
        """Mean queue wait on one platform."""
        return self._platform_accumulator(platform).queue_wait.mean

    # -- cluster-level aggregates ---------------------------------------------

    def mean_cycle_s(self) -> float:
        """Mean full worker occupancy per job."""
        self._require_records()
        return self._cycle.mean

    def mean_queue_wait_s(self) -> float:
        self._require_records()
        return self._queue_wait.mean

    def percentile_queue_wait_s(self, p: float) -> float:
        self._require_records()
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.exact:
            ordered = self._sorted_series(
                "queue_wait", lambda: [r.queue_wait_s for r in self.records]
            )
            return _percentile_of_sorted(ordered, p)
        return self._queue_wait_sketch.quantile(p)

    def mean_latency_s(self) -> float:
        """Mean submission-to-completion latency."""
        self._require_records()
        return self._latency.mean

    def percentile_latency_s(self, p: float) -> float:
        """End-to-end latency percentile (exact or sketch-estimated)."""
        self._require_records()
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.exact:
            ordered = self._sorted_series(
                "latency",
                lambda: [r.t_completed - r.t_queued for r in self.records],
            )
            return _percentile_of_sorted(ordered, p)
        return self._latency_sketch.quantile(p)

    def end_to_end_latencies_s(self) -> List[float]:
        """Per-job submission-to-completion latencies (exact mode)."""
        self._require_exact("per-job latency series")
        return [r.t_completed - r.t_queued for r in self.records]

    def slo_attainment(self, threshold_s: float) -> float:
        """Fraction of jobs completing within ``threshold_s`` of
        submission (the latency-SLO view of a trace replay).

        Streaming mode answers from the latency sketch; the estimate is
        off by at most the mass of the one bucket straddling the
        threshold.
        """
        if threshold_s <= 0:
            raise ValueError("threshold must be positive")
        self._require_records()
        if self.exact:
            latencies = self.end_to_end_latencies_s()
            return sum(1 for l in latencies if l <= threshold_s) / len(
                latencies
            )
        return self._latency_sketch.fraction_at_or_below(threshold_s)


#: Public alias: the running count/sum/min/max accumulator is useful
#: beyond this module's internals (the federation gateway keeps one per
#: client geo for perceived-latency stats).
RunningStat = _RunningStat


__all__ = [
    "FunctionStats",
    "InvocationRecord",
    "QuantileSketch",
    "ReservoirSample",
    "RunningStat",
    "SORT_COUNT",
    "TelemetryCollector",
    "percentiles",
]
