"""GPIO power-control lines between the OP and its workers.

The testbed wires the OP's GPIO pins to each worker SBC's PWR_BUT pin
(Sec. IV-D) so the OP can power workers on and off.  A
:class:`GpioBank` models that wiring: one line per worker, each bound to
power-on/power-off callables, with a small actuation latency and pulse
accounting (real power buttons are edge-triggered).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

#: Time between asserting the line and the board reacting, seconds.
DEFAULT_ACTUATION_S = 5e-3


@dataclass
class GpioLine:
    """One PWR_BUT line."""

    worker_id: int
    power_on: Callable[[], None]
    power_off: Callable[[], None]
    is_powered: Callable[[], bool]
    pulses: int = 0


class GpioBank:
    """The OP's bank of power-control lines."""

    def __init__(self, actuation_s: float = DEFAULT_ACTUATION_S):
        if actuation_s < 0:
            raise ValueError("actuation latency cannot be negative")
        self.actuation_s = actuation_s
        self._lines: Dict[int, GpioLine] = {}
        #: Chaos state: lines whose pulses currently do nothing (a loose
        #: jumper, a blown level shifter).
        self._stuck: set = set()

    def break_line(self, worker_id: int) -> None:
        """Make a line's pulses ineffective until repaired."""
        self.line(worker_id)  # validate
        self._stuck.add(worker_id)

    def repair_line(self, worker_id: int) -> None:
        self._stuck.discard(worker_id)

    def is_stuck(self, worker_id: int) -> bool:
        return worker_id in self._stuck

    def connect(
        self,
        worker_id: int,
        power_on: Callable[[], None],
        power_off: Callable[[], None],
        is_powered: Callable[[], bool],
    ) -> None:
        """Wire a worker's PWR_BUT to the bank."""
        if worker_id in self._lines:
            raise ValueError(f"worker {worker_id} already wired")
        self._lines[worker_id] = GpioLine(
            worker_id, power_on, power_off, is_powered
        )

    def line(self, worker_id: int) -> GpioLine:
        if worker_id not in self._lines:
            raise KeyError(f"no GPIO line for worker {worker_id}")
        return self._lines[worker_id]

    @property
    def worker_count(self) -> int:
        return len(self._lines)

    def assert_power_on(self, worker_id: int) -> bool:
        """Pulse the line to wake a worker; no-op if already powered.

        Returns True if a pulse was sent.
        """
        line = self.line(worker_id)
        if line.is_powered():
            return False
        line.pulses += 1
        if worker_id in self._stuck:
            return False  # the pulse went nowhere
        line.power_on()
        return True

    def assert_power_off(self, worker_id: int) -> bool:
        """Pulse the line to cut a worker's power; no-op if already off."""
        line = self.line(worker_id)
        if not line.is_powered():
            return False
        line.pulses += 1
        if worker_id in self._stuck:
            return False  # the pulse went nowhere
        line.power_off()
        return True

    def powered_count(self) -> int:
        """How many wired workers are currently powered."""
        return sum(1 for line in self._lines.values() if line.is_powered())


__all__ = ["DEFAULT_ACTUATION_S", "GpioBank", "GpioLine"]
