"""Wire protocol between the orchestrator and its workers.

A freshly booted MicroPython worker opens one TCP connection to the OP,
receives exactly one invocation, and returns exactly one result before
rebooting.  This module defines that wire format:

- a fixed 16-byte header: magic ``uFaS``, protocol version, message
  type, body length, and a CRC-32 of the body;
- a JSON body (MicroPython ships ``ujson``), hex-armoured where needed.

Message types: ``INVOKE`` (OP → worker), ``RESULT`` / ``ERROR``
(worker → OP), and ``PING``/``PONG`` (the OP's liveness probe, which
the fault detector builds on).  :func:`decode_stream` implements
incremental framing for a byte stream that may hold partial or multiple
messages — the situation a real socket reader faces.
"""

from __future__ import annotations

import enum
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

MAGIC = b"uFaS"
PROTOCOL_VERSION = 1
#: magic(4) version(1) type(1) reserved(2) length(4) crc32(4)
_HEADER = struct.Struct(">4sBBHLL")
HEADER_SIZE = _HEADER.size
#: Guard against hostile/corrupt length fields.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ProtocolError(Exception):
    """Malformed frame, bad checksum, or semantic violation."""


class MessageType(enum.IntEnum):
    INVOKE = 1
    RESULT = 2
    ERROR = 3
    PING = 4
    PONG = 5


@dataclass(frozen=True)
class InvokeMessage:
    """OP → worker: run this function with this payload."""

    job_id: int
    function: str
    payload: Dict[str, Any]

    type = MessageType.INVOKE

    def body(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "function": self.function,
            "payload": self.payload,
        }

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "InvokeMessage":
        try:
            return cls(
                job_id=int(body["job_id"]),
                function=str(body["function"]),
                payload=dict(body["payload"]),
            )
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"bad INVOKE body: {exc}") from exc


@dataclass(frozen=True)
class ResultMessage:
    """Worker → OP: the function's result."""

    job_id: int
    result: Dict[str, Any]

    type = MessageType.RESULT

    def body(self) -> Dict[str, Any]:
        return {"job_id": self.job_id, "result": self.result}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ResultMessage":
        try:
            return cls(job_id=int(body["job_id"]), result=dict(body["result"]))
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"bad RESULT body: {exc}") from exc


@dataclass(frozen=True)
class ErrorMessage:
    """Worker → OP: the function raised."""

    job_id: int
    error: str

    type = MessageType.ERROR

    def body(self) -> Dict[str, Any]:
        return {"job_id": self.job_id, "error": self.error}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "ErrorMessage":
        try:
            return cls(job_id=int(body["job_id"]), error=str(body["error"]))
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"bad ERROR body: {exc}") from exc


@dataclass(frozen=True)
class PingMessage:
    """OP → worker liveness probe."""

    nonce: int

    type = MessageType.PING

    def body(self) -> Dict[str, Any]:
        return {"nonce": self.nonce}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "PingMessage":
        try:
            return cls(nonce=int(body["nonce"]))
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"bad PING body: {exc}") from exc


@dataclass(frozen=True)
class PongMessage:
    """Worker → OP liveness reply (echoes the nonce)."""

    nonce: int

    type = MessageType.PONG

    def body(self) -> Dict[str, Any]:
        return {"nonce": self.nonce}

    @classmethod
    def from_body(cls, body: Dict[str, Any]) -> "PongMessage":
        try:
            return cls(nonce=int(body["nonce"]))
        except (KeyError, TypeError) as exc:
            raise ProtocolError(f"bad PONG body: {exc}") from exc


Message = Union[
    InvokeMessage, ResultMessage, ErrorMessage, PingMessage, PongMessage
]

_DECODERS = {
    MessageType.INVOKE: InvokeMessage.from_body,
    MessageType.RESULT: ResultMessage.from_body,
    MessageType.ERROR: ErrorMessage.from_body,
    MessageType.PING: PingMessage.from_body,
    MessageType.PONG: PongMessage.from_body,
}


def encode_message(message: Message) -> bytes:
    """Serialize a message to its wire frame."""
    try:
        body = json.dumps(
            message.body(), separators=(",", ":"), sort_keys=True
        ).encode()
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable body: {exc}") from exc
    if len(body) > MAX_BODY_BYTES:
        raise ProtocolError(f"body too large: {len(body)} bytes")
    header = _HEADER.pack(
        MAGIC,
        PROTOCOL_VERSION,
        int(message.type),
        0,
        len(body),
        zlib.crc32(body) & 0xFFFFFFFF,
    )
    return header + body


def decode_message(frame: bytes) -> Message:
    """Parse one complete wire frame."""
    message, remaining = decode_stream(frame)
    if message is None:
        raise ProtocolError("incomplete frame")
    if remaining:
        raise ProtocolError(f"{len(remaining)} trailing bytes after frame")
    return message


def decode_stream(buffer: bytes) -> Tuple[Optional[Message], bytes]:
    """Incremental framing: parse one message off the front of a buffer.

    Returns ``(message, remaining_bytes)``; ``message`` is ``None`` when
    the buffer does not yet hold a complete frame.
    """
    if len(buffer) < HEADER_SIZE:
        return None, buffer
    magic, version, msg_type, _reserved, length, crc = _HEADER.unpack_from(
        buffer
    )
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(f"declared body too large: {length}")
    if len(buffer) < HEADER_SIZE + length:
        return None, buffer
    body = buffer[HEADER_SIZE : HEADER_SIZE + length]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise ProtocolError("checksum mismatch")
    try:
        message_type = MessageType(msg_type)
    except ValueError:
        raise ProtocolError(f"unknown message type {msg_type}") from None
    try:
        parsed = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON body: {exc}") from exc
    if not isinstance(parsed, dict):
        raise ProtocolError("body must be a JSON object")
    message = _DECODERS[message_type](parsed)
    return message, buffer[HEADER_SIZE + length :]


def decode_all(buffer: bytes) -> List[Message]:
    """Parse every complete frame in a buffer (must end on a boundary)."""
    messages: List[Message] = []
    while buffer:
        message, buffer = decode_stream(buffer)
        if message is None:
            raise ProtocolError(f"{len(buffer)} bytes of incomplete frame")
        messages.append(message)
    return messages


__all__ = [
    "ErrorMessage",
    "HEADER_SIZE",
    "InvokeMessage",
    "MAX_BODY_BYTES",
    "Message",
    "MessageType",
    "PROTOCOL_VERSION",
    "PingMessage",
    "PongMessage",
    "ProtocolError",
    "ResultMessage",
    "decode_all",
    "decode_message",
    "decode_stream",
    "encode_message",
]
