"""Boot pipeline stages for the worker OS.

A boot is a strictly sequential pipeline of stages.  Each stage has a
*real* (wall-clock) duration and a *CPU fraction* — the share of that
wall time during which the CPU is not idle.  Fig. 1 of the paper reports
both totals ("Real" and "CPU"), so the model carries both.

Two baselines exist:

- ``arm`` — a stock distribution on the BeagleBone Black, dominated by a
  full U-Boot, a generic kernel, Ethernet autonegotiation, and DHCP.
- ``x86`` — a stock guest under the QEMU microVM, where the firmware is
  already light and virtio NICs have no PHY, but the generic kernel and
  DHCP still dominate.

The durations are calibrated so that applying the paper's full
optimization history (:mod:`repro.bootos.optimizations`) lands on the
published 1.51 s (ARM) and 0.96 s (x86) final boot times.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List


class StageName(enum.Enum):
    """The stages of the worker boot pipeline, in execution order."""

    BOOTLOADER = "bootloader"
    KERNEL_INIT = "kernel_init"
    DRIVER_INIT = "driver_init"
    NIC_AUTONEG = "nic_autoneg"
    PHY_RESET = "phy_reset"
    ROOTFS_MOUNT = "rootfs_mount"
    USERSPACE_INIT = "userspace_init"
    NETWORK_CONFIG = "network_config"


#: Canonical execution order of the pipeline.
STAGE_ORDER: List[StageName] = list(StageName)


@dataclass(frozen=True)
class BootStage:
    """One stage of the boot pipeline."""

    name: StageName
    real_s: float
    cpu_fraction: float

    def __post_init__(self) -> None:
        if self.real_s < 0:
            raise ValueError(f"negative stage duration: {self.real_s}")
        if not 0.0 <= self.cpu_fraction <= 1.0:
            raise ValueError(
                f"cpu_fraction must be in [0, 1], got {self.cpu_fraction}"
            )

    @property
    def cpu_s(self) -> float:
        """CPU-busy seconds within this stage."""
        return self.real_s * self.cpu_fraction


class BootSequence:
    """An ordered boot pipeline for one platform.

    Immutable in spirit: transformations return new sequences.
    """

    def __init__(self, platform: str, stages: Iterable[BootStage]):
        if platform not in ("arm", "x86"):
            raise ValueError(f"unknown platform {platform!r}")
        stage_list = list(stages)
        names = [s.name for s in stage_list]
        if names != [n for n in STAGE_ORDER if n in set(names)]:
            raise ValueError("stages out of canonical order or duplicated")
        self.platform = platform
        self._stages: Dict[StageName, BootStage] = {s.name: s for s in stage_list}
        # The sequence is immutable, so the canonical ordering and the
        # Fig. 1 totals are fixed at construction (boots iterate these
        # on the simulation hot path).
        self._ordered = tuple(stage_list)
        self._real_s = sum(s.real_s for s in stage_list)
        self._cpu_s = sum(s.cpu_s for s in stage_list)

    def __iter__(self) -> Iterator[BootStage]:
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._stages)

    def stage(self, name: StageName) -> BootStage:
        """Look up a stage by name."""
        return self._stages[name]

    @property
    def real_s(self) -> float:
        """Total wall-clock boot time."""
        return self._real_s

    @property
    def cpu_s(self) -> float:
        """Total CPU-busy time during boot (as the kernel would report)."""
        return self._cpu_s

    def with_stage(
        self,
        name: StageName,
        real_s: float = None,
        cpu_fraction: float = None,
    ) -> "BootSequence":
        """Return a copy with one stage's parameters replaced."""
        current = self._stages[name]
        updated = replace(
            current,
            real_s=current.real_s if real_s is None else real_s,
            cpu_fraction=(
                current.cpu_fraction if cpu_fraction is None else cpu_fraction
            ),
        )
        stages = [updated if s.name == name else s for s in self]
        return BootSequence(self.platform, stages)

    def scaled_stage(self, name: StageName, factor: float) -> "BootSequence":
        """Return a copy with one stage's real duration scaled."""
        if factor < 0:
            raise ValueError(f"negative scale factor: {factor}")
        return self.with_stage(name, real_s=self._stages[name].real_s * factor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BootSequence {self.platform} real={self.real_s:.2f}s "
            f"cpu={self.cpu_s:.2f}s>"
        )


def baseline_sequence(platform: str) -> BootSequence:
    """The unoptimized, stock-distribution boot pipeline for a platform."""
    if platform == "arm":
        return BootSequence(
            "arm",
            [
                # Full U-Boot with environment probing and boot delay.
                BootStage(StageName.BOOTLOADER, 2.80, 0.80),
                # Generic distro kernel: decompress + init every subsystem.
                BootStage(StageName.KERNEL_INIT, 3.20, 0.90),
                # Probe all compiled-in drivers.
                BootStage(StageName.DRIVER_INIT, 1.60, 0.50),
                # IEEE 802.3 autonegotiation handshake (pure waiting).
                BootStage(StageName.NIC_AUTONEG, 2.50, 0.02),
                # Vendor driver resets the PHY on init.
                BootStage(StageName.PHY_RESET, 0.60, 0.05),
                # Mount an ext4 root from eMMC.
                BootStage(StageName.ROOTFS_MOUNT, 1.40, 0.60),
                # Full init system plus Python runtime start.
                BootStage(StageName.USERSPACE_INIT, 2.60, 0.85),
                # DHCP lease acquisition.
                BootStage(StageName.NETWORK_CONFIG, 1.90, 0.20),
            ],
        )
    if platform == "x86":
        return BootSequence(
            "x86",
            [
                # SeaBIOS-style firmware under stock QEMU.
                BootStage(StageName.BOOTLOADER, 1.20, 0.80),
                BootStage(StageName.KERNEL_INIT, 2.40, 0.90),
                BootStage(StageName.DRIVER_INIT, 0.90, 0.50),
                # virtio-net has no copper PHY: no autonegotiation delay.
                BootStage(StageName.NIC_AUTONEG, 0.00, 0.0),
                BootStage(StageName.PHY_RESET, 0.00, 0.0),
                BootStage(StageName.ROOTFS_MOUNT, 1.00, 0.60),
                BootStage(StageName.USERSPACE_INIT, 2.20, 0.85),
                BootStage(StageName.NETWORK_CONFIG, 1.20, 0.20),
            ],
        )
    raise ValueError(f"unknown platform {platform!r}")


@lru_cache(maxsize=None)
def optimized_sequence(platform: str) -> BootSequence:
    """The fully optimized worker-OS pipeline (all Fig. 1 changes applied).

    Memoized: the result is immutable and every simulated boot asks for
    it, so one instance per platform is shared.
    """
    from repro.bootos.optimizations import DEVELOPMENT_HISTORY, apply_all

    return apply_all(baseline_sequence(platform), DEVELOPMENT_HISTORY)


__all__ = [
    "BootSequence",
    "BootStage",
    "STAGE_ORDER",
    "StageName",
    "baseline_sequence",
    "optimized_sequence",
]
