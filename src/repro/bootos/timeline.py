"""Boot timelines and the Fig. 1 development trajectory.

:class:`BootTimeline` expands a :class:`~repro.bootos.stages.BootSequence`
into per-stage start/end events (useful for worker simulation and for
rendering Gantt-style output), and :func:`development_trajectory` replays
the paper's development history change by change, yielding the series
Fig. 1 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bootos.optimizations import DEVELOPMENT_HISTORY, BootOptimization
from repro.bootos.stages import (
    BootSequence,
    StageName,
    baseline_sequence,
    optimized_sequence,
)

#: Published final boot times (Sec. IV-A).
FINAL_ARM_REAL_S = 1.51
FINAL_X86_REAL_S = 0.96
#: CPU-busy totals implied by the calibrated stage fractions.
FINAL_ARM_CPU_S = 1.1514
FINAL_X86_CPU_S = 0.758


@dataclass(frozen=True)
class StageInterval:
    """One executed stage within a boot timeline."""

    stage: StageName
    start_s: float
    end_s: float
    cpu_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class BootTimeline:
    """Per-stage schedule of one boot of a given sequence."""

    def __init__(self, sequence: BootSequence, start_time: float = 0.0):
        self.sequence = sequence
        self.start_time = start_time
        self.intervals: List[StageInterval] = []
        t = start_time
        for stage in sequence:
            self.intervals.append(
                StageInterval(
                    stage=stage.name,
                    start_s=t,
                    end_s=t + stage.real_s,
                    cpu_s=stage.cpu_s,
                )
            )
            t += stage.real_s

    @property
    def real_s(self) -> float:
        """Wall-clock time from power-on to first network connection."""
        return self.sequence.real_s

    @property
    def cpu_s(self) -> float:
        """CPU-busy time during boot (kernel-reported)."""
        return self.sequence.cpu_s

    @property
    def end_time(self) -> float:
        return self.start_time + self.real_s

    def interval(self, stage: StageName) -> StageInterval:
        """Look up the interval of a stage."""
        for item in self.intervals:
            if item.stage is stage:
                return item
        raise KeyError(stage)


@dataclass(frozen=True)
class TrajectoryPoint:
    """One point of the Fig. 1 series."""

    label: str  # "baseline" or the optimization letter
    name: str
    real_s: float
    cpu_s: float


def development_trajectory(
    platform: str,
    history: Optional[Tuple[BootOptimization, ...]] = None,
) -> List[TrajectoryPoint]:
    """Replay the development history, one cumulative change at a time.

    Returns the series Fig. 1 plots: boot real/CPU time after each change.
    """
    history = DEVELOPMENT_HISTORY if history is None else history
    sequence = baseline_sequence(platform)
    points = [
        TrajectoryPoint(
            label="baseline",
            name="stock distribution",
            real_s=sequence.real_s,
            cpu_s=sequence.cpu_s,
        )
    ]
    for optimization in history:
        sequence = optimization.apply(sequence)
        points.append(
            TrajectoryPoint(
                label=optimization.letter,
                name=optimization.name,
                real_s=sequence.real_s,
                cpu_s=sequence.cpu_s,
            )
        )
    return points


def scaled_stage_intervals(
    sequence: BootSequence,
    start_time: float,
    scale: float = 1.0,
) -> List[StageInterval]:
    """Per-stage intervals of one boot, with wall time scaled.

    Workers boot the calibrated sequence scaled by their board's
    ``boot_time_scale``; the tracing layer uses this to attach per-stage
    sub-spans whose union is exactly the observed boot window
    (``sum(stage.real_s) * scale``).  CPU-busy time scales with the
    wall time, preserving each stage's CPU fraction.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    intervals: List[StageInterval] = []
    t = start_time
    for stage in sequence:
        end = t + stage.real_s * scale
        intervals.append(
            StageInterval(
                stage=stage.name,
                start_s=t,
                end_s=end,
                cpu_s=stage.cpu_s * scale,
            )
        )
        t = end
    return intervals


def reboot_time_s(platform: str) -> float:
    """Time for a full clean-state reboot of the optimized worker OS.

    The paper's run-to-completion model reboots between jobs; Sec. III-a
    claims SBCs reboot in under 2 s (vs. >= 55 s for a rack server).
    """
    return optimized_sequence(platform).real_s


__all__ = [
    "BootTimeline",
    "FINAL_ARM_CPU_S",
    "FINAL_ARM_REAL_S",
    "FINAL_X86_CPU_S",
    "FINAL_X86_REAL_S",
    "StageInterval",
    "TrajectoryPoint",
    "development_trajectory",
    "reboot_time_s",
    "scaled_stage_intervals",
]
