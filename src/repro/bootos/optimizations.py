"""The Fig. 1 worker-OS development history as composable changes.

Each :class:`BootOptimization` captures one change from the paper's
development narrative (Sec. IV-A) and knows how to transform a
:class:`~repro.bootos.stages.BootSequence`.  Effects are per-platform:
e.g. U-Boot falcon mode only exists on the ARM SBC, while its x86
counterpart is a switch to minimal QEMU firmware; the PHY-reset patch is
vendor-specific to the SBC's Ethernet driver and does not apply to
virtio.

Applying the full :data:`DEVELOPMENT_HISTORY` to the baselines lands on
the paper's final boot times: 1.51 s real on ARM and 0.96 s on x86.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.bootos.stages import BootSequence, StageName


@dataclass(frozen=True)
class StageEffect:
    """How one optimization changes one stage on one platform.

    Exactly one of ``set_real_s`` / ``scale_real`` must be given.
    ``set_cpu_fraction`` optionally retunes the CPU fraction (e.g. static
    IP configuration is CPU work where DHCP was mostly waiting).
    """

    set_real_s: Optional[float] = None
    scale_real: Optional[float] = None
    set_cpu_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.set_real_s is None) == (self.scale_real is None):
            raise ValueError("give exactly one of set_real_s / scale_real")

    def apply(self, sequence: BootSequence, stage: StageName) -> BootSequence:
        if self.scale_real is not None:
            sequence = sequence.scaled_stage(stage, self.scale_real)
        else:
            sequence = sequence.with_stage(stage, real_s=self.set_real_s)
        if self.set_cpu_fraction is not None:
            sequence = sequence.with_stage(
                stage, cpu_fraction=self.set_cpu_fraction
            )
        return sequence


@dataclass(frozen=True)
class BootOptimization:
    """One change from the Fig. 1 development history."""

    letter: str
    name: str
    description: str
    #: platform -> stage -> effect; platforms absent are unaffected.
    effects: Mapping[str, Mapping[StageName, StageEffect]]

    def applies_to(self, platform: str) -> bool:
        return platform in self.effects

    def apply(self, sequence: BootSequence) -> BootSequence:
        """Apply this change to ``sequence`` (no-op on other platforms)."""
        for stage, effect in self.effects.get(sequence.platform, {}).items():
            sequence = effect.apply(sequence, stage)
        return sequence


def _both(stage_effects: Dict[StageName, StageEffect]) -> Dict[str, Dict]:
    return {"arm": dict(stage_effects), "x86": dict(stage_effects)}


#: The paper's development history, letters matching Fig. 1.
DEVELOPMENT_HISTORY: Tuple[BootOptimization, ...] = (
    BootOptimization(
        letter="A",
        name="kernel-version-update",
        description="Update to a newer LTS kernel with faster init paths.",
        effects=_both({StageName.KERNEL_INIT: StageEffect(scale_real=0.85)}),
    ),
    BootOptimization(
        letter="B",
        name="minimal-kernel-config",
        description=(
            "Compile in only the features and drivers the two target "
            "platforms need."
        ),
        effects={
            "arm": {
                StageName.KERNEL_INIT: StageEffect(set_real_s=0.70),
                StageName.DRIVER_INIT: StageEffect(set_real_s=0.32),
            },
            "x86": {
                StageName.KERNEL_INIT: StageEffect(set_real_s=0.50),
                StageName.DRIVER_INIT: StageEffect(set_real_s=0.20),
            },
        },
    ),
    BootOptimization(
        letter="C",
        name="micropython-initramfs",
        description=(
            "Replace the distro userspace with an initramfs holding only "
            "MicroPython and a stripped-down BusyBox."
        ),
        effects={
            "arm": {StageName.USERSPACE_INIT: StageEffect(set_real_s=0.20)},
            "x86": {StageName.USERSPACE_INIT: StageEffect(set_real_s=0.16)},
        },
    ),
    BootOptimization(
        letter="D",
        name="initramfs-as-root",
        description=(
            "Use the initramfs as the sole root filesystem; no block-device "
            "root to mount, and every boot starts from a clean RAM copy."
        ),
        effects={
            "arm": {StageName.ROOTFS_MOUNT: StageEffect(set_real_s=0.05)},
            "x86": {StageName.ROOTFS_MOUNT: StageEffect(set_real_s=0.04)},
        },
    ),
    BootOptimization(
        letter="E",
        name="uboot-falcon-mode",
        description=(
            "Compile U-Boot in falcon mode (SPL jumps straight to the "
            "kernel); the x86 microVM equivalent is minimal qboot firmware."
        ),
        effects={
            "arm": {StageName.BOOTLOADER: StageEffect(set_real_s=0.17)},
            "x86": {StageName.BOOTLOADER: StageEffect(set_real_s=0.04)},
        },
    ),
    BootOptimization(
        letter="F",
        name="skip-autonegotiation",
        description=(
            "Patch the NIC driver to skip the Ethernet auto-negotiation "
            "handshake (link parameters are fixed by the ToR switch)."
        ),
        effects={
            "arm": {StageName.NIC_AUTONEG: StageEffect(set_real_s=0.02)},
            # virtio-net never had an autonegotiation delay.
        },
    ),
    BootOptimization(
        letter="G",
        name="no-phy-reset",
        description=(
            "Vendor-specific patch: avoid unnecessarily resetting the "
            "SBC's Ethernet PHY hardware during driver init."
        ),
        effects={
            "arm": {StageName.PHY_RESET: StageEffect(set_real_s=0.02)},
        },
    ),
    BootOptimization(
        letter="H",
        name="static-ipv4",
        description="Drop DHCP; each worker owns a static IPv4 address.",
        effects={
            "arm": {
                StageName.NETWORK_CONFIG: StageEffect(
                    set_real_s=0.10, set_cpu_fraction=0.8
                )
            },
            "x86": {
                StageName.NETWORK_CONFIG: StageEffect(
                    set_real_s=0.07, set_cpu_fraction=0.8
                )
            },
        },
    ),
    BootOptimization(
        letter="I",
        name="ip-on-kernel-cmdline",
        description=(
            "Configure networking from the kernel command line during "
            "early boot instead of from userspace."
        ),
        effects={
            "arm": {StageName.NETWORK_CONFIG: StageEffect(set_real_s=0.03)},
            "x86": {StageName.NETWORK_CONFIG: StageEffect(set_real_s=0.02)},
        },
    ),
)


def apply_all(
    sequence: BootSequence,
    optimizations: Iterable[BootOptimization],
) -> BootSequence:
    """Apply ``optimizations`` to ``sequence`` in order."""
    for optimization in optimizations:
        sequence = optimization.apply(sequence)
    return sequence


__all__ = [
    "BootOptimization",
    "DEVELOPMENT_HISTORY",
    "StageEffect",
    "apply_all",
]
