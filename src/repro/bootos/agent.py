"""The worker agent: the software a booted worker runs.

The initramfs ships a tiny ``worker-agent`` (Sec. IV-A) that connects
to the OP, receives exactly one invocation, executes it under
MicroPython, returns the result, and asks for a reboot — the
single-tenant, run-to-completion contract in code.  This module
implements that agent against the real wire protocol
(:mod:`repro.core.protocol`) and the real workload registry, so a full
OP↔agent exchange can be driven byte-for-byte in tests and examples.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.core.protocol import (
    ErrorMessage,
    InvokeMessage,
    Message,
    PingMessage,
    PongMessage,
    ProtocolError,
    ResultMessage,
    decode_stream,
    encode_message,
)
from repro.workloads.base import ServiceBundle, get_function


class AgentState(enum.Enum):
    """Lifecycle of the agent between boot and reboot."""

    AWAITING_INVOKE = "awaiting_invoke"
    DONE = "done"  # one job served; a reboot is required before the next


class WorkerAgent:
    """A single-tenant, run-to-completion worker agent."""

    def __init__(self, services: Optional[ServiceBundle] = None):
        self.services = services if services is not None else ServiceBundle()
        self.state = AgentState.AWAITING_INVOKE
        self.jobs_served = 0
        self.reboots = 0
        self._buffer = b""

    # -- byte-stream interface ---------------------------------------------------

    def handle_bytes(self, data: bytes) -> List[bytes]:
        """Feed received bytes; returns encoded reply frames.

        Implements socket-reader semantics: partial frames are buffered,
        multiple frames are all processed.
        """
        self._buffer += data
        replies: List[bytes] = []
        while True:
            message, self._buffer = decode_stream(self._buffer)
            if message is None:
                return replies
            reply = self.handle_message(message)
            if reply is not None:
                replies.append(encode_message(reply))

    # -- message interface ----------------------------------------------------------

    def handle_message(self, message: Message) -> Optional[Message]:
        """Process one decoded message, returning the reply (if any)."""
        if isinstance(message, PingMessage):
            return PongMessage(nonce=message.nonce)
        if isinstance(message, InvokeMessage):
            return self._invoke(message)
        raise ProtocolError(
            f"agent cannot handle {type(message).__name__} messages"
        )

    def _invoke(self, message: InvokeMessage) -> Message:
        if self.state is AgentState.DONE:
            # Single tenancy: a second job on an unclean worker is a
            # contract violation — the OP must reboot us first.
            return ErrorMessage(
                job_id=message.job_id,
                error="worker is tainted; reboot required before next job",
            )
        try:
            function = get_function(message.function)
            result = function.run(message.payload, self.services)
        except Exception as exc:  # report, never crash the agent
            self.state = AgentState.DONE
            return ErrorMessage(
                job_id=message.job_id,
                error=f"{type(exc).__name__}: {exc}",
            )
        self.state = AgentState.DONE
        self.jobs_served += 1
        return ResultMessage(job_id=message.job_id, result=result)

    # -- lifecycle --------------------------------------------------------------------

    @property
    def wants_reboot(self) -> bool:
        """True once the agent has served (or failed) its job."""
        return self.state is AgentState.DONE

    def reboot(self) -> None:
        """Simulate the clean-state reboot: fresh buffer, fresh state.

        The services bundle survives — it lives on the backend SBCs, not
        on the worker.
        """
        self.state = AgentState.AWAITING_INVOKE
        self._buffer = b""
        self.reboots += 1


__all__ = ["AgentState", "WorkerAgent"]
