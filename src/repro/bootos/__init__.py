"""Worker operating-system boot model.

The paper's worker OS is a Linux-From-Scratch-style distribution whose
development history (Fig. 1) is a series of changes — kernel update,
minimal kernel config, MicroPython initramfs, initramfs-as-root, U-Boot
falcon mode, skipping Ethernet autonegotiation, avoiding PHY resets, and
static-IP kernel command lines — each shaving boot time until the OS
boots in 1.51 s on the ARM SBC and 0.96 s on the x86 microVM.

This package models:

- :mod:`repro.bootos.stages` — the boot pipeline as named stages with
  real (wall) durations and CPU-busy fractions.
- :mod:`repro.bootos.optimizations` — each Fig. 1 change as a composable
  transformation of the pipeline.
- :mod:`repro.bootos.image` — the OS image artifact (kernel config,
  initramfs manifest, reproducibility hash).
- :mod:`repro.bootos.timeline` — boot timelines, reboot times, and the
  Fig. 1 development trajectory.
"""

from repro.bootos.image import (
    InitramfsComponent,
    InitramfsManifest,
    KernelConfig,
    WorkerOsImage,
    build_worker_image,
)
from repro.bootos.optimizations import (
    DEVELOPMENT_HISTORY,
    BootOptimization,
    apply_all,
)
from repro.bootos.stages import (
    BootSequence,
    BootStage,
    StageName,
    baseline_sequence,
    optimized_sequence,
)
from repro.bootos.timeline import (
    FINAL_ARM_CPU_S,
    FINAL_ARM_REAL_S,
    FINAL_X86_CPU_S,
    FINAL_X86_REAL_S,
    BootTimeline,
    development_trajectory,
)

__all__ = [
    "BootOptimization",
    "BootSequence",
    "BootStage",
    "BootTimeline",
    "DEVELOPMENT_HISTORY",
    "FINAL_ARM_CPU_S",
    "FINAL_ARM_REAL_S",
    "FINAL_X86_CPU_S",
    "FINAL_X86_REAL_S",
    "InitramfsComponent",
    "InitramfsManifest",
    "KernelConfig",
    "StageName",
    "WorkerOsImage",
    "apply_all",
    "baseline_sequence",
    "build_worker_image",
    "development_trajectory",
    "optimized_sequence",
]
