"""Worker-OS image artifacts: kernel config, initramfs, reproducibility.

The paper stresses that the worker OS is *reproducible*: the bootloader
loads a clean copy of the initramfs into RAM on every boot, so every
function execution starts from a bit-identical environment.  This module
models the image as a build artifact — a kernel configuration, an
initramfs manifest, and a deterministic content hash — and validates
that a build is actually bootable (init present, interpreter present,
the right NIC driver compiled in, image fits the SBC's flash).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

#: Kernel features a worker image may enable, with rough binary-size cost.
KERNEL_FEATURE_SIZES: Mapping[str, int] = {
    "core": 2_400_000,
    "emmc": 120_000,
    "ethernet-cpsw": 90_000,  # the SBC's NIC driver
    "ethernet-virtio": 60_000,  # the microVM's NIC driver
    "ipv4-static": 40_000,
    "dhcp-client": 55_000,
    "initramfs-root": 30_000,
    "ext4": 350_000,
    "usb": 400_000,
    "sound": 700_000,
    "graphics": 1_500_000,
    "wireless": 900_000,
    "debug-symbols": 6_000_000,
}

#: NIC driver feature required on each platform.
PLATFORM_NIC_FEATURE = {"arm": "ethernet-cpsw", "x86": "ethernet-virtio"}


class ImageBuildError(ValueError):
    """Raised when an image configuration cannot produce a bootable OS."""


@dataclass(frozen=True)
class KernelConfig:
    """A kernel build configuration (set of enabled features)."""

    features: FrozenSet[str]
    version: str = "5.10"

    def __post_init__(self) -> None:
        unknown = self.features - set(KERNEL_FEATURE_SIZES)
        if unknown:
            raise ImageBuildError(f"unknown kernel features: {sorted(unknown)}")
        if "core" not in self.features:
            raise ImageBuildError("kernel config must include 'core'")

    @property
    def binary_size_bytes(self) -> int:
        return sum(KERNEL_FEATURE_SIZES[f] for f in self.features)

    def supports_platform(self, platform: str) -> bool:
        """Does this kernel have the platform's NIC driver compiled in?"""
        return PLATFORM_NIC_FEATURE[platform] in self.features


@dataclass(frozen=True)
class InitramfsComponent:
    """One file tree inside the initramfs."""

    name: str
    size_bytes: int
    provides: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ImageBuildError(f"negative component size: {self.size_bytes}")


#: Components available to the initramfs builder.
MICROPYTHON = InitramfsComponent(
    "micropython", 620_000, frozenset({"interpreter"})
)
BUSYBOX_STRIPPED = InitramfsComponent(
    "busybox-stripped", 380_000, frozenset({"init", "shell"})
)
BUSYBOX_FULL = InitramfsComponent(
    "busybox-full", 1_100_000, frozenset({"init", "shell", "extras"})
)
CPYTHON = InitramfsComponent("cpython", 28_000_000, frozenset({"interpreter"}))
WORKER_AGENT = InitramfsComponent(
    "worker-agent", 24_000, frozenset({"agent"})
)
GLIBC = InitramfsComponent("glibc", 8_000_000, frozenset({"libc"}))


@dataclass(frozen=True)
class InitramfsManifest:
    """The ordered contents of the initial ramdisk."""

    components: Tuple[InitramfsComponent, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.components]
        if len(names) != len(set(names)):
            raise ImageBuildError(f"duplicate initramfs components: {names}")

    @property
    def size_bytes(self) -> int:
        return sum(c.size_bytes for c in self.components)

    @property
    def capabilities(self) -> FrozenSet[str]:
        caps: set[str] = set()
        for component in self.components:
            caps |= component.provides
        return frozenset(caps)

    def validate_bootable(self) -> None:
        """A worker initramfs needs an init and a function interpreter."""
        missing = {"init", "interpreter", "agent"} - self.capabilities
        if missing:
            raise ImageBuildError(
                f"initramfs not bootable; missing capabilities: {sorted(missing)}"
            )


@dataclass(frozen=True)
class WorkerOsImage:
    """A built, flashable worker-OS image."""

    platform: str
    kernel: KernelConfig
    initramfs: InitramfsManifest
    kernel_cmdline: str
    falcon_mode: bool
    content_hash: str

    @property
    def total_size_bytes(self) -> int:
        return self.kernel.binary_size_bytes + self.initramfs.size_bytes

    def fits_storage(self, storage_bytes: int) -> bool:
        return self.total_size_bytes <= storage_bytes

    def fits_ram(self, ram_bytes: int) -> bool:
        """The initramfs plus kernel must leave working RAM for functions.

        We require the image to take at most a quarter of RAM, leaving the
        rest for the MicroPython heap and network buffers.
        """
        return self.total_size_bytes <= ram_bytes // 4


def _image_hash(
    platform: str,
    kernel: KernelConfig,
    initramfs: InitramfsManifest,
    cmdline: str,
    falcon_mode: bool,
) -> str:
    hasher = hashlib.sha256()
    hasher.update(platform.encode())
    hasher.update(kernel.version.encode())
    for feature in sorted(kernel.features):
        hasher.update(feature.encode())
    for component in initramfs.components:
        hasher.update(component.name.encode())
        hasher.update(str(component.size_bytes).encode())
    hasher.update(cmdline.encode())
    hasher.update(b"falcon" if falcon_mode else b"normal")
    return hasher.hexdigest()


def default_kernel_config(platform: str) -> KernelConfig:
    """The paper's minimal kernel config for a platform (change B)."""
    features = {"core", "initramfs-root", "ipv4-static", PLATFORM_NIC_FEATURE[platform]}
    if platform == "arm":
        features.add("emmc")
    return KernelConfig(features=frozenset(features))


def default_initramfs() -> InitramfsManifest:
    """The paper's initramfs: MicroPython + stripped BusyBox + agent."""
    return InitramfsManifest(
        components=(MICROPYTHON, BUSYBOX_STRIPPED, WORKER_AGENT)
    )


def build_worker_image(
    platform: str,
    kernel: KernelConfig = None,
    initramfs: InitramfsManifest = None,
    static_ip: str = "10.0.0.100",
    falcon_mode: bool = None,
) -> WorkerOsImage:
    """Build and validate a worker-OS image for ``platform``.

    Raises
    ------
    ImageBuildError
        If the configuration cannot boot on the platform (missing NIC
        driver, no interpreter/init in the initramfs, ...).
    """
    if platform not in PLATFORM_NIC_FEATURE:
        raise ImageBuildError(f"unknown platform {platform!r}")
    kernel = default_kernel_config(platform) if kernel is None else kernel
    initramfs = default_initramfs() if initramfs is None else initramfs
    if falcon_mode is None:
        falcon_mode = platform == "arm"
    if falcon_mode and platform != "arm":
        raise ImageBuildError("falcon mode is a U-Boot (ARM) feature")
    if not kernel.supports_platform(platform):
        raise ImageBuildError(
            f"kernel lacks the {platform} NIC driver "
            f"({PLATFORM_NIC_FEATURE[platform]})"
        )
    initramfs.validate_bootable()
    cmdline = f"ip={static_ip}::10.0.0.1:255.255.255.0::eth0:off root=/dev/ram0"
    return WorkerOsImage(
        platform=platform,
        kernel=kernel,
        initramfs=initramfs,
        kernel_cmdline=cmdline,
        falcon_mode=falcon_mode,
        content_hash=_image_hash(platform, kernel, initramfs, cmdline, falcon_mode),
    )


__all__ = [
    "BUSYBOX_FULL",
    "BUSYBOX_STRIPPED",
    "CPYTHON",
    "GLIBC",
    "ImageBuildError",
    "InitramfsComponent",
    "InitramfsManifest",
    "KERNEL_FEATURE_SIZES",
    "KernelConfig",
    "MICROPYTHON",
    "WORKER_AGENT",
    "WorkerOsImage",
    "build_worker_image",
    "default_initramfs",
    "default_kernel_config",
]
