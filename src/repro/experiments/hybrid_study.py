"""Hybrid study: sweeping the SBC:VM mix of a heterogeneous cluster.

The paper pits a 10-SBC MicroFaaS cluster against a 6-VM conventional
one; the harness makes the whole spectrum in between a one-liner.  This
experiment sweeps a :class:`~repro.cluster.hybrid.HybridCluster` across
SBC:VM mixes under the saturated workload and reports, per mix, the
aggregate throughput and J/function plus the per-platform split the
platform-tagged telemetry provides: jobs served, p99 latency, and
metered energy for the ``arm`` and ``x86`` fleets separately.  The
energy-aware default policy keeps work on SBCs and spills to VMs under
queue pressure, so the sweep shows how much throughput each VM buys and
what it costs in J/function.

Every mix is an independent, seeded task on the shared
:func:`~repro.experiments.runner.run_map` runner, so the sweep is
bit-identical at any ``--jobs`` and caches per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.hybrid import HybridCluster
from repro.cluster.matching import hybrid_throughput_per_min
from repro.core.platform import ARM, X86
from repro.experiments.report import format_table
from repro.experiments.runner import run_map
from repro.obs.export import write_trace_file
from repro.obs.trace import TraceConfig
from repro.shard import ClusterSpec, ShardedCluster

#: Default sweep: the paper's two endpoints (10 SBCs / 6 VMs) and the
#: mixes in between.
DEFAULT_MIXES: Tuple[Tuple[int, int], ...] = (
    (10, 0),
    (8, 2),
    (6, 3),
    (4, 4),
    (2, 5),
    (0, 6),
)


@dataclass(frozen=True)
class HybridStudyTask:
    """Picklable spec for one SBC:VM mix point."""

    sbc_count: int
    vm_count: int
    invocations_per_function: int
    seed: int
    #: Shards to split this point's simulation across (1 = serial).
    #: The default energy-aware policy is shardable, so sharded points
    #: are bit-identical to serial ones — this is purely an
    #: execution-mode knob for very wide mixes.
    shards: int = 1


@dataclass(frozen=True)
class HybridStudyPoint:
    """One mix's measurements, aggregate and per platform."""

    sbc_count: int
    vm_count: int
    jobs_completed: int
    duration_s: float
    throughput_per_min: float
    energy_joules: float
    joules_per_function: float
    predicted_throughput_per_min: float
    arm_jobs: int
    x86_jobs: int
    arm_energy_joules: float
    x86_energy_joules: float
    arm_p99_latency_s: Optional[float]
    x86_p99_latency_s: Optional[float]

    @property
    def worker_count(self) -> int:
        return self.sbc_count + self.vm_count


@dataclass(frozen=True)
class HybridStudyResult:
    points: List[HybridStudyPoint]

    def best_joules_per_function(self) -> HybridStudyPoint:
        return min(self.points, key=lambda p: p.joules_per_function)

    def best_throughput(self) -> HybridStudyPoint:
        return max(self.points, key=lambda p: p.throughput_per_min)


def _build_point_cluster(
    task: HybridStudyTask, trace: Optional[TraceConfig] = None
) -> HybridCluster:
    """A seeded hybrid cluster for one mix (shared between the cached
    sweep workers and the inline traced re-run)."""
    return HybridCluster(
        sbc_count=task.sbc_count,
        vm_count=task.vm_count,
        seed=task.seed,
        trace=trace,
    )


def _run_mix_point(task: HybridStudyTask) -> HybridStudyPoint:
    """Worker: one saturated run of one SBC:VM mix."""
    if task.shards > 1:
        # Inline executor: this worker may itself be a run_map child
        # process, and the results are bit-identical either way — the
        # win here is memory (per-shard record pools), not wall-clock.
        sharded = ShardedCluster(
            ClusterSpec(
                kind="hybrid",
                sbc_count=task.sbc_count,
                vm_count=task.vm_count,
                seed=task.seed,
            ),
            task.shards,
            executor="inline",
        )
        result = sharded.run_saturated(
            invocations_per_function=task.invocations_per_function
        )
    else:
        cluster = _build_point_cluster(task)
        result = cluster.run_saturated(
            invocations_per_function=task.invocations_per_function
        )
    telemetry = result.telemetry
    energy = result.energy_by_platform

    def platform_stats(platform: str) -> Tuple[int, Optional[float]]:
        if platform not in telemetry.platforms_seen:
            return 0, None
        return (
            telemetry.platform_count(platform),
            telemetry.platform_percentile_latency_s(platform, 99.0),
        )

    arm_jobs, arm_p99 = platform_stats(ARM)
    x86_jobs, x86_p99 = platform_stats(X86)
    return HybridStudyPoint(
        sbc_count=task.sbc_count,
        vm_count=task.vm_count,
        jobs_completed=result.jobs_completed,
        duration_s=result.duration_s,
        throughput_per_min=result.throughput_per_min,
        energy_joules=result.energy_joules,
        joules_per_function=result.joules_per_function,
        predicted_throughput_per_min=hybrid_throughput_per_min(
            task.sbc_count, task.vm_count
        ),
        arm_jobs=arm_jobs,
        x86_jobs=x86_jobs,
        arm_energy_joules=energy.get(ARM, 0.0),
        x86_energy_joules=energy.get(X86, 0.0),
        arm_p99_latency_s=arm_p99,
        x86_p99_latency_s=x86_p99,
    )


def _trace_point(task: HybridStudyTask, trace_path: str) -> None:
    """Re-run one mix inline with span recording and export it.

    The sweep itself stays on the cached ``run_map`` path; the traced
    re-run is a separate cluster with the same seed, so the exported
    platform-tagged attempt spans match the reported numbers.
    """
    cluster = _build_point_cluster(task, trace=TraceConfig())
    cluster.run_saturated(
        invocations_per_function=task.invocations_per_function
    )
    write_trace_file(cluster.finished_traces(), trace_path)


def run(
    mixes: Sequence[Tuple[int, int]] = DEFAULT_MIXES,
    invocations_per_function: int = 4,
    seed: int = 7,
    jobs: int = 1,
    cache: bool = True,
    cache_dir=None,
    trace_path: Optional[str] = None,
    shards: int = 1,
) -> HybridStudyResult:
    """Sweep SBC:VM mixes over independent seeded cluster runs.

    With ``trace_path`` set, the most heterogeneous point (largest
    ``min(sbc, vm)``, i.e. the most evenly mixed) is re-run inline with
    tracing enabled and its span trees written to that path.

    ``shards > 1`` runs each point through the sharded engine
    (bit-identical results; see :class:`repro.shard.ShardedCluster`).
    Capped per point at its worker count.
    """
    if not mixes:
        raise ValueError("need at least one mix")
    for sbc_count, vm_count in mixes:
        if sbc_count < 0 or vm_count < 0:
            raise ValueError("worker counts must be non-negative")
        if sbc_count + vm_count < 1:
            raise ValueError("each mix needs at least one worker")
    if invocations_per_function < 1:
        raise ValueError("invocations_per_function must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    tasks = [
        HybridStudyTask(
            sbc,
            vm,
            invocations_per_function,
            seed,
            shards=min(shards, sbc + vm),
        )
        for sbc, vm in mixes
    ]
    points = run_map(
        tasks, _run_mix_point, jobs=jobs, cache=cache, cache_dir=cache_dir
    )
    if trace_path is not None:
        _trace_point(
            max(tasks, key=lambda t: (min(t.sbc_count, t.vm_count), t.sbc_count)),
            trace_path,
        )
    return HybridStudyResult(points=points)


def render(result: HybridStudyResult) -> str:
    def p99(value: Optional[float]) -> str:
        return f"{value:.1f}" if value is not None else "-"

    rows = []
    for point in result.points:
        rows.append(
            (
                f"{point.sbc_count}+{point.vm_count}",
                point.jobs_completed,
                f"{point.throughput_per_min:.0f}",
                f"{point.predicted_throughput_per_min:.0f}",
                f"{point.joules_per_function:.1f}",
                point.arm_jobs,
                point.x86_jobs,
                f"{point.arm_energy_joules:.0f}",
                f"{point.x86_energy_joules:.0f}",
                p99(point.arm_p99_latency_s),
                p99(point.x86_p99_latency_s),
            )
        )
    table = format_table(
        [
            "sbc+vm",
            "jobs",
            "func/min",
            "pred",
            "J/func",
            "arm jobs",
            "x86 jobs",
            "arm J",
            "x86 J",
            "arm p99 s",
            "x86 p99 s",
        ],
        rows,
        title="Hybrid study - SBC:VM mix sweep (energy-aware policy)",
    )
    efficient = result.best_joules_per_function()
    fast = result.best_throughput()
    closing = (
        f"\nmost efficient mix: {efficient.sbc_count} SBC + "
        f"{efficient.vm_count} VM at "
        f"{efficient.joules_per_function:.1f} J/function; fastest mix: "
        f"{fast.sbc_count} SBC + {fast.vm_count} VM at "
        f"{fast.throughput_per_min:.0f} func/min."
    )
    return table + closing


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
