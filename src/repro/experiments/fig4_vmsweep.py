"""Fig. 4: conventional-cluster efficiency and throughput vs. VM count.

Sweeps the number of microVMs on the rack server, running the full
17-function mix at each point, and reports throughput (func/min) and
energy efficiency (J/function).  The paper's observations to reproduce:

- at the throughput-matched 6 VMs the cluster burns ~32.0 J/function;
- efficiency improves with VM count until the host saturates, peaking
  around 16.1 J/function;
- the MicroFaaS reference line (5.7 J/function) stays below the
  conventional curve everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cluster import ConventionalCluster, MicroFaaSCluster
from repro.core.scheduler import LeastLoadedPolicy
from repro.energy.efficiency import peak_efficiency
from repro.experiments.report import format_table
from repro.experiments.runner import run_map

#: Published reference values.
PAPER_SIX_VM_JPF = 32.0
PAPER_PEAK_JPF = 16.1
PAPER_MICROFAAS_JPF = 5.7


@dataclass(frozen=True)
class SweepPoint:
    """One VM count's measurement."""

    vm_count: int
    throughput_per_min: float
    joules_per_function: float
    average_watts: float


@dataclass(frozen=True)
class Fig4Result:
    points: List[SweepPoint]
    microfaas_jpf: float

    @property
    def peak(self) -> SweepPoint:
        """The efficiency peak of the sweep."""
        best_count, _ = peak_efficiency(
            [(p.vm_count, p.joules_per_function) for p in self.points]
        )
        return next(p for p in self.points if p.vm_count == best_count)

    def at(self, vm_count: int) -> SweepPoint:
        for point in self.points:
            if point.vm_count == vm_count:
                return point
        raise KeyError(f"no sweep point at {vm_count} VMs")


@dataclass(frozen=True)
class SweepTask:
    """Picklable spec for one sweep point (its seed rides along)."""

    platform: str  # "conventional" or "microfaas"
    vm_count: int
    invocations_per_function: int
    seed: int


def _run_sweep_task(task: SweepTask):
    """Worker for one sweep point (runs in-process or in a pool)."""
    if task.platform == "microfaas":
        microfaas = MicroFaaSCluster(
            worker_count=10, seed=task.seed, policy=LeastLoadedPolicy()
        )
        mf_result = microfaas.run_saturated(
            invocations_per_function=task.invocations_per_function
        )
        return mf_result.joules_per_function
    cluster = ConventionalCluster(
        vm_count=task.vm_count,
        seed=task.seed,
        policy=LeastLoadedPolicy(),
        quantum_s=0.15,
    )
    result = cluster.run_saturated(
        invocations_per_function=task.invocations_per_function
    )
    return SweepPoint(
        vm_count=task.vm_count,
        throughput_per_min=result.throughput_per_min,
        joules_per_function=result.joules_per_function,
        average_watts=result.average_watts,
    )


def run(
    vm_counts: Sequence[int] = (1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24),
    invocations_per_function: int = 8,
    seed: int = 1,
    measure_microfaas: bool = True,
    jobs: int = 1,
    cache: bool = True,
    cache_dir=None,
) -> Fig4Result:
    """Regenerate Fig. 4's sweep.

    Sweep points are independent, so they fan across ``jobs`` worker
    processes and memoize per-point in the shared result cache; every
    point carries its own seed, keeping results identical at any
    ``jobs`` value.
    """
    tasks = [
        SweepTask("conventional", vm_count, invocations_per_function, seed)
        for vm_count in vm_counts
    ]
    if measure_microfaas:
        tasks.append(SweepTask("microfaas", 10, invocations_per_function, seed))
    outputs = run_map(
        tasks, _run_sweep_task, jobs=jobs, cache=cache, cache_dir=cache_dir
    )
    if measure_microfaas:
        points, microfaas_jpf = outputs[:-1], outputs[-1]
    else:
        points, microfaas_jpf = outputs, PAPER_MICROFAAS_JPF
    return Fig4Result(points=list(points), microfaas_jpf=microfaas_jpf)


def render(result: Fig4Result) -> str:
    from repro.experiments.report import format_xy_chart

    rows = [
        (
            point.vm_count,
            f"{point.throughput_per_min:.1f}",
            f"{point.joules_per_function:.1f}",
            f"{point.average_watts:.1f}",
        )
        for point in result.points
    ]
    table = format_table(
        ["VMs", "func/min", "J/func", "avg W"],
        rows,
        title="Fig. 4 - Conventional cluster vs VM count "
              "(paper: 32.0 J/func at 6 VMs, peak 16.1 J/func)",
    )
    peak = result.peak
    xs = [p.vm_count for p in result.points]
    chart = format_xy_chart(
        {
            "conventional J/func": (xs, [p.joules_per_function for p in result.points]),
            "microfaas reference": (
                xs, [result.microfaas_jpf] * len(result.points),
            ),
        },
        title="",
        x_label="VMs",
        y_label="J/function",
    )
    return table + "\n" + chart + (
        f"\npeak efficiency: {peak.joules_per_function:.1f} J/func at "
        f"{peak.vm_count} VMs; MicroFaaS reference: "
        f"{result.microfaas_jpf:.1f} J/func (always lower)"
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
