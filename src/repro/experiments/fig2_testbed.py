"""Fig. 2: the prototype test cluster (composition view).

The paper's Fig. 2 is a photograph of the physical testbed.  Its
reproducible content is the *composition*: ten BeagleBone Black workers,
the orchestration SBC, the backend-services SBC, and the 24-port managed
switch, all on one Ethernet segment with GPIO power wiring.  This
experiment builds the simulated cluster and renders exactly that
inventory, verified against the live topology objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cluster import MicroFaaSCluster
from repro.experiments.report import format_table


@dataclass(frozen=True)
class TestbedInventory:
    """What is racked up and how it is wired."""

    worker_count: int
    worker_model: str
    switch_name: str
    switch_ports_used: int
    switch_ports_total: int
    gpio_lines: int
    endpoints: Dict[str, str]  # name -> NIC description


def run(worker_count: int = 10) -> TestbedInventory:
    """Build the testbed and take inventory."""
    cluster = MicroFaaSCluster(worker_count=worker_count)
    endpoints = {
        name: endpoint.nic.name
        for name, endpoint in cluster.topology.endpoints.items()
    }
    return TestbedInventory(
        worker_count=len(cluster.sbcs),
        worker_model=cluster.sbcs[0].spec.name,
        switch_name=cluster.switch.spec.name,
        switch_ports_used=cluster.switch.ports_used,
        switch_ports_total=cluster.switch.ports_total,
        gpio_lines=cluster.gpio.worker_count,
        endpoints=endpoints,
    )


def render(inventory: TestbedInventory) -> str:
    rows = [
        (name, nic)
        for name, nic in sorted(inventory.endpoints.items())
    ]
    table = format_table(
        ["endpoint", "NIC"],
        rows,
        title="Fig. 2 - MicroFaaS prototype test cluster (composition)",
    )
    return table + (
        f"\n{inventory.worker_count}x {inventory.worker_model} workers, "
        f"{inventory.gpio_lines} GPIO PWR_BUT lines, "
        f"{inventory.switch_ports_used}/{inventory.switch_ports_total} "
        f"ports used on the {inventory.switch_name}"
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
