"""Table I: the workload function suite, characterized live.

Executes every function for real on the local platform and reports its
category, description, FunctionBench provenance, and measured local
latency — the reproduction's equivalent of Table I plus a sanity
characterization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.report import format_table
from repro.runtime import LocalFaaSPlatform
from repro.workloads import ALL_FUNCTION_NAMES, registry


@dataclass(frozen=True)
class WorkloadRow:
    """One Table I row, with a live measurement attached."""

    name: str
    category: str
    description: str
    from_functionbench: bool
    live_latency_s: float


@dataclass(frozen=True)
class Table1Result:
    rows: List[WorkloadRow]

    @property
    def cpu_bound(self) -> List[WorkloadRow]:
        return [r for r in self.rows if r.category == "cpu"]

    @property
    def network_bound(self) -> List[WorkloadRow]:
        return [r for r in self.rows if r.category == "network"]


def run(scale: float = 0.05, repeats: int = 1) -> Table1Result:
    """Execute every Table I function live and time it."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    functions = registry()
    rows = []
    with LocalFaaSPlatform(workers=2, seed=7) as platform:
        for name in ALL_FUNCTION_NAMES:
            latencies = [
                platform.invoke(name, scale=scale).latency_s
                for _ in range(repeats)
            ]
            function = functions[name]
            rows.append(
                WorkloadRow(
                    name=name,
                    category=function.category,
                    description=function.description,
                    from_functionbench=function.from_functionbench,
                    live_latency_s=sum(latencies) / len(latencies),
                )
            )
    return Table1Result(rows=rows)


def render(result: Table1Result) -> str:
    rows = [
        (
            row.name + ("*" if row.from_functionbench else ""),
            row.category,
            row.description,
            f"{row.live_latency_s * 1000:.1f}",
        )
        for row in result.rows
    ]
    table = format_table(
        ["function", "class", "description", "live ms"],
        rows,
        title="Table I - Workload functions "
              "(* adapted from FunctionBench); live = real execution here",
    )
    return (
        table
        + f"\n{len(result.cpu_bound)} CPU/RAM-bound, "
        + f"{len(result.network_bound)} network-bound"
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
