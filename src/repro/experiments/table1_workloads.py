"""Table I: the workload function suite, characterized live.

Executes every function for real on the local platform and reports its
category, description, FunctionBench provenance, and measured local
latency — the reproduction's equivalent of Table I plus a sanity
characterization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.report import format_table
from repro.experiments.runner import run_map
from repro.runtime import LocalFaaSPlatform
from repro.workloads import ALL_FUNCTION_NAMES, registry


@dataclass(frozen=True)
class WorkloadRow:
    """One Table I row, with a live measurement attached."""

    name: str
    category: str
    description: str
    from_functionbench: bool
    live_latency_s: float


@dataclass(frozen=True)
class Table1Result:
    rows: List[WorkloadRow]

    @property
    def cpu_bound(self) -> List[WorkloadRow]:
        return [r for r in self.rows if r.category == "cpu"]

    @property
    def network_bound(self) -> List[WorkloadRow]:
        return [r for r in self.rows if r.category == "network"]


@dataclass(frozen=True)
class WorkloadTask:
    """Picklable spec for one function's live characterization."""

    name: str
    scale: float
    repeats: int
    seed: int


def _run_row(task: WorkloadTask) -> WorkloadRow:
    """Worker: execute one Table I function for real and time it."""
    function = registry()[task.name]
    with LocalFaaSPlatform(workers=2, seed=task.seed) as platform:
        latencies = [
            platform.invoke(task.name, scale=task.scale).latency_s
            for _ in range(task.repeats)
        ]
    return WorkloadRow(
        name=task.name,
        category=function.category,
        description=function.description,
        from_functionbench=function.from_functionbench,
        live_latency_s=sum(latencies) / len(latencies),
    )


def run(
    scale: float = 0.05,
    repeats: int = 1,
    seed: int = 7,
    jobs: int = 1,
    cache: bool = False,
    cache_dir=None,
) -> Table1Result:
    """Execute every Table I function live and time it.

    Each function characterizes independently (one task per row), so
    the suite fans across ``jobs`` processes.  Caching defaults *off*
    here — the latencies are live wall-clock measurements, and serving
    a stale timing would defeat the characterization — but the CLI can
    opt in for quick artifact regeneration.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    tasks = [
        WorkloadTask(name, scale, repeats, seed)
        for name in ALL_FUNCTION_NAMES
    ]
    rows = run_map(
        tasks, _run_row, jobs=jobs, cache=cache, cache_dir=cache_dir
    )
    return Table1Result(rows=rows)


def render(result: Table1Result) -> str:
    rows = [
        (
            row.name + ("*" if row.from_functionbench else ""),
            row.category,
            row.description,
            f"{row.live_latency_s * 1000:.1f}",
        )
        for row in result.rows
    ]
    table = format_table(
        ["function", "class", "description", "live ms"],
        rows,
        title="Table I - Workload functions "
              "(* adapted from FunctionBench); live = real execution here",
    )
    return (
        table
        + f"\n{len(result.cpu_bound)} CPU/RAM-bound, "
        + f"{len(result.network_bound)} network-bound"
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
