"""Hardware selection study: which SBC should a MicroFaaS fleet use?

Sec. III names two candidate worker boards — the BeagleBone Black the
prototype uses and the Raspberry Pi Compute Module.  This extension
runs the full workload on clusters of each and folds the results into
the TCO model, producing the numbers an operator would compare:
throughput per board, J/function, acquisition cost per unit of
throughput, and 5-year cost per million invocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cluster import MicroFaaSCluster
from repro.core.scheduler import LeastLoadedPolicy
from repro.experiments.report import format_table
from repro.hardware.specs import BEAGLEBONE_BLACK, RASPBERRY_PI_CM, SbcSpec
from repro.net.switch import switches_needed
from repro.tco.assumptions import (
    CostAssumptions,
    DeploymentSpec,
    REALISTIC,
)
from repro.tco.model import TcoModel


@dataclass(frozen=True)
class CandidateResult:
    """One board's measured and costed profile."""

    spec_name: str
    unit_cost_usd: float
    throughput_per_board_per_min: float
    joules_per_function: float
    #: 5-year realistic-scenario cost of a rack-equivalent fleet sized
    #: to the conventional rack's throughput, per million invocations.
    usd_per_million_invocations: float
    fleet_size: int


@dataclass(frozen=True)
class HardwareSelectionResult:
    candidates: List[CandidateResult]

    def best_by_cost(self) -> CandidateResult:
        return min(
            self.candidates, key=lambda c: c.usd_per_million_invocations
        )

    def best_by_energy(self) -> CandidateResult:
        return min(self.candidates, key=lambda c: c.joules_per_function)


#: Throughput target: what Table II's MicroFaaS rack delivers — 989
#: BeagleBones at their nominal 20.06 func/min (the paper's sizing of a
#: fleet "with equivalent throughput" to 41 saturated rack servers).
RACK_TARGET_PER_MIN = 989 * (200.6 / 10)


def _evaluate(
    spec: SbcSpec,
    invocations_per_function: int,
    seed: int,
    assumptions: CostAssumptions,
) -> CandidateResult:
    cluster = MicroFaaSCluster(
        worker_count=10, seed=seed, policy=LeastLoadedPolicy(), sbc_spec=spec
    )
    result = cluster.run_saturated(
        invocations_per_function=invocations_per_function
    )
    per_board = result.throughput_per_min / 10
    fleet = max(1, round(RACK_TARGET_PER_MIN / per_board))
    deployment = DeploymentSpec(
        name=spec.name,
        node_count=fleet,
        node_cost_usd=spec.unit_cost_usd,
        node_loaded_watts=result.average_watts / 10,
        node_idle_watts=spec.power.off,
        switch_count=switches_needed(fleet),
    )
    total_usd = TcoModel(assumptions).evaluate(deployment, REALISTIC).total_usd
    # Invocations the fleet completes over the 5-year horizon at the
    # realistic 50 % utilization.
    invocations = (
        RACK_TARGET_PER_MIN * 60 * assumptions.lifetime_hours * 0.5
    )
    return CandidateResult(
        spec_name=spec.name,
        unit_cost_usd=spec.unit_cost_usd,
        throughput_per_board_per_min=per_board,
        joules_per_function=result.joules_per_function,
        usd_per_million_invocations=total_usd / (invocations / 1e6),
        fleet_size=fleet,
    )


def run(
    specs: Sequence[SbcSpec] = (BEAGLEBONE_BLACK, RASPBERRY_PI_CM),
    invocations_per_function: int = 20,
    seed: int = 1,
    assumptions: CostAssumptions = CostAssumptions(),
) -> HardwareSelectionResult:
    """Evaluate each candidate board on the full 17-function mix."""
    if not specs:
        raise ValueError("need at least one candidate spec")
    return HardwareSelectionResult(
        candidates=[
            _evaluate(spec, invocations_per_function, seed, assumptions)
            for spec in specs
        ]
    )


def render(result: HardwareSelectionResult) -> str:
    rows = [
        (
            c.spec_name,
            f"${c.unit_cost_usd:.2f}",
            f"{c.throughput_per_board_per_min:.1f}",
            f"{c.joules_per_function:.2f}",
            c.fleet_size,
            f"${c.usd_per_million_invocations:.2f}",
        )
        for c in result.candidates
    ]
    table = format_table(
        ["board", "unit cost", "func/min/board", "J/func",
         "fleet for 1 rack", "$ per M invocations"],
        rows,
        title="Hardware selection - candidate worker boards "
              "(rack-equivalent fleet, realistic scenario)",
    )
    return table + (
        f"\ncheapest per invocation: {result.best_by_cost().spec_name}; "
        f"most energy-efficient: {result.best_by_energy().spec_name}"
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
