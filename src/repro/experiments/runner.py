"""Shared experiment execution: parallel map with result caching.

Every sweep-shaped experiment in this reproduction fans a set of
mutually independent simulation points (a VM count, a cluster size, a
workload name) through the same pattern: build a cluster, run it,
collect a small result record.  This module factors that pattern out:

- :func:`run_map` maps a picklable task-spec list over a worker
  function, optionally across a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Each task spec carries its own seed, so parallel execution is
  bit-identical to serial execution regardless of completion order.
- :class:`ResultCache` is a content-addressed on-disk cache keyed by a
  stable hash of the task spec, the worker function's identity, and a
  fingerprint of the installed ``repro`` source tree — so re-running a
  sweep recomputes only points whose inputs (or whose code) changed,
  and any source edit invalidates everything automatically.
- :func:`derive_seed` derives per-task seeds deterministically from a
  base seed plus arbitrary task components, for experiments that need
  distinct-but-reproducible streams per point.

The cache directory resolves, in order: an explicit ``cache_dir``
argument, ``$REPRO_CACHE_DIR``, a repo-local ``.repro_cache/`` when
running from a source checkout, else ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "ResultCache",
    "TaskExecutionError",
    "code_fingerprint",
    "default_cache_dir",
    "derive_seed",
    "run_map",
    "stable_hash",
]


class TaskExecutionError(RuntimeError):
    """A :func:`run_map` worker raised; carries the originating task.

    A traceback surfacing from a ``ProcessPoolExecutor`` names the
    worker function but not which of the N task specs it was chewing
    on — useless for a sweep where only one parameter combination
    trips the bug.  The failing spec rides along as :attr:`task` (and
    its position in the submitted list as :attr:`index`); the original
    exception stays chained as ``__cause__``.
    """

    def __init__(self, task: Any, index: int, cause: BaseException):
        super().__init__(
            f"task {index} ({task!r}) failed: {type(cause).__name__}: {cause}"
        )
        self.task = task
        self.index = index


# -- stable task identity ----------------------------------------------------


def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic, order-independent structure.

    Supports the value types task specs are built from: dataclasses,
    mappings, sequences, sets, and scalars.  Floats hash by their exact
    bit pattern (``float.hex``), so "close" values never collide.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        return (
            "dc",
            f"{type(obj).__module__}.{type(obj).__qualname__}",
            tuple(
                (f.name, _canonical(getattr(obj, f.name)))
                for f in fields(obj)
            ),
        )
    if isinstance(obj, dict):
        return (
            "map",
            tuple(
                sorted(
                    (repr(_canonical(k)), _canonical(v))
                    for k, v in obj.items()
                )
            ),
        )
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(_canonical(item) for item in obj))
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(item)) for item in obj)))
    if isinstance(obj, float):
        return ("f", obj.hex())
    if isinstance(obj, bytes):
        return ("b", obj.hex())
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    raise TypeError(
        f"cannot build a stable hash for {type(obj).__name__!r}; task "
        "specs must be dataclasses, mappings, sequences, or scalars"
    )


def stable_hash(obj: Any) -> str:
    """Hex digest identifying ``obj``'s canonical content."""
    return hashlib.sha256(repr(_canonical(obj)).encode("utf-8")).hexdigest()


def derive_seed(base_seed: int, *components: Any) -> int:
    """Derive a 63-bit per-task seed from a base seed and task identity.

    The same ``(base_seed, components)`` always yields the same seed, in
    any process, so experiments that want a distinct stream per point
    stay reproducible under any execution order.
    """
    material = repr((int(base_seed), _canonical(tuple(components))))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of every ``.py`` file in the installed ``repro`` package.

    Folded into each cache key so any source change invalidates all
    cached results.  Computed once per process.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


# -- the on-disk cache -------------------------------------------------------


def default_cache_dir() -> Path:
    """Resolve where cached results live (see module docstring)."""
    env_dir = os.environ.get("REPRO_CACHE_DIR")
    if env_dir:
        return Path(env_dir)
    repo_root = Path(__file__).resolve().parents[3]
    if (repo_root / "pyproject.toml").is_file():
        return repo_root / ".repro_cache"
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Content-addressed pickle store for experiment point results."""

    def __init__(self, cache_dir: Optional[os.PathLike] = None):
        self.root = Path(cache_dir) if cache_dir is not None else default_cache_dir()

    def task_key(self, fn: Callable, task: Any, extra: str = "") -> str:
        """Cache key: worker identity + code version + task content."""
        material = "\n".join(
            (
                f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}",
                code_fingerprint(),
                stable_hash(task),
                extra,
            )
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; unreadable entries count as misses."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return True, pickle.load(handle)
        except Exception:
            # pickle raises UnpicklingError, EOFError, ValueError,
            # AttributeError, ImportError... depending on how the bytes are
            # mangled; any unreadable entry is simply a miss.
            return False, None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically (write-to-temp then rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# -- the parallel map --------------------------------------------------------


def run_map(
    tasks: Iterable[Any],
    fn: Callable[[Any], Any],
    jobs: Optional[int] = 1,
    cache: bool = True,
    cache_dir: Optional[os.PathLike] = None,
    key_extra: str = "",
) -> List[Any]:
    """Map ``fn`` over independent ``tasks``, in order, with caching.

    Parameters
    ----------
    tasks:
        Picklable task specs; each must canonicalize via
        :func:`stable_hash` when caching is enabled.
    fn:
        Module-level worker taking one task spec.  Must be picklable
        for ``jobs > 1``.
    jobs:
        Worker-process count; ``None`` means ``os.cpu_count()``.
        ``1`` runs everything in-process (no pool, no pickling of
        results beyond the cache).
    cache:
        When true, results are served from / stored into the
        :class:`ResultCache` so re-runs recompute only changed points.
    key_extra:
        Extra string folded into every cache key (e.g. a config
        summary the task specs don't carry).

    Returns results in task order; parallel execution is bit-identical
    to serial because each task is self-contained and seeded by spec.
    """
    task_list = list(tasks)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    store = ResultCache(cache_dir) if cache else None
    results: List[Any] = [None] * len(task_list)
    keys: List[Optional[str]] = [None] * len(task_list)
    pending: List[int] = []
    if store is None:
        pending = list(range(len(task_list)))
    else:
        for index, task in enumerate(task_list):
            key = store.task_key(fn, task, key_extra)
            keys[index] = key
            hit, value = store.get(key)
            if hit:
                results[index] = value
            else:
                pending.append(index)

    if pending:
        if jobs > 1 and len(pending) > 1:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending))
            ) as pool:
                computed = pool.map(fn, [task_list[i] for i in pending])
                iterator = iter(computed)
                for index in pending:
                    try:
                        results[index] = next(iterator)
                    except Exception as exc:
                        raise TaskExecutionError(
                            task_list[index], index, exc
                        ) from exc
        else:
            for index in pending:
                try:
                    results[index] = fn(task_list[index])
                except Exception as exc:
                    raise TaskExecutionError(
                        task_list[index], index, exc
                    ) from exc
        if store is not None:
            for index in pending:
                try:
                    store.put(keys[index], results[index])
                except OSError:
                    # Cache dir unwritable (read-only checkout, full
                    # disk): results are still correct, just uncached.
                    break
    return results
