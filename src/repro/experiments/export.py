"""CSV export of every paper artifact's data.

Each exporter regenerates an experiment and writes the series a plotting
tool needs — so downstream users can draw the actual figures without
rerunning simulations.  ``export_all(directory)`` writes the full set.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional, Sequence

from repro.experiments import (
    energy_study,
    fault_study,
    federation_study,
    fig1_boot,
    fig3_runtime,
    fig4_vmsweep,
    fig5_power,
    headline,
    hybrid_study,
    megatrace,
    scale_study,
    sdk_study,
    table2_tco,
)
from repro.workloads import ALL_FUNCTION_NAMES


def _write(path: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def export_fig1(directory: str) -> str:
    """Boot-time trajectory: one row per development change."""
    result = fig1_boot.run()
    rows = []
    for arm, x86 in zip(result.trajectories["arm"], result.trajectories["x86"]):
        rows.append(
            (arm.label, arm.name, arm.real_s, arm.cpu_s, x86.real_s, x86.cpu_s)
        )
    return _write(
        os.path.join(directory, "fig1_boot.csv"),
        ["change", "name", "arm_real_s", "arm_cpu_s", "x86_real_s", "x86_cpu_s"],
        rows,
    )


def export_fig3(directory: str, invocations_per_function: int = 20) -> str:
    """Working/overhead split per function per cluster."""
    result = fig3_runtime.run(invocations_per_function=invocations_per_function)
    rows = []
    for name in ALL_FUNCTION_NAMES:
        mf = result.microfaas[name]
        cv = result.conventional[name]
        rows.append(
            (name, mf.working_s, mf.overhead_s, cv.working_s, cv.overhead_s,
             result.speed_ratio(name))
        )
    return _write(
        os.path.join(directory, "fig3_runtime.csv"),
        ["function", "mf_working_s", "mf_overhead_s",
         "conv_working_s", "conv_overhead_s", "mf_over_conv"],
        rows,
    )


def export_fig4(directory: str, invocations_per_function: int = 6) -> str:
    """Efficiency/throughput sweep over VM counts."""
    result = fig4_vmsweep.run(
        invocations_per_function=invocations_per_function
    )
    rows = [
        (p.vm_count, p.throughput_per_min, p.joules_per_function,
         p.average_watts, result.microfaas_jpf)
        for p in result.points
    ]
    return _write(
        os.path.join(directory, "fig4_vmsweep.csv"),
        ["vms", "func_per_min", "joules_per_function", "average_watts",
         "microfaas_reference_jpf"],
        rows,
    )


def export_fig5(directory: str) -> str:
    """Power vs active workers, both series."""
    result = fig5_power.run(measure=False)
    sbc = dict(zip(result.sbc_series.worker_counts, result.sbc_series.watts))
    vm = dict(zip(result.vm_series.worker_counts, result.vm_series.watts))
    counts = sorted(set(sbc) | set(vm))
    rows = [(n, sbc.get(n, ""), vm.get(n, "")) for n in counts]
    return _write(
        os.path.join(directory, "fig5_power.csv"),
        ["active_workers", "sbc_cluster_watts", "vm_host_watts"],
        rows,
    )


def export_table2(directory: str) -> str:
    """The TCO table, one row per (scenario, deployment)."""
    result = table2_tco.run()
    rows = [
        (c.scenario, c.deployment, c.compute_usd, c.network_usd,
         c.energy_usd, c.total_usd)
        for c in result.cells
    ]
    return _write(
        os.path.join(directory, "table2_tco.csv"),
        ["scenario", "deployment", "compute_usd", "network_usd",
         "energy_usd", "total_usd"],
        rows,
    )


def export_headline(directory: str, invocations_per_function: int = 30) -> str:
    """The headline metrics of both clusters."""
    result = headline.run(invocations_per_function=invocations_per_function)
    rows = [
        ("microfaas", result.microfaas.worker_count,
         result.microfaas.throughput_per_min,
         result.microfaas.joules_per_function,
         result.microfaas.average_watts),
        ("conventional", result.conventional.worker_count,
         result.conventional.throughput_per_min,
         result.conventional.joules_per_function,
         result.conventional.average_watts),
    ]
    return _write(
        os.path.join(directory, "headline.csv"),
        ["platform", "workers", "func_per_min", "joules_per_function",
         "average_watts"],
        rows,
    )


def export_fault_study(directory: str, invocations_per_function: int = 2) -> str:
    """Recovery under chaos: one row per fault-rate point."""
    result = fault_study.run(invocations_per_function=invocations_per_function)
    rows = [
        (p.fault_rate_scale, p.faults_injected, p.jobs_submitted,
         p.jobs_delivered, p.jobs_lost, p.goodput_per_min, p.p99_latency_s,
         p.mean_recovery_s if p.mean_recovery_s is not None else "",
         p.resubmissions, p.timeout_retries, p.hedges,
         p.duplicates_suppressed, p.boards_abandoned,
         p.joules_per_function, result.energy_overhead(p))
        for p in result.points
    ]
    return _write(
        os.path.join(directory, "fault_study.csv"),
        ["fault_rate_scale", "faults_injected", "jobs_submitted",
         "jobs_delivered", "jobs_lost", "goodput_per_min", "p99_latency_s",
         "mean_recovery_s", "resubmissions", "timeout_retries", "hedges",
         "duplicates_suppressed", "boards_abandoned", "joules_per_function",
         "energy_overhead"],
        rows,
    )


def export_federation_study(
    directory: str,
    user_counts: Sequence[int] = (100_000, 1_000_000),
    duration_s: float = 60.0,
) -> str:
    """The federation sweep: one row per (point, region) plus an ALL
    aggregate row per point."""
    result = federation_study.run(
        user_counts=user_counts, duration_s=duration_s
    )
    rows = []
    for p in result.points:
        for region in p.regions:
            rows.append(
                (p.users, p.region_count, p.outage_rate_scale, region.name,
                 region.workers, region.jobs_in, region.jobs_delivered, "",
                 "", "", region.outages,
                 region.mean_recovery_s
                 if region.mean_recovery_s is not None else "",
                 region.cross_region_jobs, region.cross_region_bytes,
                 region.energy_joules, region.joules_per_function)
            )
        rows.append(
            (p.users, p.region_count, p.outage_rate_scale, "ALL",
             p.workers_per_region * p.region_count, p.jobs_submitted,
             p.jobs_delivered, p.jobs_lost, p.goodput_per_min,
             p.worst_p99_s, p.outages,
             p.mean_recovery_s if p.mean_recovery_s is not None else "",
             p.cross_region_jobs, p.cross_region_bytes,
             p.energy_joules, p.joules_per_function)
        )
    return _write(
        os.path.join(directory, "federation_study.csv"),
        ["users", "region_count", "outage_rate_scale", "region", "workers",
         "jobs_in", "jobs_delivered", "jobs_lost", "goodput_per_min",
         "worst_p99_s", "outages", "mean_recovery_s", "cross_region_jobs",
         "cross_region_bytes", "energy_joules", "joules_per_function"],
        rows,
    )


def export_hybrid_study(
    directory: str, invocations_per_function: int = 2
) -> str:
    """The SBC:VM mix sweep: one row per mix, with per-platform splits."""
    result = hybrid_study.run(
        invocations_per_function=invocations_per_function
    )
    rows = [
        (p.sbc_count, p.vm_count, p.worker_count, p.jobs_completed,
         p.duration_s, p.throughput_per_min, p.predicted_throughput_per_min,
         p.energy_joules, p.joules_per_function, p.arm_jobs, p.x86_jobs,
         p.arm_energy_joules, p.x86_energy_joules,
         p.arm_p99_latency_s if p.arm_p99_latency_s is not None else "",
         p.x86_p99_latency_s if p.x86_p99_latency_s is not None else "")
        for p in result.points
    ]
    return _write(
        os.path.join(directory, "hybrid_study.csv"),
        ["sbc_count", "vm_count", "workers", "jobs", "duration_s",
         "func_per_min", "predicted_func_per_min", "energy_joules",
         "joules_per_function", "arm_jobs", "x86_jobs", "arm_energy_joules",
         "x86_energy_joules", "arm_p99_latency_s", "x86_p99_latency_s"],
        rows,
    )


def export_scale_study(
    directory: str,
    worker_counts: Sequence[int] = (10, 100, 400),
    jobs_per_worker: int = 2,
) -> str:
    """Cluster-size sweep: one row per scale point."""
    result = scale_study.run(
        worker_counts=worker_counts, jobs_per_worker=jobs_per_worker
    )
    rows = [
        (p.worker_count, p.switch_count, p.throughput_per_min,
         p.unconstrained_per_min, p.scaling_efficiency,
         p.control_plane_utilization,
         result.op_link_utilization(p.throughput_per_min))
        for p in result.points
    ]
    return _write(
        os.path.join(directory, "scale_study.csv"),
        ["workers", "switches", "func_per_min", "free_op_func_per_min",
         "scaling_efficiency", "op_utilization", "op_link_utilization"],
        rows,
    )


def export_sdk_study(
    directory: str,
    user_counts: Sequence[int] = (1, 4),
    fanouts: Sequence[int] = (8, 32),
) -> str:
    """The client SDK sweep: one row per (users, fanout, backend)."""
    result = sdk_study.run(user_counts=user_counts, fanouts=fanouts)
    rows = [
        (p.kind, p.users, p.fanout, p.calls, p.succeeded, p.errors,
         p.jobs_completed, p.duration_s, p.throughput_per_min,
         p.energy_joules, p.joules_per_function, p.client_p50_s,
         p.client_p99_s, p.reduce_latency_s, p.duplicates_suppressed,
         p.batches_flushed)
        for p in result.points
    ]
    return _write(
        os.path.join(directory, "sdk_study.csv"),
        ["backend", "users", "fanout", "calls", "succeeded", "errors",
         "jobs_completed", "duration_s", "func_per_min", "energy_joules",
         "joules_per_function", "client_p50_s", "client_p99_s",
         "reduce_latency_s", "duplicates_suppressed", "batches_flushed"],
        rows,
    )


def export_megatrace(directory: str, invocations: int = 1_000_000) -> str:
    """The megatrace replay's operator metrics, one row per run."""
    result = megatrace.run(invocations=invocations)
    rows = [
        (result.invocations, result.worker_count, result.rate_per_s,
         result.sim_duration_s, result.throughput_per_min,
         result.mean_latency_s, result.p99_latency_s,
         result.joules_per_function, result.wall_clock_s,
         result.peak_rss_mib, result.records_retained,
         result.sketch_buckets)
    ]
    return _write(
        os.path.join(directory, "megatrace.csv"),
        ["invocations", "workers", "rate_per_s", "sim_duration_s",
         "func_per_min", "mean_latency_s", "p99_latency_s",
         "joules_per_function", "wall_clock_s", "peak_rss_mib",
         "records_retained", "sketch_buckets"],
        rows,
    )


def export_energy_study(
    directory: str, duration_s: float = 240.0
) -> List[str]:
    """The energy study: the cap frontier and the per-tenant attribution.

    Two files — ``energy_study.csv`` (one row per point, with the
    frontier's energy-saved / p99-paid columns on cap points) and
    ``energy_study_tenants.csv`` (one row per (budget point, tenant)
    from the online ledger).
    """
    result = energy_study.run(duration_s=duration_s)
    frontier = {e.point.cap_watts: e for e in result.frontier()}
    rows = []
    for p in result.points:
        entry = frontier.get(p.cap_watts) if p.budget_scale is None else None
        rows.append(
            (p.cap_watts if p.cap_watts is not None else "",
             p.budget_scale if p.budget_scale is not None else "",
             p.jobs_completed, p.duration_s, p.throughput_per_min,
             p.energy_joules, p.joules_per_function, p.p99_latency_s,
             entry.energy_saved_j if entry is not None else "",
             entry.p99_paid_s if entry is not None else "",
             p.jobs_delayed, p.jobs_shed,
             p.reconciliation_residual_j
             if p.reconciliation_residual_j is not None else "",
             p.idle_overhead_j if p.idle_overhead_j is not None else "",
             p.wasted_j if p.wasted_j is not None else "")
        )
    study_path = _write(
        os.path.join(directory, "energy_study.csv"),
        ["cap_watts", "budget_scale", "jobs", "duration_s", "func_per_min",
         "energy_joules", "joules_per_function", "p99_latency_s",
         "energy_saved_j", "p99_paid_s", "jobs_delayed", "jobs_shed",
         "reconciliation_residual_j", "idle_overhead_j", "wasted_j"],
        rows,
    )
    tenant_rows = [
        (p.cap_watts, p.budget_scale, tenant, joules)
        for p in result.budget_points()
        for tenant, joules in p.tenant_joules
    ]
    tenants_path = _write(
        os.path.join(directory, "energy_study_tenants.csv"),
        ["cap_watts", "budget_scale", "tenant", "attributed_joules"],
        tenant_rows,
    )
    return [study_path, tenants_path]


def export_trace(directory: str, invocations_per_function: int = 12) -> str:
    """Perfetto-ready span trees from a traced headline run.

    Unlike the CSV exporters this is not tabular data: it is the Chrome
    trace-event JSON of every invocation's span tree on both clusters,
    ready to load at https://ui.perfetto.dev.
    """
    path = os.path.join(directory, "headline_trace.json")
    headline.run(
        invocations_per_function=invocations_per_function, trace_path=path
    )
    return path


def export_all(
    directory: str,
    invocations_per_function: int = 12,
) -> List[str]:
    """Write every artifact's CSV into ``directory`` (created if needed).

    The megatrace export is not included — a cache-defeating
    million-invocation run is its own deliberate act
    (:func:`export_megatrace`).
    """
    os.makedirs(directory, exist_ok=True)
    return [
        export_fig1(directory),
        export_fig3(directory, invocations_per_function),
        export_fig4(directory, max(4, invocations_per_function // 2)),
        export_fig5(directory),
        export_table2(directory),
        export_headline(directory, invocations_per_function),
        export_fault_study(directory, max(2, invocations_per_function // 6)),
        export_federation_study(directory),
        export_hybrid_study(directory, max(2, invocations_per_function // 6)),
        export_scale_study(directory),
        export_sdk_study(directory),
        *export_energy_study(directory),
        export_trace(directory, invocations_per_function),
    ]


__all__ = [
    "export_all",
    "export_energy_study",
    "export_fault_study",
    "export_federation_study",
    "export_fig1",
    "export_fig3",
    "export_fig4",
    "export_fig5",
    "export_headline",
    "export_hybrid_study",
    "export_megatrace",
    "export_scale_study",
    "export_sdk_study",
    "export_table2",
    "export_trace",
]
