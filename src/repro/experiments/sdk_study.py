"""SDK study: client-driven fan-out/map_reduce workloads (extension).

Every other experiment drives the cluster from the server side (batch
submission or arrival processes).  This one drives it through the
:mod:`repro.client` SDK the way a FaaS user would: ``users``
concurrent client sessions each issue a ``map_reduce`` — a fan-out of
``fanout`` invocations (round-robin over the 17-function suite)
chained into one reduce call whose input bills every map output
through the transfer model — over the default batching invoker, so
the whole fan-out rides the batched-arrival fast path.

The sweep crosses users × fan-out × backend kind (the paper's two
clusters plus the hybrid mix) and reports both sides of the contract:
backend throughput/energy (func/min, J/function) and client-perceived
latency (p50/p99 over the map futures, mean reduce latency), plus the
monitor's duplicate/timeout counters.

Every point is an independent seeded task on
:func:`~repro.experiments.runner.run_map`, so the sweep is
bit-identical at any ``--jobs`` and caches per point.
:func:`headline_via_sdk` re-derives the paper headline through the
SDK — the bit-identity pin the tests and CI hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.client import FunctionExecutor
from repro.cluster import (
    ConventionalCluster,
    HybridCluster,
    MicroFaaSCluster,
)
from repro.core.scheduler import LeastLoadedPolicy
from repro.experiments.report import format_table
from repro.experiments.runner import run_map
from repro.obs.export import write_trace_file
from repro.obs.trace import TraceConfig
from repro.workloads.base import ALL_FUNCTION_NAMES

#: Backend kinds the study sweeps (constructor shapes match the
#: paper's throughput-matched clusters; hybrid is the 6+3 midpoint).
BACKEND_KINDS: Tuple[str, ...] = ("microfaas", "conventional", "hybrid")

#: The reduce stage of every map_reduce (hash over gathered outputs).
REDUCE_FUNCTION = "CascSHA"


@dataclass(frozen=True)
class SdkStudyTask:
    """Picklable spec for one (users, fanout, backend) point."""

    users: int
    fanout: int
    kind: str
    seed: int


@dataclass(frozen=True)
class SdkStudyPoint:
    """One point's measurements, backend-side and client-side."""

    users: int
    fanout: int
    kind: str
    #: Client calls accepted (maps + reduces) and their outcomes.
    calls: int
    succeeded: int
    errors: int
    #: Backend-side accounting.
    jobs_completed: int
    duration_s: float
    throughput_per_min: float
    energy_joules: float
    joules_per_function: float
    #: Client-perceived latency over the map futures.
    client_p50_s: float
    client_p99_s: float
    #: Mean reduce latency (creation → resolution; includes the wait
    #: for every parent map).
    reduce_latency_s: float
    #: Monitor/invoker counters.
    duplicates_suppressed: int
    batches_flushed: int


@dataclass(frozen=True)
class SdkStudyResult:
    points: List[SdkStudyPoint]

    def best_joules_per_function(self) -> SdkStudyPoint:
        return min(self.points, key=lambda p: p.joules_per_function)


def build_backend(kind: str, seed: int, trace: Optional[TraceConfig] = None):
    """A seeded cluster for one backend kind (shared by the sweep
    workers and the inline traced re-run)."""
    if kind == "microfaas":
        return MicroFaaSCluster(
            worker_count=10, seed=seed, policy=LeastLoadedPolicy(),
            trace=trace,
        )
    if kind == "conventional":
        return ConventionalCluster(
            vm_count=6, seed=seed, policy=LeastLoadedPolicy(), trace=trace
        )
    if kind == "hybrid":
        return HybridCluster(sbc_count=6, vm_count=3, seed=seed, trace=trace)
    raise ValueError(f"unknown backend kind {kind!r}")


def _percentile(sorted_values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        raise ValueError("no values")
    rank = max(
        0, min(len(sorted_values) - 1, round(pct / 100.0 * len(sorted_values)) - 1)
    )
    return sorted_values[rank]


def _drive_point(task: SdkStudyTask, trace: Optional[TraceConfig] = None):
    """Build the backend, drive the client workload, return
    ``(cluster, executor, map_futures, reduce_futures)``."""
    cluster = build_backend(task.kind, task.seed, trace=trace)
    executor = FunctionExecutor(cluster)
    reduce_futures = []
    map_futures = []
    names = ALL_FUNCTION_NAMES
    for user in range(task.users):
        # Round-robin fan-out, offset per user so sessions differ.
        fan = [
            names[(user + index) % len(names)]
            for index in range(task.fanout)
        ]
        reduce_future = executor.map_reduce(fan, REDUCE_FUNCTION)
        map_futures.extend(reduce_future.parents)
        reduce_futures.append(reduce_future)
    done, not_done = executor.wait()
    if not_done:
        raise RuntimeError(f"{len(not_done)} unresolved SDK calls")
    return cluster, executor, map_futures, reduce_futures


def _run_point(task: SdkStudyTask) -> SdkStudyPoint:
    """Worker: one client-driven run of one sweep point."""
    cluster, executor, map_futures, reduce_futures = _drive_point(task)
    duration_s = cluster.env.now
    result = cluster.result_snapshot(duration_s)
    latencies = sorted(f.latency_s for f in map_futures if f.success)
    stats = executor.stats
    return SdkStudyPoint(
        users=task.users,
        fanout=task.fanout,
        kind=task.kind,
        calls=len(executor.futures),
        succeeded=stats.succeeded,
        errors=stats.failed,
        jobs_completed=result.jobs_completed,
        duration_s=duration_s,
        throughput_per_min=result.throughput_per_min,
        energy_joules=result.energy_joules,
        joules_per_function=result.joules_per_function,
        client_p50_s=_percentile(latencies, 50.0),
        client_p99_s=_percentile(latencies, 99.0),
        reduce_latency_s=(
            sum(f.latency_s for f in reduce_futures) / len(reduce_futures)
        ),
        duplicates_suppressed=stats.duplicates_suppressed,
        batches_flushed=getattr(executor.invoker, "batches_flushed", 0),
    )


def _trace_point(task: SdkStudyTask, trace_path: str) -> None:
    """Re-run one point inline with span recording and export it.

    Client spans (``client_submit``/``client_wait``/``client_retry``)
    land as annotations in each sampled job's span tree, so the
    exported trace shows the SDK layer nested into the platform's.
    """
    cluster, _executor, _maps, _reduces = _drive_point(
        task, trace=TraceConfig()
    )
    write_trace_file(cluster.finished_traces(), trace_path)


def headline_via_sdk(
    invocations_per_function: int = 30, seed: int = 1
) -> Tuple[object, object]:
    """The paper headline, driven through the SDK.

    Maps the exact saturated batch of
    ``ClusterHarness.run_saturated`` — every function
    ``invocations_per_function`` times, submitted in one batching
    -invoker flush at t=0 — on both throughput-matched clusters, and
    snapshots results at the last client resolution.  Bit-identical
    to the server-driven seed headline; the tests pin the exact
    floats.
    """
    batch = [
        function
        for _ in range(invocations_per_function)
        for function in ALL_FUNCTION_NAMES
    ]

    def one(kind: str):
        cluster = build_backend(kind, seed)
        executor = FunctionExecutor(cluster)
        futures = executor.map(batch)
        _done, not_done = executor.wait(futures)
        if not_done:
            raise RuntimeError("SDK headline run did not drain")
        return cluster.result_snapshot(cluster.env.now)

    return one("microfaas"), one("conventional")


def run(
    user_counts: Sequence[int] = (1, 4),
    fanouts: Sequence[int] = (8, 32),
    kinds: Sequence[str] = BACKEND_KINDS,
    seed: int = 11,
    jobs: int = 1,
    cache: bool = True,
    cache_dir=None,
    trace_path: Optional[str] = None,
) -> SdkStudyResult:
    """Sweep users × fan-out × backend kind over independent tasks.

    With ``trace_path`` set, the widest point (most users × fan-out)
    on the first backend kind is re-run inline with tracing enabled
    and its span trees written to that path.
    """
    if not user_counts or not fanouts or not kinds:
        raise ValueError("need at least one user count, fanout, and kind")
    for users in user_counts:
        if users < 1:
            raise ValueError("user counts must be >= 1")
    for fanout in fanouts:
        if fanout < 1:
            raise ValueError("fanouts must be >= 1")
    for kind in kinds:
        if kind not in BACKEND_KINDS:
            raise ValueError(f"unknown backend kind {kind!r}")
    tasks = [
        SdkStudyTask(users, fanout, kind, seed)
        for users in user_counts
        for fanout in fanouts
        for kind in kinds
    ]
    points = run_map(
        tasks, _run_point, jobs=jobs, cache=cache, cache_dir=cache_dir
    )
    if trace_path is not None:
        _trace_point(
            max(tasks, key=lambda t: (t.users * t.fanout, t.kind == kinds[0])),
            trace_path,
        )
    return SdkStudyResult(points=points)


def render(result: SdkStudyResult) -> str:
    rows = []
    for point in result.points:
        rows.append(
            (
                point.kind,
                point.users,
                point.fanout,
                point.calls,
                point.jobs_completed,
                f"{point.throughput_per_min:.0f}",
                f"{point.joules_per_function:.1f}",
                f"{point.client_p50_s:.1f}",
                f"{point.client_p99_s:.1f}",
                f"{point.reduce_latency_s:.1f}",
                point.errors,
            )
        )
    table = format_table(
        [
            "backend",
            "users",
            "fanout",
            "calls",
            "jobs",
            "func/min",
            "J/func",
            "p50 s",
            "p99 s",
            "reduce s",
            "errors",
        ],
        rows,
        title="SDK study - client-driven map_reduce sweep",
    )
    best = result.best_joules_per_function()
    return table + (
        f"\nmost efficient point: {best.kind} at {best.users} users x "
        f"{best.fanout} fan-out, {best.joules_per_function:.1f} J/function "
        f"({best.client_p99_s:.1f} s client p99)."
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
