"""Replication statistics for simulation experiments.

Single simulation runs carry seed-dependent noise (jitter, random
assignment).  This module runs an experiment across seeds and reports
mean ± confidence interval, so claims like "200.6 func/min" come with
error bars.  Uses Student's t (via scipy when available, with a small
built-in table as fallback) — appropriate for the handful of
replications a simulation study uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

#: Two-sided 95 % t critical values by degrees of freedom (fallback).
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
    30: 2.042, 60: 2.000,
}


def _t_critical(dof: int, confidence: float) -> float:
    if dof < 1:
        raise ValueError("need at least two samples")
    try:
        from scipy import stats as scipy_stats

        return float(scipy_stats.t.ppf(0.5 + confidence / 2, dof))
    except ImportError:  # pragma: no cover - scipy is installed here
        if confidence != 0.95:
            raise ValueError("fallback table only covers 95 %") from None
        for table_dof in sorted(_T95):
            if dof <= table_dof:
                return _T95[table_dof]
        return 1.96


@dataclass(frozen=True)
class Estimate:
    """Mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Is ``value`` inside the interval?"""
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.mean:.3g} ± {self.half_width:.2g} (n={self.n})"


def estimate(
    samples: Sequence[float], confidence: float = 0.95
) -> Estimate:
    """Mean ± t-based confidence half-width of ``samples``."""
    if len(samples) < 2:
        raise ValueError("need at least two samples for an interval")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = len(samples)
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    std_error = math.sqrt(variance / n)
    return Estimate(
        mean=mean,
        half_width=_t_critical(n - 1, confidence) * std_error,
        n=n,
        confidence=confidence,
    )


def replicate(
    run: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> Dict[str, Estimate]:
    """Run ``run(seed)`` per seed and aggregate each metric.

    ``run`` returns a flat metric dict; every replication must produce
    the same keys.
    """
    if len(seeds) < 2:
        raise ValueError("need at least two seeds")
    results: List[Dict[str, float]] = [run(seed) for seed in seeds]
    keys = set(results[0])
    for result in results[1:]:
        if set(result) != keys:
            raise ValueError("replications produced differing metrics")
    return {
        key: estimate([r[key] for r in results], confidence)
        for key in sorted(keys)
    }


def headline_replication(
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    invocations_per_function: int = 20,
) -> Dict[str, Estimate]:
    """The headline comparison across seeds (with error bars)."""
    from repro.experiments import headline

    def run(seed: int) -> Dict[str, float]:
        result = headline.run(
            invocations_per_function=invocations_per_function, seed=seed
        )
        return {
            "microfaas_fpm": result.microfaas.throughput_per_min,
            "conventional_fpm": result.conventional.throughput_per_min,
            "microfaas_jpf": result.microfaas.joules_per_function,
            "conventional_jpf": result.conventional.joules_per_function,
            "ratio": result.efficiency_ratio,
        }

    return replicate(run, seeds)


__all__ = ["Estimate", "estimate", "headline_replication", "replicate"]
