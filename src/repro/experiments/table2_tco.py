"""Table II: 5-year single-rack lifetime cost comparison.

This one reproduces the paper to the dollar — the appendix fully
specifies the model.  Also reports the savings range (32.5-34.2 %) and
the sensitivity sweeps DESIGN.md calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.report import format_table
from repro.tco import (
    IDEAL,
    REALISTIC,
    Table2Cell,
    sbc_price_sensitivity,
    table2,
    tco_savings_fraction,
)


@dataclass(frozen=True)
class Table2Result:
    cells: List[Table2Cell]
    ideal_savings: float
    realistic_savings: float
    price_sensitivity: List[Tuple[float, float]]

    def cell(self, scenario: str, deployment: str) -> Table2Cell:
        for cell in self.cells:
            if cell.scenario == scenario and cell.deployment == deployment:
                return cell
        raise KeyError((scenario, deployment))


def run() -> Table2Result:
    """Regenerate Table II and the sensitivity sweep."""
    return Table2Result(
        cells=table2(),
        ideal_savings=tco_savings_fraction(IDEAL),
        realistic_savings=tco_savings_fraction(REALISTIC),
        price_sensitivity=sbc_price_sensitivity(),
    )


def render(result: Table2Result) -> str:
    by_key: Dict[Tuple[str, str], Table2Cell] = {
        (c.scenario, c.deployment): c for c in result.cells
    }
    rows = []
    for expense in ("compute", "network", "energy", "total"):
        rows.append(
            [expense.capitalize()]
            + [
                f"${getattr(by_key[(scenario, deployment)], expense + '_usd'):,}"
                for scenario in ("ideal", "realistic")
                for deployment in ("conventional", "microfaas")
            ]
        )
    table = format_table(
        ["expense", "ideal conv.", "ideal MicroFaaS",
         "realistic conv.", "realistic MicroFaaS"],
        rows,
        title="Table II - 5-year single-rack lifetime cost (USD)",
    )
    sensitivity = ", ".join(
        f"${price:.0f}: {savings * 100:+.1f}%"
        for price, savings in result.price_sensitivity
    )
    return table + (
        f"\nsavings: ideal {result.ideal_savings * 100:.1f}% "
        f"(paper 34.2%), realistic {result.realistic_savings * 100:.1f}% "
        f"(paper 32.5%)"
        f"\nSBC-price sensitivity (realistic): {sensitivity}"
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
