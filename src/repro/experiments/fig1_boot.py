"""Fig. 1: worker-OS boot time across the development history.

Replays the nine optimizations (A-I) on both platforms and reports the
real and CPU boot-time series the figure plots, ending at the published
1.51 s (ARM) and 0.96 s (x86).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bootos.timeline import TrajectoryPoint, development_trajectory
from repro.experiments.report import format_table


@dataclass(frozen=True)
class Fig1Result:
    """The two trajectories of Fig. 1."""

    trajectories: Dict[str, List[TrajectoryPoint]]

    @property
    def final_real_s(self) -> Dict[str, float]:
        return {
            platform: points[-1].real_s
            for platform, points in self.trajectories.items()
        }


def run() -> Fig1Result:
    """Regenerate Fig. 1's data."""
    return Fig1Result(
        trajectories={
            platform: development_trajectory(platform)
            for platform in ("arm", "x86")
        }
    )


def render(result: Fig1Result) -> str:
    """Fig. 1 as a table: one row per development change."""
    arm = result.trajectories["arm"]
    x86 = result.trajectories["x86"]
    rows = []
    for arm_point, x86_point in zip(arm, x86):
        rows.append(
            (
                arm_point.label,
                arm_point.name,
                f"{arm_point.real_s:.2f}",
                f"{arm_point.cpu_s:.2f}",
                f"{x86_point.real_s:.2f}",
                f"{x86_point.cpu_s:.2f}",
            )
        )
    table = format_table(
        ["change", "description", "ARM real (s)", "ARM CPU (s)",
         "x86 real (s)", "x86 CPU (s)"],
        rows,
        title="Fig. 1 - Worker OS boot time through development "
              "(paper final: 1.51 s ARM / 0.96 s x86)",
    )
    finals = result.final_real_s
    footer = (
        f"\nfinal: ARM {finals['arm']:.2f} s, x86 {finals['x86']:.2f} s"
    )
    return table + footer


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
