"""Plain-text rendering helpers for experiment output."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ValueError("need at least one column")
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (for figure-style output)."""
    if len(labels) != len(values):
        raise ValueError("labels and values length mismatch")
    if not values:
        raise ValueError("nothing to chart")
    if width < 1:
        raise ValueError("width must be >= 1")
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(value / peak * width))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def format_xy_chart(
    series: "dict[str, tuple]",
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render an ASCII scatter/line chart of one or more (xs, ys) series.

    Each series plots with the first letter of its label; overlapping
    points show ``*``.  Useful for terminal renditions of Figs. 4/5.
    """
    if not series:
        raise ValueError("nothing to chart")
    if width < 8 or height < 4:
        raise ValueError("chart too small")
    points = []
    for label, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {label!r} has mismatched lengths")
        if not xs:
            raise ValueError(f"series {label!r} is empty")
        points.extend((x, y) for x, y in zip(xs, ys))
    x_low = min(x for x, _ in points)
    x_high = max(x for x, _ in points)
    y_low = min(y for _, y in points)
    y_high = max(y for _, y in points)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for label, (xs, ys) in series.items():
        marker = label[0]
        for x, y in zip(xs, ys):
            col = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((y - y_low) / y_span * (height - 1))
            current = grid[row][col]
            grid[row][col] = marker if current in (" ", marker) else "*"
    lines = [title] if title else []
    if y_label:
        lines.append(y_label)
    lines.append(f"{y_high:10.3g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_low:10.3g} +" + "".join(grid[-1]))
    axis = f"{x_low:<10.3g}" + " " * max(0, width - 18) + f"{x_high:>8.3g}"
    lines.append(" " * 12 + axis)
    if x_label:
        lines.append(" " * 12 + x_label)
    legend = "   ".join(f"{label[0]} = {label}" for label in series)
    lines.append("legend: " + legend)
    return "\n".join(lines)


__all__ = ["format_bar_chart", "format_table", "format_xy_chart"]
