"""Megatrace: a million-invocation replay through the fast path.

The ROADMAP's north star is "heavy traffic from millions of users";
this experiment is the existence proof that the simulator can carry
such a load end to end.  It generates a columnar Poisson trace
(:func:`repro.workloads.traces.poisson_trace` with ``columnar=True``),
replays it through a MicroFaaS cluster running the large-run fast path
— streaming telemetry (no per-record retention), batched arrivals, and
finished-job eviction at the OP — and reports what an operator would
ask about the run: wall-clock, peak RSS, sustained throughput, latency
tail, and energy per function.

Every per-invocation structure is bounded or evicted, so memory stays
O(in-flight + workers) regardless of trace length; the only O(N) state
left is the packed power-trace arrays (16 bytes per state change) that
exact energy integration needs.  A million invocations on 128 workers
completes in roughly a minute of wall-clock within a few hundred MiB.
"""

from __future__ import annotations

import resource
import time
from dataclasses import dataclass
from typing import Optional

from repro.cluster.microfaas import MicroFaaSCluster
from repro.cluster.replay import replay_trace
from repro.core.scheduler import LeastLoadedPolicy
from repro.experiments.report import format_table
from repro.obs.export import write_trace_file
from repro.obs.trace import TraceConfig
from repro.sim.rng import RandomStreams
from repro.workloads.traces import poisson_trace

#: Sustained per-worker service rate of a BeagleBone through the full
#: boot→execute→report cycle (the testbed does ~200 func/min across 10
#: boards, Sec. V) — used to size the arrival rate against capacity.
WORKER_JOBS_PER_S = 1.0 / 3.0


def peak_rss_mib() -> float:
    """Process high-water RSS in MiB (Linux reports KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@dataclass(frozen=True)
class MegatraceResult:
    """One megatrace replay, measured inside and out."""

    invocations: int
    worker_count: int
    rate_per_s: float
    sim_duration_s: float
    wall_clock_s: float
    peak_rss_mib: float
    throughput_per_min: float
    mean_latency_s: float
    p99_latency_s: float
    joules_per_function: float
    #: Collector state after the run — the bounded-memory evidence.
    records_retained: int
    sketch_buckets: int
    #: Tracing counters (zero when the recorder is off): sampled traces
    #: that sealed, sealed traces evicted by the ring buffer, and the
    #: bounded number actually retained for export.
    traces_finished: int = 0
    traces_dropped: int = 0
    traces_exported: int = 0

    @property
    def events_per_wall_s(self) -> float:
        """Simulator throughput: completed invocations per wall second."""
        return self.invocations / self.wall_clock_s


def run(
    invocations: int = 1_000_000,
    worker_count: int = 128,
    utilization: float = 0.85,
    seed: int = 1,
    trace_path: Optional[str] = None,
    trace_sample_rate: float = 0.001,
    trace_max: int = 2048,
) -> MegatraceResult:
    """Replay ``invocations`` Poisson arrivals at ``utilization`` of the
    cluster's sustained capacity.

    Runs serially and uncached on purpose: the run *is* the measurement
    (wall-clock and RSS would be meaningless from a cache hit).

    With ``trace_path`` set, the span recorder rides along under the
    same bounded-memory discipline as the rest of the fast path:
    head-based sampling keeps recording off most invocations, and the
    ``trace_max`` ring buffer caps retained traces no matter how many
    are sampled.  Boot-stage sub-spans are disabled to keep sampled
    traces lean at this scale.
    """
    if invocations < 1:
        raise ValueError("invocations must be >= 1")
    if worker_count < 1:
        raise ValueError("worker_count must be >= 1")
    if not 0 < utilization < 1:
        raise ValueError("utilization must be in (0, 1)")
    rate = worker_count * WORKER_JOBS_PER_S * utilization
    duration = invocations / rate
    trace_config = (
        TraceConfig(
            sample_rate=trace_sample_rate,
            max_traces=trace_max,
            boot_stages=False,
        )
        if trace_path is not None
        else None
    )
    start = time.perf_counter()
    trace = poisson_trace(
        rate, duration, streams=RandomStreams(seed), columnar=True
    )
    cluster = MicroFaaSCluster(
        worker_count=worker_count,
        seed=seed,
        policy=LeastLoadedPolicy(),
        telemetry_exact=False,
        trace=trace_config,
    )
    cluster.orchestrator.evict_finished = True
    result = replay_trace(cluster, trace)
    wall = time.perf_counter() - start
    telemetry = cluster.orchestrator.telemetry
    traces_finished = traces_dropped = traces_exported = 0
    if trace_path is not None:
        finished = cluster.finished_traces()
        write_trace_file(finished, trace_path)
        traces_finished = cluster.tracer.traces_finished
        traces_dropped = cluster.tracer.traces_dropped
        traces_exported = len(finished)
    return MegatraceResult(
        invocations=result.jobs_completed,
        worker_count=worker_count,
        rate_per_s=rate,
        sim_duration_s=result.duration_s,
        wall_clock_s=wall,
        peak_rss_mib=peak_rss_mib(),
        throughput_per_min=result.throughput_per_min,
        mean_latency_s=telemetry.mean_latency_s(),
        p99_latency_s=telemetry.percentile_latency_s(99),
        joules_per_function=result.joules_per_function,
        records_retained=len(telemetry.records),
        sketch_buckets=telemetry._latency_sketch.bucket_count,
        traces_finished=traces_finished,
        traces_dropped=traces_dropped,
        traces_exported=traces_exported,
    )


def render(result: MegatraceResult) -> str:
    rows = [
        ("invocations replayed", f"{result.invocations:,}"),
        ("workers", f"{result.worker_count}"),
        ("arrival rate", f"{result.rate_per_s:.1f} /s"),
        ("simulated time", f"{result.sim_duration_s / 3600:.2f} h"),
        ("throughput", f"{result.throughput_per_min:.0f} func/min"),
        ("mean latency", f"{result.mean_latency_s:.2f} s"),
        ("p99 latency (sketch)", f"{result.p99_latency_s:.2f} s"),
        ("energy/function", f"{result.joules_per_function:.2f} J"),
        ("wall-clock", f"{result.wall_clock_s:.1f} s"),
        (
            "simulator speed",
            f"{result.events_per_wall_s:,.0f} invocations/s "
            f"({result.sim_duration_s / result.wall_clock_s:,.0f}x real time)",
        ),
        ("peak RSS", f"{result.peak_rss_mib:.0f} MiB"),
        (
            "records retained",
            f"{result.records_retained} "
            f"(streaming; {result.sketch_buckets} sketch buckets)",
        ),
    ]
    if result.traces_finished or result.traces_exported:
        rows.append(
            (
                "traces sampled",
                f"{result.traces_finished:,} sealed, "
                f"{result.traces_exported} exported "
                f"({result.traces_dropped:,} evicted by ring)",
            )
        )
    return format_table(
        ["metric", "value"],
        rows,
        title="Megatrace - million-invocation replay on the fast path",
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
