"""Megatrace: a million-invocation replay through the fast path.

The ROADMAP's north star is "heavy traffic from millions of users";
this experiment is the existence proof that the simulator can carry
such a load end to end.  It generates a columnar Poisson trace
(:func:`repro.workloads.traces.poisson_trace` with ``columnar=True``),
replays it through a MicroFaaS cluster running the large-run fast path
— streaming telemetry (no per-record retention), batched arrivals, and
finished-job eviction at the OP — and reports what an operator would
ask about the run: wall-clock, peak RSS, sustained throughput, latency
tail, and energy per function.

Every per-invocation structure is bounded or evicted, so memory stays
O(in-flight + workers) regardless of trace length; the only O(N) state
left is the packed power-trace arrays (16 bytes per state change) that
exact energy integration needs.  A million invocations on 128 workers
completes in roughly a minute of wall-clock within a few hundred MiB.
"""

from __future__ import annotations

import resource
import time
from dataclasses import dataclass
from typing import Optional

from repro.cluster.microfaas import MicroFaaSCluster
from repro.cluster.replay import replay_trace
from repro.core.scheduler import LeastLoadedPolicy
from repro.experiments.report import format_table
from repro.experiments.runner import derive_seed, run_map
from repro.obs.export import write_trace_file
from repro.obs.trace import TraceConfig, merge_traces
from repro.shard.runtime import ClusterSpec
from repro.sim.rng import RandomStreams
from repro.workloads.traces import (
    ChunkedPoissonTrace,
    ColumnarTrace,
    poisson_trace,
)

#: Sustained per-worker service rate of a BeagleBone through the full
#: boot→execute→report cycle (the testbed does ~200 func/min across 10
#: boards, Sec. V) — used to size the arrival rate against capacity.
WORKER_JOBS_PER_S = 1.0 / 3.0

#: Above this many invocations, :func:`run` switches to the streaming
#: trace + bounded power traces automatically: the eager columnar trace
#: alone would cost ~16 bytes/arrival, and unbounded per-board power
#: traces another ~64 bytes/invocation.
STREAMING_THRESHOLD = 10_000_000

#: Retained change points per power trace in streaming mode (~1 MiB per
#: board at 16 bytes/point; older points fold into an energy prefix).
POWER_TRACE_MAX_POINTS = 65_536


def peak_rss_mib() -> float:
    """Process high-water RSS in MiB (Linux reports KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@dataclass(frozen=True)
class MegatraceResult:
    """One megatrace replay, measured inside and out."""

    invocations: int
    worker_count: int
    rate_per_s: float
    sim_duration_s: float
    wall_clock_s: float
    peak_rss_mib: float
    throughput_per_min: float
    mean_latency_s: float
    p99_latency_s: float
    joules_per_function: float
    #: Collector state after the run — the bounded-memory evidence.
    records_retained: int
    sketch_buckets: int
    #: Tracing counters (zero when the recorder is off): sampled traces
    #: that sealed, sealed traces evicted by the ring buffer, and the
    #: bounded number actually retained for export.
    traces_finished: int = 0
    traces_dropped: int = 0
    traces_exported: int = 0
    #: Partitioned-deployment shards this replay ran across (1 = one
    #: cluster, one OP; N = the trace striped over N independent
    #: worker-slices, each with its own orchestrator).
    shards: int = 1

    @property
    def events_per_wall_s(self) -> float:
        """Simulator throughput: completed invocations per wall second."""
        return self.invocations / self.wall_clock_s


@dataclass(frozen=True)
class _StripeTask:
    """One partition of a sharded megatrace replay (picklable).

    ``stripe`` is either an eager :class:`ColumnarTrace` slice or a
    :class:`ChunkedPoissonTrace` stripe (a few parameters instead of
    arrays — what makes 10⁸-arrival partitioned replays picklable at
    all).
    """

    stripe: object
    worker_count: int
    seed: int
    trace_config: Optional[TraceConfig]
    streaming: bool = False
    #: Precomputed construction plan (a few hundred bytes of names and
    #: ints) so each partition process skips topology discovery.
    blueprint: Optional[object] = None


def _replay_stripe(task: _StripeTask) -> dict:
    """Worker: replay one traffic stripe on its own cluster + OP."""
    cluster = MicroFaaSCluster(
        worker_count=task.worker_count,
        seed=task.seed,
        policy=LeastLoadedPolicy(),
        telemetry_exact=False,
        trace=task.trace_config,
        blueprint=task.blueprint,
    )
    cluster.orchestrator.evict_finished = True
    if task.streaming:
        cluster.bound_power_traces(POWER_TRACE_MAX_POINTS)
    result = replay_trace(cluster, task.stripe)
    telemetry = cluster.orchestrator.telemetry
    out = {
        "jobs_completed": result.jobs_completed,
        "duration_s": result.duration_s,
        "energy_joules": result.energy_joules,
        "telemetry": telemetry,
        "peak_rss_mib": peak_rss_mib(),
        "traces": [],
        "traces_finished": 0,
        "traces_dropped": 0,
    }
    if task.trace_config is not None:
        out["traces"] = list(cluster.finished_traces())
        out["traces_finished"] = cluster.tracer.traces_finished
        out["traces_dropped"] = cluster.tracer.traces_dropped
    return out


def _run_partitioned(
    trace,
    worker_count: int,
    rate: float,
    seed: int,
    shards: int,
    trace_path: Optional[str],
    trace_config: Optional[TraceConfig],
    start: float,
    streaming: bool = False,
) -> MegatraceResult:
    """Stripe the trace over ``shards`` independent clusters.

    This models a *partitioned* deployment — N orchestrators, each
    owning ``worker_count / N`` boards and a round-robin slice of the
    traffic — and runs the partitions as parallel processes.  Unlike
    :class:`repro.shard.ShardedCluster` there is no cross-partition
    scheduling, so the numbers are those of the partitioned deployment,
    not bit-identical to the single-OP replay (each partition's
    least-loaded scheduler sees only its own slice).  Deterministic for
    a given (seed, shards) regardless of process scheduling: each task
    carries a derived seed and its stripe, and results merge in
    partition order.
    """
    base, extra = divmod(worker_count, shards)
    # One blueprint per distinct partition size (there are at most two:
    # base and base+1), computed once and shipped to every process.
    blueprints = {
        count: ClusterSpec(kind="microfaas", worker_count=count).blueprint()
        for count in ({base, base + 1} if extra else {base})
    }
    tasks = [
        _StripeTask(
            stripe=trace.stripe(index, shards),
            worker_count=base + (1 if index < extra else 0),
            seed=derive_seed(seed, "megatrace-shard", index),
            trace_config=trace_config,
            streaming=streaming,
            blueprint=blueprints[base + (1 if index < extra else 0)],
        )
        for index in range(shards)
    ]
    # Uncached on purpose, like the serial path: the run is the
    # measurement.
    outs = run_map(tasks, _replay_stripe, jobs=shards, cache=False)
    telemetry = outs[0]["telemetry"]
    for out in outs[1:]:
        telemetry.merge(out["telemetry"])
    jobs_completed = sum(out["jobs_completed"] for out in outs)
    duration = max(out["duration_s"] for out in outs)
    energy = sum(out["energy_joules"] for out in outs)
    wall = time.perf_counter() - start
    traces_finished = traces_dropped = traces_exported = 0
    if trace_path is not None:
        finished = merge_traces([out["traces"] for out in outs])
        write_trace_file(finished, trace_path)
        traces_finished = sum(out["traces_finished"] for out in outs)
        traces_dropped = sum(out["traces_dropped"] for out in outs)
        traces_exported = len(finished)
    return MegatraceResult(
        invocations=jobs_completed,
        worker_count=worker_count,
        rate_per_s=rate,
        sim_duration_s=duration,
        wall_clock_s=wall,
        peak_rss_mib=max(
            max(out["peak_rss_mib"] for out in outs), peak_rss_mib()
        ),
        throughput_per_min=jobs_completed * 60.0 / duration,
        mean_latency_s=telemetry.mean_latency_s(),
        p99_latency_s=telemetry.percentile_latency_s(99),
        joules_per_function=energy / jobs_completed if jobs_completed else 0.0,
        records_retained=len(telemetry.records),
        sketch_buckets=telemetry._latency_sketch.bucket_count,
        traces_finished=traces_finished,
        traces_dropped=traces_dropped,
        traces_exported=traces_exported,
        shards=shards,
    )


def run(
    invocations: int = 1_000_000,
    worker_count: int = 128,
    utilization: float = 0.85,
    seed: int = 1,
    trace_path: Optional[str] = None,
    trace_sample_rate: float = 0.001,
    trace_max: int = 2048,
    shards: int = 1,
    streaming: Optional[bool] = None,
) -> MegatraceResult:
    """Replay ``invocations`` Poisson arrivals at ``utilization`` of the
    cluster's sustained capacity.

    Runs serially and uncached on purpose: the run *is* the measurement
    (wall-clock and RSS would be meaningless from a cache hit).

    With ``trace_path`` set, the span recorder rides along under the
    same bounded-memory discipline as the rest of the fast path:
    head-based sampling keeps recording off most invocations, and the
    ``trace_max`` ring buffer caps retained traces no matter how many
    are sampled.  Boot-stage sub-spans are disabled to keep sampled
    traces lean at this scale.

    ``shards > 1`` switches to the partitioned deployment: the trace is
    round-robin-striped over that many independent cluster slices which
    replay as parallel processes (see :func:`_run_partitioned`).

    ``streaming`` selects the bounded-RSS fast path for very long
    replays: the arrival trace is generated lazily in chunks
    (:class:`~repro.workloads.traces.ChunkedPoissonTrace`, bit-identical
    to the eager trace) and every power trace autocompacts into an
    exact running energy prefix — memory stays O(in-flight + workers)
    even at 10⁸ invocations.  ``None`` (the default) turns it on
    automatically past :data:`STREAMING_THRESHOLD`.
    """
    if invocations < 1:
        raise ValueError("invocations must be >= 1")
    if worker_count < 1:
        raise ValueError("worker_count must be >= 1")
    if not 0 < utilization < 1:
        raise ValueError("utilization must be in (0, 1)")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards > worker_count:
        raise ValueError("more shards than workers")
    rate = worker_count * WORKER_JOBS_PER_S * utilization
    duration = invocations / rate
    trace_config = (
        TraceConfig(
            sample_rate=trace_sample_rate,
            max_traces=trace_max,
            boot_stages=False,
        )
        if trace_path is not None
        else None
    )
    if streaming is None:
        streaming = invocations >= STREAMING_THRESHOLD
    start = time.perf_counter()
    if streaming:
        trace = ChunkedPoissonTrace(
            rate_per_s=rate, duration_s=duration, seed=seed
        )
    else:
        trace = poisson_trace(
            rate, duration, streams=RandomStreams(seed), columnar=True
        )
    if shards > 1:
        return _run_partitioned(
            trace,
            worker_count,
            rate,
            seed,
            shards,
            trace_path,
            trace_config,
            start,
            streaming,
        )
    cluster = MicroFaaSCluster(
        worker_count=worker_count,
        seed=seed,
        policy=LeastLoadedPolicy(),
        telemetry_exact=False,
        trace=trace_config,
        blueprint=ClusterSpec(
            kind="microfaas", worker_count=worker_count
        ).blueprint(),
    )
    cluster.orchestrator.evict_finished = True
    if streaming:
        cluster.bound_power_traces(POWER_TRACE_MAX_POINTS)
    result = replay_trace(cluster, trace)
    wall = time.perf_counter() - start
    telemetry = cluster.orchestrator.telemetry
    traces_finished = traces_dropped = traces_exported = 0
    if trace_path is not None:
        finished = cluster.finished_traces()
        write_trace_file(finished, trace_path)
        traces_finished = cluster.tracer.traces_finished
        traces_dropped = cluster.tracer.traces_dropped
        traces_exported = len(finished)
    return MegatraceResult(
        invocations=result.jobs_completed,
        worker_count=worker_count,
        rate_per_s=rate,
        sim_duration_s=result.duration_s,
        wall_clock_s=wall,
        peak_rss_mib=peak_rss_mib(),
        throughput_per_min=result.throughput_per_min,
        mean_latency_s=telemetry.mean_latency_s(),
        p99_latency_s=telemetry.percentile_latency_s(99),
        joules_per_function=result.joules_per_function,
        records_retained=len(telemetry.records),
        sketch_buckets=telemetry._latency_sketch.bucket_count,
        traces_finished=traces_finished,
        traces_dropped=traces_dropped,
        traces_exported=traces_exported,
    )


def render(result: MegatraceResult) -> str:
    rows = [
        ("invocations replayed", f"{result.invocations:,}"),
        (
            "workers",
            f"{result.worker_count}"
            + (
                f" ({result.shards} partitions, one OP each)"
                if result.shards > 1
                else ""
            ),
        ),
        ("arrival rate", f"{result.rate_per_s:.1f} /s"),
        ("simulated time", f"{result.sim_duration_s / 3600:.2f} h"),
        ("throughput", f"{result.throughput_per_min:.0f} func/min"),
        ("mean latency", f"{result.mean_latency_s:.2f} s"),
        ("p99 latency (sketch)", f"{result.p99_latency_s:.2f} s"),
        ("energy/function", f"{result.joules_per_function:.2f} J"),
        ("wall-clock", f"{result.wall_clock_s:.1f} s"),
        (
            "simulator speed",
            f"{result.events_per_wall_s:,.0f} invocations/s "
            f"({result.sim_duration_s / result.wall_clock_s:,.0f}x real time)",
        ),
        ("peak RSS", f"{result.peak_rss_mib:.0f} MiB"),
        (
            "records retained",
            f"{result.records_retained} "
            f"(streaming; {result.sketch_buckets} sketch buckets)",
        ),
    ]
    if result.traces_finished or result.traces_exported:
        rows.append(
            (
                "traces sampled",
                f"{result.traces_finished:,} sealed, "
                f"{result.traces_exported} exported "
                f"({result.traces_dropped:,} evicted by ring)",
            )
        )
    return format_table(
        ["metric", "value"],
        rows,
        title="Megatrace - million-invocation replay on the fast path",
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
