"""Fig. 3: per-function runtime split into Working and Overhead.

Runs the 17-function mix on both clusters and reports, per function and
cluster, the mean time spent executing the function body (*Working*)
and the mean time spent receiving input / returning the result
(*Overhead*) — plus the two aggregate claims Sec. V makes about the
comparison (4 of 17 faster on MicroFaaS; 9 more at over half speed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cluster import ConventionalCluster, MicroFaaSCluster
from repro.core.scheduler import LeastLoadedPolicy
from repro.experiments.report import format_table
from repro.workloads import ALL_FUNCTION_NAMES


@dataclass(frozen=True)
class RuntimeSplit:
    """One cluster's Fig. 3 bar for one function."""

    working_s: float
    overhead_s: float

    @property
    def runtime_s(self) -> float:
        return self.working_s + self.overhead_s


@dataclass(frozen=True)
class Fig3Result:
    """Working/Overhead per function per cluster."""

    microfaas: Dict[str, RuntimeSplit]
    conventional: Dict[str, RuntimeSplit]

    def speed_ratio(self, function: str) -> float:
        """MicroFaaS runtime over conventional runtime (>1 = slower)."""
        return (
            self.microfaas[function].runtime_s
            / self.conventional[function].runtime_s
        )

    @property
    def faster_on_microfaas(self) -> List[str]:
        """Functions MicroFaaS executes faster (the paper counts 4)."""
        return [
            name for name in self.microfaas if self.speed_ratio(name) < 1.0
        ]

    @property
    def above_half_speed(self) -> List[str]:
        """Slower, but at more than half the conventional speed (9)."""
        return [
            name for name in self.microfaas
            if 1.0 <= self.speed_ratio(name) <= 2.0
        ]

    @property
    def below_half_speed(self) -> List[str]:
        return [
            name for name in self.microfaas if self.speed_ratio(name) > 2.0
        ]


def _splits(telemetry) -> Dict[str, RuntimeSplit]:
    return {
        name: RuntimeSplit(
            working_s=stats.mean_working_s, overhead_s=stats.mean_overhead_s
        )
        for name, stats in telemetry.all_function_stats().items()
    }


def run(invocations_per_function: int = 20, seed: int = 1) -> Fig3Result:
    """Regenerate Fig. 3's data from full cluster simulations."""
    microfaas = MicroFaaSCluster(
        worker_count=10, seed=seed, policy=LeastLoadedPolicy()
    )
    mf_result = microfaas.run_saturated(
        invocations_per_function=invocations_per_function
    )
    conventional = ConventionalCluster(
        vm_count=6, seed=seed, policy=LeastLoadedPolicy()
    )
    cv_result = conventional.run_saturated(
        invocations_per_function=invocations_per_function
    )
    return Fig3Result(
        microfaas=_splits(mf_result.telemetry),
        conventional=_splits(cv_result.telemetry),
    )


def render(result: Fig3Result) -> str:
    rows = []
    for name in ALL_FUNCTION_NAMES:
        mf = result.microfaas[name]
        cv = result.conventional[name]
        rows.append(
            (
                name,
                f"{mf.working_s * 1000:.0f}",
                f"{mf.overhead_s * 1000:.0f}",
                f"{cv.working_s * 1000:.0f}",
                f"{cv.overhead_s * 1000:.0f}",
                f"{result.speed_ratio(name):.2f}",
            )
        )
    table = format_table(
        ["function", "MF work ms", "MF ovh ms", "Conv work ms",
         "Conv ovh ms", "MF/Conv"],
        rows,
        title="Fig. 3 - Runtime split into Working and Overhead",
    )
    return table + (
        f"\nfaster on MicroFaaS: {len(result.faster_on_microfaas)} "
        f"(paper: 4); above half speed: {len(result.above_half_speed)} "
        f"(paper: 9); below half speed: {len(result.below_half_speed)} "
        f"(paper: 4)"
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
