"""Scale study: from the 10-SBC prototype toward datacenter scale.

The paper positions its testbed as "a small-scale proof-of-concept for a
future datacenter-scale serverless platform" (Sec. IV-B) and costs a
989-SBC rack in Table II.  This experiment asks what actually happens
when the prototype's architecture is scaled: worker throughput grows
linearly (hardware-isolated workers don't contend), ToR switches
accumulate (ceil(N/ports), as the TCO model assumes), and the paper's
*single-SBC orchestration platform* becomes the bottleneck — its
per-invocation dispatch/collect CPU caps the cluster around
``1 / (dispatch + collect)`` jobs per second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster import MicroFaaSCluster
from repro.core.controlplane import ControlPlaneModel
from repro.core.scheduler import LeastLoadedPolicy
from repro.experiments.report import format_table
from repro.experiments.runner import run_map
from repro.shard import ClusterSpec, ShardedCluster
from repro.workloads.profiles import PROFILES

#: The frontier sweep: cluster sizes from two racks up to five times the
#: TCO analysis's 989-SBC rack.  Points this large run with streaming
#: telemetry (see :func:`run`'s ``streaming_threshold``).
FRONTIER_WORKER_COUNTS = (2000, 3000, 4000, 5000)

#: The sharded-execution limit point: a hundred thousand workers — two
#: orders of magnitude past the costed rack.  Only reachable with
#: ``shards > 1`` (one serial event loop cannot turn the event volume
#: over in reasonable wall-clock) and streaming telemetry (exact-mode
#: records would not fit in memory).
FRONTIER_LIMIT_WORKER_COUNT = 100_000


@dataclass(frozen=True)
class ScalePoint:
    """One cluster size's measurement.

    ``unconstrained_per_min`` is the same cluster and workload with a
    free control plane — so ``scaling_efficiency`` isolates exactly what
    the single-SBC OP costs (batch-tail effects cancel out).
    """

    worker_count: int
    switch_count: int
    throughput_per_min: float
    unconstrained_per_min: float
    control_plane_utilization: float
    #: How many simulation shards produced this point (1 = serial).
    shards: int = 1

    @property
    def scaling_efficiency(self) -> float:
        """Throughput retained once the OP's CPU is accounted for."""
        return self.throughput_per_min / self.unconstrained_per_min


@dataclass(frozen=True)
class ScaleStudyResult:
    points: List[ScalePoint]
    control_plane: ControlPlaneModel

    @property
    def control_plane_ceiling_per_min(self) -> float:
        """Analytic control-plane capacity, func/min."""
        return self.control_plane.capacity_jobs_per_s * 60.0

    def op_link_utilization(self, throughput_per_min: float) -> float:
        """Fraction of the OP's GigE link that invocation payloads use.

        Shows the fabric is *not* the bottleneck at these scales — the
        contrast with Gand et al.'s network-bound Docker-Swarm cluster
        that Sec. II cites.
        """
        mean_payload = sum(
            p.input_bytes + p.output_bytes for p in PROFILES.values()
        ) / len(PROFILES)
        bits_per_s = throughput_per_min / 60.0 * mean_payload * 8
        return bits_per_s / 940e6


@dataclass(frozen=True)
class ScaleTask:
    """Picklable spec for one cluster size's constrained + free pair."""

    worker_count: int
    jobs_per_worker: int
    seed: int
    control_plane: ControlPlaneModel
    #: Use the streaming telemetry collector (frontier-scale points;
    #: value-identical to exact mode for everything a ScalePoint needs).
    streaming_telemetry: bool = False
    #: Split the simulation across this many shard processes.  With one
    #: shard the point runs the serial engine; with more, the control
    #: plane is sharded too (one OP dispatcher per shard), which is the
    #: "sharded OP" regime the render footnote points at — utilization
    #: is then total OP busy time over ``shards`` dispatcher-seconds.
    shards: int = 1


def _run_sharded_point(task: ScaleTask) -> ScalePoint:
    per_function = max(1, (task.jobs_per_worker * task.worker_count) // 17)
    constrained_spec = ClusterSpec(
        kind="microfaas",
        worker_count=task.worker_count,
        seed=task.seed,
        policy="least-loaded",
        telemetry_exact=not task.streaming_telemetry,
        control_plane=task.control_plane,
    )
    with ShardedCluster(constrained_spec, task.shards) as constrained:
        result = constrained.run_saturated(
            invocations_per_function=per_function
        )
        switch_count = constrained.stats.switch_count
        busy_seconds = constrained.stats.cp_busy_seconds
    free_spec = ClusterSpec(
        kind="microfaas",
        worker_count=task.worker_count,
        seed=task.seed,
        policy="least-loaded",
        telemetry_exact=not task.streaming_telemetry,
    )
    with ShardedCluster(free_spec, task.shards) as free:
        baseline = free.run_saturated(invocations_per_function=per_function)
    return ScalePoint(
        worker_count=task.worker_count,
        switch_count=switch_count,
        throughput_per_min=result.throughput_per_min,
        unconstrained_per_min=baseline.throughput_per_min,
        control_plane_utilization=busy_seconds
        / (task.shards * result.duration_s),
        shards=task.shards,
    )


def _run_scale_point(task: ScaleTask) -> ScalePoint:
    """Worker: one cluster size, measured with and without the OP."""
    if task.shards > 1:
        return _run_sharded_point(task)
    per_function = max(1, (task.jobs_per_worker * task.worker_count) // 17)
    exact = not task.streaming_telemetry
    # Both clusters share one construction plan: the fabric arithmetic
    # runs once instead of twice per point.
    blueprint = ClusterSpec(
        kind="microfaas", worker_count=task.worker_count
    ).blueprint()
    constrained = MicroFaaSCluster(
        worker_count=task.worker_count,
        seed=task.seed,
        policy=LeastLoadedPolicy(),
        control_plane=task.control_plane,
        telemetry_exact=exact,
        blueprint=blueprint,
    )
    result = constrained.run_saturated(invocations_per_function=per_function)
    free = MicroFaaSCluster(
        worker_count=task.worker_count,
        seed=task.seed,
        policy=LeastLoadedPolicy(),
        telemetry_exact=exact,
        blueprint=blueprint,
    )
    baseline = free.run_saturated(invocations_per_function=per_function)
    return ScalePoint(
        worker_count=task.worker_count,
        switch_count=len(constrained.switches),
        throughput_per_min=result.throughput_per_min,
        unconstrained_per_min=baseline.throughput_per_min,
        control_plane_utilization=constrained.control_plane.utilization(
            result.duration_s
        ),
    )


def run(
    worker_counts: Sequence[int] = (10, 50, 100, 200, 400, 600, 800),
    jobs_per_worker: int = 5,
    control_plane: ControlPlaneModel = ControlPlaneModel(),
    seed: int = 1,
    jobs: int = 1,
    cache: bool = True,
    cache_dir=None,
    streaming_threshold: int = 1000,
    shards: int = 1,
) -> ScaleStudyResult:
    """Sweep cluster sizes under the single-SBC control plane.

    Each size is an independent task spec (seed included), so the sweep
    parallelizes across ``jobs`` processes and caches per-point without
    changing any value.  Points at or above ``streaming_threshold``
    workers collect telemetry in streaming mode so their memory stays
    bounded (throughput and OP utilization are mode-independent).

    ``shards > 1`` splits every point's simulation across that many
    shard processes (see :mod:`repro.shard`) and shards the OP with it
    — required for the :data:`FRONTIER_LIMIT_WORKER_COUNT` point, where
    one event loop cannot turn over the event volume.  Prefer
    ``jobs=1`` when sharding: the parallelism budget is better spent
    inside each point than across points.
    """
    if jobs_per_worker < 1:
        raise ValueError("jobs_per_worker must be >= 1")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    tasks = [
        ScaleTask(
            count,
            jobs_per_worker,
            seed,
            control_plane,
            streaming_telemetry=count >= streaming_threshold,
            shards=shards,
        )
        for count in worker_counts
    ]
    points = run_map(
        tasks, _run_scale_point, jobs=jobs, cache=cache, cache_dir=cache_dir
    )
    return ScaleStudyResult(points=points, control_plane=control_plane)


def run_frontier(
    jobs_per_worker: int = 3,
    control_plane: ControlPlaneModel = ControlPlaneModel(),
    seed: int = 1,
    jobs: int = 1,
    cache: bool = True,
    cache_dir=None,
    shards: int = 1,
    worker_counts: Sequence[int] = FRONTIER_WORKER_COUNTS,
) -> ScaleStudyResult:
    """The 2,000–5,000-worker sweep (always streaming telemetry).

    Pass ``shards > 1`` with
    ``worker_counts=(*FRONTIER_WORKER_COUNTS, FRONTIER_LIMIT_WORKER_COUNT)``
    to push the sweep to the 100k-worker limit point.
    """
    return run(
        worker_counts=worker_counts,
        jobs_per_worker=jobs_per_worker,
        control_plane=control_plane,
        seed=seed,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        streaming_threshold=0,
        shards=shards,
    )


def render(result: ScaleStudyResult) -> str:
    sharded = any(point.shards > 1 for point in result.points)
    rows = [
        (
            point.worker_count,
            point.switch_count,
            f"{point.throughput_per_min:.0f}",
            f"{point.unconstrained_per_min:.0f}",
            f"{point.scaling_efficiency * 100:.0f}%",
            f"{point.control_plane_utilization * 100:.0f}%",
        )
        + ((point.shards,) if sharded else ())
        for point in result.points
    ]
    headers = ["workers", "switches", "func/min", "free OP", "retained", "OP util"]
    if sharded:
        headers.append("shards")
    table = format_table(
        headers,
        rows,
        title="Scale study - the prototype architecture beyond 10 SBCs",
    )
    busiest = max(p.throughput_per_min for p in result.points)
    if sharded:
        shards = max(p.shards for p in result.points)
        ceiling_note = (
            f"\nper-dispatcher OP ceiling: "
            f"{result.control_plane_ceiling_per_min:.0f} func/min "
            f"({result.control_plane.dispatch_s * 1000:.0f} ms dispatch + "
            f"{result.control_plane.collect_s * 1000:.0f} ms collect per job); "
            f"the {shards}-way sharded OP lifts the cluster ceiling to "
            f"{result.control_plane_ceiling_per_min * shards:.0f} func/min."
        )
    else:
        ceiling_note = (
            f"\nsingle-SBC control plane ceiling: "
            f"{result.control_plane_ceiling_per_min:.0f} func/min "
            f"({result.control_plane.dispatch_s * 1000:.0f} ms dispatch + "
            f"{result.control_plane.collect_s * 1000:.0f} ms collect per job); "
            "scaling past it needs a sharded OP — rerun with --shards N "
            "to model one (repro.shard splits both the simulation and "
            "the OP into N dispatchers)."
        )
    return table + ceiling_note + (
        f"\nOP uplink at the busiest point: "
        f"{result.op_link_utilization(busiest) * 100:.1f}% of GigE — "
        "the fabric is not the bottleneck; the control plane's CPU is."
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
