"""The Sec. V headline experiment.

Runs both throughput-matched clusters over the full 17-function mix and
reports the four numbers the abstract leads with:

- 10-SBC MicroFaaS throughput (paper: 200.6 func/min);
- 6-VM conventional throughput (paper: 211.7 func/min);
- energy per function on each (paper: 5.7 J vs 32.0 J);
- the resulting efficiency ratio (paper: 5.6x).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import ClusterResult, ConventionalCluster, MicroFaaSCluster
from repro.core.scheduler import LeastLoadedPolicy
from repro.experiments.report import format_table

PAPER = {
    "microfaas_fpm": 200.6,
    "conventional_fpm": 211.7,
    "microfaas_jpf": 5.7,
    "conventional_jpf": 32.0,
    "ratio": 5.6,
}


@dataclass(frozen=True)
class HeadlineResult:
    microfaas: ClusterResult
    conventional: ClusterResult

    @property
    def efficiency_ratio(self) -> float:
        return (
            self.conventional.joules_per_function
            / self.microfaas.joules_per_function
        )

    @property
    def throughput_matched(self) -> bool:
        """Within 10 % of each other, as the paper's sizing intends."""
        mf = self.microfaas.throughput_per_min
        cv = self.conventional.throughput_per_min
        return abs(mf - cv) / cv < 0.10


def run(invocations_per_function: int = 30, seed: int = 1) -> HeadlineResult:
    """Run the headline comparison.

    Uses the least-loaded assignment policy so the measured window is a
    true capacity measurement (random sampling converges to the same
    numbers at the paper's 1,000 invocations per function, but leaves
    straggler tails at smaller counts).
    """
    microfaas = MicroFaaSCluster(
        worker_count=10, seed=seed, policy=LeastLoadedPolicy()
    )
    mf_result = microfaas.run_saturated(
        invocations_per_function=invocations_per_function
    )
    conventional = ConventionalCluster(
        vm_count=6, seed=seed, policy=LeastLoadedPolicy()
    )
    cv_result = conventional.run_saturated(
        invocations_per_function=invocations_per_function
    )
    return HeadlineResult(microfaas=mf_result, conventional=cv_result)


def render(result: HeadlineResult) -> str:
    rows = [
        (
            "throughput (func/min)",
            f"{result.microfaas.throughput_per_min:.1f}",
            f"{PAPER['microfaas_fpm']}",
            f"{result.conventional.throughput_per_min:.1f}",
            f"{PAPER['conventional_fpm']}",
        ),
        (
            "energy (J/function)",
            f"{result.microfaas.joules_per_function:.2f}",
            f"{PAPER['microfaas_jpf']}",
            f"{result.conventional.joules_per_function:.2f}",
            f"{PAPER['conventional_jpf']}",
        ),
        (
            "average power (W)",
            f"{result.microfaas.average_watts:.1f}",
            "-",
            f"{result.conventional.average_watts:.1f}",
            "-",
        ),
    ]
    table = format_table(
        ["metric", "MicroFaaS", "(paper)", "Conventional", "(paper)"],
        rows,
        title="Headline comparison - throughput-matched clusters",
    )
    return table + (
        f"\nenergy-efficiency ratio: {result.efficiency_ratio:.1f}x "
        f"(paper: {PAPER['ratio']}x); throughput matched: "
        f"{result.throughput_matched}"
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
