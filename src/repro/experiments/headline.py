"""The Sec. V headline experiment.

Runs both throughput-matched clusters over the full 17-function mix and
reports the four numbers the abstract leads with:

- 10-SBC MicroFaaS throughput (paper: 200.6 func/min);
- 6-VM conventional throughput (paper: 211.7 func/min);
- energy per function on each (paper: 5.7 J vs 32.0 J);
- the resulting efficiency ratio (paper: 5.6x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster import ClusterResult, ConventionalCluster, MicroFaaSCluster
from repro.core.scheduler import LeastLoadedPolicy
from repro.experiments.report import format_table
from repro.experiments.runner import run_map
from repro.obs.export import write_trace_file
from repro.obs.trace import TraceConfig, merge_traces

PAPER = {
    "microfaas_fpm": 200.6,
    "conventional_fpm": 211.7,
    "microfaas_jpf": 5.7,
    "conventional_jpf": 32.0,
    "ratio": 5.6,
}


@dataclass(frozen=True)
class HeadlineResult:
    microfaas: ClusterResult
    conventional: ClusterResult

    @property
    def efficiency_ratio(self) -> float:
        return (
            self.conventional.joules_per_function
            / self.microfaas.joules_per_function
        )

    @property
    def throughput_matched(self) -> bool:
        """Within 10 % of each other, as the paper's sizing intends."""
        mf = self.microfaas.throughput_per_min
        cv = self.conventional.throughput_per_min
        return abs(mf - cv) / cv < 0.10


@dataclass(frozen=True)
class HeadlineTask:
    """Picklable spec for one side of the comparison."""

    platform: str  # "microfaas" or "conventional"
    invocations_per_function: int
    seed: int


def _run_cluster(task: HeadlineTask) -> ClusterResult:
    """Worker: run one throughput-matched cluster at capacity."""
    if task.platform == "microfaas":
        cluster = MicroFaaSCluster(
            worker_count=10, seed=task.seed, policy=LeastLoadedPolicy()
        )
    else:
        cluster = ConventionalCluster(
            vm_count=6, seed=task.seed, policy=LeastLoadedPolicy()
        )
    return cluster.run_saturated(
        invocations_per_function=task.invocations_per_function
    )


def _run_traced(
    invocations_per_function: int,
    seed: int,
    trace_path: str,
    trace: TraceConfig,
) -> HeadlineResult:
    """Inline traced run: both clusters in-process, one merged export.

    The span recorders live inside the cluster objects, so traced runs
    cannot go through :func:`run_map` (a cache hit would return numbers
    without spans, and subprocess fan-out would strand the recorders in
    the workers).  Tracing draws from its own spawned RNG stream, so
    these numbers are bit-identical to the cached ``run_map`` path.
    """
    mf_cluster = MicroFaaSCluster(
        worker_count=10, seed=seed, policy=LeastLoadedPolicy(), trace=trace
    )
    mf_result = mf_cluster.run_saturated(
        invocations_per_function=invocations_per_function
    )
    cv_cluster = ConventionalCluster(
        vm_count=6, seed=seed, policy=LeastLoadedPolicy(), trace=trace
    )
    cv_result = cv_cluster.run_saturated(
        invocations_per_function=invocations_per_function
    )
    mf_cluster.finished_traces()
    cv_cluster.finished_traces()
    traces = merge_traces([mf_cluster.tracer, cv_cluster.tracer])
    write_trace_file(traces, trace_path)
    return HeadlineResult(microfaas=mf_result, conventional=cv_result)


def run(
    invocations_per_function: int = 30,
    seed: int = 1,
    jobs: int = 1,
    cache: bool = True,
    cache_dir=None,
    trace_path: Optional[str] = None,
    trace: Optional[TraceConfig] = None,
) -> HeadlineResult:
    """Run the headline comparison.

    Uses the least-loaded assignment policy so the measured window is a
    true capacity measurement (random sampling converges to the same
    numbers at the paper's 1,000 invocations per function, but leaves
    straggler tails at smaller counts).  The two clusters are
    independent simulations, so they fan out and cache like any sweep.

    With ``trace_path`` set, both clusters run inline with per
    -invocation span recording and the merged span trees are written to
    that path (Chrome trace-event JSON, or JSONL if the path ends in
    ``.jsonl``); the headline numbers are unchanged.
    """
    if trace_path is not None:
        return _run_traced(
            invocations_per_function,
            seed,
            trace_path,
            trace if trace is not None else TraceConfig(),
        )
    mf_result, cv_result = run_map(
        [
            HeadlineTask("microfaas", invocations_per_function, seed),
            HeadlineTask("conventional", invocations_per_function, seed),
        ],
        _run_cluster,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
    )
    return HeadlineResult(microfaas=mf_result, conventional=cv_result)


def render(result: HeadlineResult) -> str:
    rows = [
        (
            "throughput (func/min)",
            f"{result.microfaas.throughput_per_min:.1f}",
            f"{PAPER['microfaas_fpm']}",
            f"{result.conventional.throughput_per_min:.1f}",
            f"{PAPER['conventional_fpm']}",
        ),
        (
            "energy (J/function)",
            f"{result.microfaas.joules_per_function:.2f}",
            f"{PAPER['microfaas_jpf']}",
            f"{result.conventional.joules_per_function:.2f}",
            f"{PAPER['conventional_jpf']}",
        ),
        (
            "average power (W)",
            f"{result.microfaas.average_watts:.1f}",
            "-",
            f"{result.conventional.average_watts:.1f}",
            "-",
        ),
    ]
    table = format_table(
        ["metric", "MicroFaaS", "(paper)", "Conventional", "(paper)"],
        rows,
        title="Headline comparison - throughput-matched clusters",
    )
    return table + (
        f"\nenergy-efficiency ratio: {result.efficiency_ratio:.1f}x "
        f"(paper: {PAPER['ratio']}x); throughput matched: "
        f"{result.throughput_matched}"
    )


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
