"""Fig. 5: average power vs. number of active workers.

Two series: the SBC cluster (near-linear, passing close to the origin —
boards that aren't working are powered off) and the VM host (a 60 W idle
floor and a concave climb).  Reported with the proportionality metrics
that quantify the contrast, plus simulation cross-checks: actual cluster
runs with a fixed number of busy workers whose measured average power
must land on the analytic lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster import ConventionalCluster, MicroFaaSCluster
from repro.core.scheduler import RoundRobinPolicy
from repro.energy.proportionality import (
    ProportionalitySeries,
    linearity_r_squared,
    proportionality_index,
    sbc_cluster_power_series,
    vm_host_power_series,
)
from repro.experiments.report import format_table


@dataclass(frozen=True)
class Fig5Result:
    sbc_series: ProportionalitySeries
    vm_series: ProportionalitySeries
    #: Measured (active workers, average watts) cross-check points.
    sbc_measured: Tuple[Tuple[int, float], ...] = ()
    vm_measured: Tuple[Tuple[int, float], ...] = ()

    @property
    def sbc_proportionality(self) -> float:
        return proportionality_index(self.sbc_series)

    @property
    def vm_proportionality(self) -> float:
        return proportionality_index(self.vm_series)

    @property
    def sbc_linearity(self) -> float:
        return linearity_r_squared(self.sbc_series)


def _measure_sbc(active: int, invocations: int, seed: int) -> float:
    """Average power of a cluster where exactly ``active`` of 10 boards
    work continuously (jobs pinned round-robin over the active set)."""
    cluster = MicroFaaSCluster(
        worker_count=10, seed=seed, policy=RoundRobinPolicy()
    )
    # Round-robin over 10 queues: submit only to the first `active`
    # workers by issuing jobs in multiples of the worker count but
    # only for the active prefix.
    from repro.workloads import ALL_FUNCTION_NAMES

    # Every active queue receives the identical function sequence so all
    # boards stay busy for the same span (no straggler tail skewing the
    # window average).
    for i in range(invocations * active):
        function = ALL_FUNCTION_NAMES[(i // active) % 17]
        job = cluster.orchestrator.make_job(function)
        cluster.orchestrator.jobs[job.job_id] = job
        cluster.orchestrator._submitted += 1
        job.t_submit = cluster.env.now
        cluster.orchestrator.queues[i % active].push(job)
    done = cluster.orchestrator.wait_all()
    cluster.env.run(until=done)
    return cluster.energy_joules(0.0, cluster.env.now) / cluster.env.now


def _measure_vm(active: int, invocations: int, seed: int) -> float:
    """Average host power with exactly ``active`` busy VMs."""
    cluster = ConventionalCluster(
        vm_count=max(active, 1), seed=seed, policy=RoundRobinPolicy()
    )
    from repro.workloads import ALL_FUNCTION_NAMES

    for i in range(invocations * active):
        cluster.orchestrator.submit_function(ALL_FUNCTION_NAMES[i % 17])
    done = cluster.orchestrator.wait_all()
    cluster.env.run(until=done)
    return cluster.energy_joules(0.0, cluster.env.now) / cluster.env.now


def run(
    sbc_cluster_size: int = 10,
    max_vms: int = 12,
    measure: bool = True,
    measured_points: Tuple[int, ...] = (2, 5, 8),
    invocations: int = 6,
    seed: int = 1,
) -> Fig5Result:
    """Regenerate Fig. 5: analytic series plus simulation cross-checks."""
    sbc_measured: List[Tuple[int, float]] = []
    vm_measured: List[Tuple[int, float]] = []
    if measure:
        for active in measured_points:
            sbc_measured.append(
                (active, _measure_sbc(active, invocations, seed))
            )
            vm_measured.append((active, _measure_vm(active, invocations, seed)))
    return Fig5Result(
        sbc_series=sbc_cluster_power_series(sbc_cluster_size),
        vm_series=vm_host_power_series(max_vms),
        sbc_measured=tuple(sbc_measured),
        vm_measured=tuple(vm_measured),
    )


def render(result: Fig5Result) -> str:
    sbc = dict(zip(result.sbc_series.worker_counts, result.sbc_series.watts))
    vm = dict(zip(result.vm_series.worker_counts, result.vm_series.watts))
    counts = sorted(set(sbc) | set(vm))
    rows = [
        (
            n,
            f"{sbc[n]:.2f}" if n in sbc else "-",
            f"{vm[n]:.1f}" if n in vm else "-",
        )
        for n in counts
    ]
    table = format_table(
        ["active workers", "SBC cluster W", "VM host W"],
        rows,
        title="Fig. 5 - Average power vs active workers "
              "(note the idle-power difference at qty 0)",
    )
    footer = (
        f"\nSBC idle {result.sbc_series.idle_watts:.2f} W vs VM host idle "
        f"{result.vm_series.idle_watts:.0f} W; proportionality index "
        f"SBC {result.sbc_proportionality:.2f} vs VM "
        f"{result.vm_proportionality:.2f}; SBC linearity R^2 = "
        f"{result.sbc_linearity:.4f}"
    )
    if result.sbc_measured:
        checks = ", ".join(
            f"{n} active: {w:.1f} W" for n, w in result.sbc_measured
        )
        footer += f"\nsimulated SBC cross-checks: {checks}"
    return table + footer


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
