"""Fault study: goodput and energy under escalating chaos.

The paper's dependability argument (Sec. III-c, and the 95 %-online TCO
scenario) is qualitative: SBCs fail rarely, and the orchestration
platform resubmits around failures.  This experiment makes it
quantitative.  A saturated 8-worker cluster runs the full workload
suite while the chaos engine injects board crashes, boot failures,
stuck GPIO lines, link/switch outages, and backend faults at an
escalating rate scale; the orchestrator runs the full recovery stack
(at-least-once resubmission with idempotency keys, per-attempt timeout
retries with backoff, straggler hedging, per-worker circuit breakers).

Reported per fault-rate point: goodput (completed logical jobs per
minute), jobs lost (must be zero — the deadline knob is off), p99
end-to-end latency, mean time to recovery for board faults, recovery
activity (resubmissions, timeout retries, hedges, duplicates
suppressed), and the energy overhead relative to the fault-free run.

Every point is an independent, seeded task on the shared
:func:`~repro.experiments.runner.run_map` runner, so the sweep is
bit-identical at any ``--jobs`` and caches per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster import MicroFaaSCluster
from repro.core.policies import RecoveryPolicy
from repro.core.telemetry import percentiles
from repro.core.scheduler import LeastLoadedPolicy
from repro.experiments.report import format_table
from repro.experiments.runner import run_map
from repro.obs.export import write_trace_file
from repro.obs.trace import TraceConfig
from repro.reliability.chaos import ChaosEngine, ChaosPlan, ChaosProfile
from repro.services.backend import BackendCapacityModel

#: Chaos sampling horizon: long enough to cover the saturated run at
#: the default workload volume (the run itself ends when the last job
#: completes).
CHAOS_HORIZON_S = 120.0


@dataclass(frozen=True)
class FaultStudyTask:
    """Picklable spec for one fault-rate point."""

    fault_rate_scale: float
    worker_count: int
    invocations_per_function: int
    seed: int


@dataclass(frozen=True)
class FaultStudyPoint:
    """One fault-rate point's measurements."""

    fault_rate_scale: float
    jobs_submitted: int
    jobs_delivered: int
    jobs_lost: int
    goodput_per_min: float
    p99_latency_s: float
    mean_recovery_s: Optional[float]
    faults_injected: int
    resubmissions: int
    timeout_retries: int
    hedges: int
    duplicates_suppressed: int
    boards_abandoned: int
    duration_s: float
    energy_joules: float

    @property
    def joules_per_function(self) -> float:
        if self.jobs_delivered == 0:
            return float("nan")
        return self.energy_joules / self.jobs_delivered


@dataclass(frozen=True)
class FaultStudyResult:
    points: List[FaultStudyPoint]

    @property
    def baseline(self) -> FaultStudyPoint:
        """The fault-free point (lowest rate; scale 0 in the default sweep)."""
        return min(self.points, key=lambda p: p.fault_rate_scale)

    def energy_overhead(self, point: FaultStudyPoint) -> float:
        """Fractional J/function increase over the fault-free run."""
        base = self.baseline.joules_per_function
        if base == 0:
            return 0.0
        return point.joules_per_function / base - 1.0

    @property
    def total_jobs_lost(self) -> int:
        return sum(point.jobs_lost for point in self.points)


def _percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile via the shared sort-once helper."""
    if not values:
        return 0.0
    return percentiles(values, [p], method="nearest")[0]


def _build_point_cluster(
    task: FaultStudyTask, trace: Optional[TraceConfig] = None
) -> Tuple[MicroFaaSCluster, ChaosEngine]:
    """A seeded cluster with this point's chaos plan armed.

    Shared between the cached sweep workers and the inline traced
    re-run, so a traced point sees the exact same fault schedule.
    """
    cluster = MicroFaaSCluster(
        worker_count=task.worker_count,
        seed=task.seed,
        policy=LeastLoadedPolicy(),
        backend=BackendCapacityModel(),
        recovery=RecoveryPolicy(),
        trace=trace,
    )
    plan = ChaosPlan.sample(
        ChaosProfile(scale=task.fault_rate_scale),
        worker_count=task.worker_count,
        horizon_s=CHAOS_HORIZON_S,
        streams=cluster.streams.spawn("chaos"),
        switch_count=len(cluster.switches),
    )
    engine = ChaosEngine(cluster)
    engine.apply(plan)
    return cluster, engine


def _run_fault_point(task: FaultStudyTask) -> FaultStudyPoint:
    """Worker: one saturated run under one chaos rate scale."""
    cluster, engine = _build_point_cluster(task)
    result = cluster.run_saturated(
        invocations_per_function=task.invocations_per_function
    )
    orchestrator = cluster.orchestrator
    # Exactly-once delivery check: every logical job appears once in the
    # result log (telemetry), lost jobs excepted (the deadline knob is
    # off, so there should be none).
    submitted = len(orchestrator.jobs)
    delivered = orchestrator.telemetry.count
    if delivered + orchestrator.jobs_lost != submitted:
        raise RuntimeError(
            f"delivery mismatch at scale {task.fault_rate_scale}: "
            f"{submitted} submitted, {delivered} delivered, "
            f"{orchestrator.jobs_lost} lost"
        )
    latencies = [
        job.end_to_end_s
        for job in orchestrator.jobs.values()
        if job.t_completed is not None and job.failure is None
    ]
    return FaultStudyPoint(
        fault_rate_scale=task.fault_rate_scale,
        jobs_submitted=submitted,
        jobs_delivered=delivered,
        jobs_lost=orchestrator.jobs_lost,
        goodput_per_min=delivered / result.duration_s * 60.0,
        p99_latency_s=_percentile(latencies, 99.0),
        mean_recovery_s=engine.mean_recovery_s,
        faults_injected=engine.injected,
        resubmissions=orchestrator.resubmissions,
        timeout_retries=orchestrator.timeout_retries,
        hedges=orchestrator.hedges,
        duplicates_suppressed=orchestrator.duplicates_suppressed,
        boards_abandoned=engine.boards_abandoned,
        duration_s=result.duration_s,
        energy_joules=result.energy_joules,
    )


def _trace_point(task: FaultStudyTask, trace_path: str) -> None:
    """Re-run one point inline with span recording and export it.

    The sweep itself stays on the cached ``run_map`` path; the traced
    re-run is a separate cluster with the same seed and chaos plan, so
    the exported spans (including ``chaos_event`` annotations and the
    linked crashed/retried attempt spans) match the reported numbers.
    """
    cluster, _ = _build_point_cluster(task, trace=TraceConfig())
    cluster.run_saturated(
        invocations_per_function=task.invocations_per_function
    )
    write_trace_file(cluster.finished_traces(), trace_path)


def run(
    fault_rate_scales: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    worker_count: int = 8,
    invocations_per_function: int = 4,
    seed: int = 7,
    jobs: int = 1,
    cache: bool = True,
    cache_dir=None,
    trace_path: Optional[str] = None,
) -> FaultStudyResult:
    """Sweep chaos rate scales over independent seeded cluster runs.

    With ``trace_path`` set, the highest-rate point is re-run inline
    with tracing enabled and its span trees written to that path — the
    most fault-dense point is the one worth looking at in Perfetto.
    """
    if worker_count < 2:
        raise ValueError("the fault study needs at least two workers")
    if invocations_per_function < 1:
        raise ValueError("invocations_per_function must be >= 1")
    tasks = [
        FaultStudyTask(scale, worker_count, invocations_per_function, seed)
        for scale in fault_rate_scales
    ]
    points = run_map(
        tasks, _run_fault_point, jobs=jobs, cache=cache, cache_dir=cache_dir
    )
    if trace_path is not None:
        _trace_point(
            max(tasks, key=lambda t: t.fault_rate_scale), trace_path
        )
    return FaultStudyResult(points=points)


def render(result: FaultStudyResult) -> str:
    rows = []
    for point in result.points:
        mttr = (
            f"{point.mean_recovery_s:.1f}"
            if point.mean_recovery_s is not None
            else "-"
        )
        rows.append(
            (
                f"{point.fault_rate_scale:g}",
                point.faults_injected,
                f"{point.goodput_per_min:.0f}",
                point.jobs_lost,
                f"{point.p99_latency_s:.1f}",
                mttr,
                point.resubmissions,
                point.timeout_retries,
                point.hedges,
                point.duplicates_suppressed,
                f"{result.energy_overhead(point) * 100:+.0f}%",
            )
        )
    table = format_table(
        [
            "scale",
            "faults",
            "goodput/min",
            "lost",
            "p99 s",
            "MTTR s",
            "resub",
            "retries",
            "hedges",
            "dups",
            "energy",
        ],
        rows,
        title="Fault study - recovery under escalating chaos",
    )
    baseline = result.baseline
    closing = (
        f"\nall {sum(p.jobs_submitted for p in result.points)} jobs across "
        f"the sweep delivered exactly once ({result.total_jobs_lost} lost); "
        f"fault-free baseline: {baseline.goodput_per_min:.0f} func/min at "
        f"{baseline.joules_per_function:.1f} J/function."
        if result.total_jobs_lost == 0
        else f"\nWARNING: {result.total_jobs_lost} jobs lost across the sweep."
    )
    return table + closing


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
