"""Experiment harness: regenerate every table and figure.

One module per paper artifact:

- :mod:`repro.experiments.fig1_boot` — worker-OS boot-time trajectory.
- :mod:`repro.experiments.table1_workloads` — the 17-function suite,
  executed live.
- :mod:`repro.experiments.fig3_runtime` — per-function Working/Overhead
  on both clusters.
- :mod:`repro.experiments.fig4_vmsweep` — energy efficiency and
  throughput vs. VM count.
- :mod:`repro.experiments.fig5_power` — power vs. active workers.
- :mod:`repro.experiments.table2_tco` — the 5-year cost comparison.
- :mod:`repro.experiments.headline` — the throughput match and the
  5.6x energy headline.
- :mod:`repro.experiments.fault_study` — goodput, latency, and energy
  under escalating chaos with the full recovery stack (extension).
- :mod:`repro.experiments.hybrid_study` — the SBC:VM mix sweep on the
  heterogeneous cluster with per-platform telemetry (extension).
- :mod:`repro.experiments.federation_study` — multi-region federation:
  users × regions × outage rates, failover MTTR, per-geo latency
  (extension).
- :mod:`repro.experiments.sdk_study` — client-driven map_reduce
  workloads through the :mod:`repro.client` SDK: users × fan-out ×
  backend kind (extension).
- :mod:`repro.experiments.energy_study` — the power-cap frontier
  (energy saved vs p99 paid) and per-tenant energy-budget runs on the
  online attribution ledger (extension).

Every module exposes ``run(...)`` returning structured results and
``render(...)`` producing the text the benchmark harness prints.

:mod:`repro.experiments.runner` is the shared execution layer: the
sweep-shaped experiments fan their independent points across worker
processes via :func:`repro.experiments.runner.run_map`, backed by a
content-addressed on-disk result cache.
"""

from repro.experiments import (
    energy_study,
    fault_study,
    federation_study,
    fig1_boot,
    fig2_testbed,
    fig3_runtime,
    fig4_vmsweep,
    fig5_power,
    hardware_selection,
    headline,
    hybrid_study,
    runner,
    scale_study,
    sdk_study,
    table1_workloads,
    table2_tco,
)

__all__ = [
    "energy_study",
    "fault_study",
    "federation_study",
    "fig1_boot",
    "fig2_testbed",
    "fig3_runtime",
    "fig4_vmsweep",
    "fig5_power",
    "hardware_selection",
    "headline",
    "hybrid_study",
    "runner",
    "scale_study",
    "sdk_study",
    "table1_workloads",
    "table2_tco",
]
