"""Energy study: the power-cap frontier and per-tenant budget runs.

Two sweeps over one diurnal arrival trace on the paper's SBC cluster:

1. **The cap frontier.**  Untenanted runs at each power-cap level.  A
   cap resolves to a DVFS step on the board's frequency ladder
   (:mod:`repro.hardware.power`): active draw falls with the square of
   the perf scale (CMOS), so joules per function drop while execute
   phases stretch — energy saved is paid for in p99 latency.  The
   frontier reports both, relative to the uncapped baseline, and is
   monotone along the ladder.  These points carry no control-plane
   state, so they shard (``--shards``) bit-identically.

2. **Tenant budget runs.**  The same trace split across N tenants
   (``job_id`` round-robin via the orchestrator's ``tenant_namer``
   hook), metered live by the :class:`~repro.energy.controlplane.
   EnergyLedger` and throttled by a :class:`~repro.core.policies.
   BudgetPolicy` at descending budget scales.  Each point reports the
   per-tenant attribution, how many submissions were delayed or shed,
   and the ledger's conservation residual (≤ 1e-9).  Budget points are
   always serial: the ledger meters per-board traces the coordinator
   does not hold.

Every point is an independent, seeded task on
:func:`~repro.experiments.runner.run_map`, so the sweep is
bit-identical at any ``--jobs`` and caches per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.microfaas import MicroFaaSCluster
from repro.cluster.replay import replay_trace
from repro.core.policies import BudgetPolicy
from repro.experiments.report import format_table
from repro.experiments.runner import run_map
from repro.obs.export import write_trace_file
from repro.obs.trace import TraceConfig
from repro.shard import ClusterSpec, ShardedCluster
from repro.sim.rng import RandomStreams
from repro.workloads.traces import diurnal_trace

#: Cap ladder swept by default: uncapped, then the BeagleBone's two
#: lower DVFS steps (2.20 W peak -> 1.5 W selects the 0.8x step,
#: 1.0 W the 0.6x step).
DEFAULT_CAPS: Tuple[Optional[float], ...] = (None, 1.5, 1.0)

#: Budget scales swept by default (x :data:`BASE_BUDGET_J_PER_WINDOW`).
DEFAULT_BUDGET_SCALES: Tuple[float, ...] = (2.0, 1.0, 0.5)

#: Nominal per-tenant budget at scale 1.0.  Sized against the default
#: trace: ~1.5 jobs/s at peak over 3 tenants x ~5.7 J active per
#: function ~= 170 J per 60 s window per tenant, so scale 2.0 never
#: throttles, 1.0 throttles near peak, 0.5 throttles hard.
BASE_BUDGET_J_PER_WINDOW = 120.0

#: Budget accounting window (seconds).
BUDGET_WINDOW_S = 60.0

#: Power cap applied to the budgeted runs (cap + budgets compose).
BUDGETED_CAP_WATTS = 1.5


@dataclass(frozen=True)
class EnergyStudyTask:
    """Picklable spec for one study point.

    ``budget_scale is None`` marks an untenanted cap-frontier point;
    otherwise the point runs tenanted under a budget controller.
    """

    cap_watts: Optional[float]
    budget_scale: Optional[float]
    tenants: int
    trough_rate_per_s: float
    peak_rate_per_s: float
    period_s: float
    duration_s: float
    worker_count: int
    seed: int
    #: Shards for frontier points (budget points always run serial).
    shards: int = 1


@dataclass(frozen=True)
class EnergyStudyPoint:
    """One point's measurements."""

    cap_watts: Optional[float]
    budget_scale: Optional[float]
    jobs_completed: int
    duration_s: float
    throughput_per_min: float
    energy_joules: float
    joules_per_function: float
    p99_latency_s: float
    jobs_delayed: int
    jobs_shed: int
    #: Per-tenant attributed joules ``((tenant, joules), ...)`` sorted
    #: by tenant name; empty for untenanted frontier points.
    tenant_joules: Tuple[Tuple[str, float], ...]
    #: Ledger conservation residual (metered - attributed); None when
    #: no ledger was attached (frontier points).
    reconciliation_residual_j: Optional[float]
    idle_overhead_j: Optional[float]
    wasted_j: Optional[float]


@dataclass(frozen=True)
class FrontierEntry:
    """One cap level relative to the uncapped baseline."""

    point: EnergyStudyPoint
    energy_saved_j: float
    p99_paid_s: float


@dataclass(frozen=True)
class EnergyStudyResult:
    points: List[EnergyStudyPoint]

    def frontier_points(self) -> List[EnergyStudyPoint]:
        """Cap-frontier points, uncapped first then descending caps."""
        frontier = [p for p in self.points if p.budget_scale is None]
        return sorted(
            frontier,
            key=lambda p: -p.cap_watts if p.cap_watts is not None else float(
                "-inf"
            ),
        )

    def budget_points(self) -> List[EnergyStudyPoint]:
        """Tenanted budget points, descending budget scale."""
        budgeted = [p for p in self.points if p.budget_scale is not None]
        return sorted(budgeted, key=lambda p: -p.budget_scale)

    def frontier(self) -> List[FrontierEntry]:
        """The energy-saved vs p99-paid frontier vs the uncapped run."""
        frontier = self.frontier_points()
        if not frontier or frontier[0].cap_watts is not None:
            raise ValueError("frontier needs an uncapped baseline point")
        baseline = frontier[0]
        return [
            FrontierEntry(
                point=point,
                energy_saved_j=baseline.energy_joules - point.energy_joules,
                p99_paid_s=point.p99_latency_s - baseline.p99_latency_s,
            )
            for point in frontier
        ]


def _point_trace(task: EnergyStudyTask):
    """The shared diurnal arrival trace (seeded, regenerated per run)."""
    return diurnal_trace(
        task.trough_rate_per_s,
        task.peak_rate_per_s,
        period_s=task.period_s,
        duration_s=task.duration_s,
        streams=RandomStreams(task.seed),
    )


def _budget_policy(task: EnergyStudyTask) -> BudgetPolicy:
    return BudgetPolicy(
        window_s=BUDGET_WINDOW_S,
        default_budget_j=task.budget_scale * BASE_BUDGET_J_PER_WINDOW,
        action="delay",
    )


def _build_budgeted_cluster(
    task: EnergyStudyTask, trace: Optional[TraceConfig] = None
) -> MicroFaaSCluster:
    """A seeded, capped, tenanted cluster for one budget point."""
    cluster = MicroFaaSCluster(
        worker_count=task.worker_count, seed=task.seed, trace=trace
    )
    if task.cap_watts is not None:
        cluster.set_power_cap(task.cap_watts)
    cluster.enable_tenant_budgets(_budget_policy(task))
    tenants = task.tenants
    cluster.orchestrator.tenant_namer = (
        lambda job_id, function: f"tenant-{job_id % tenants}"
    )
    return cluster


def _run_point(task: EnergyStudyTask) -> EnergyStudyPoint:
    """Worker: one diurnal replay at one (cap, budget) setting."""
    if task.budget_scale is None:
        # Cap frontier: untenanted, no control-plane state, shardable.
        if task.shards > 1:
            sharded = ShardedCluster(
                ClusterSpec(
                    kind="microfaas",
                    worker_count=task.worker_count,
                    seed=task.seed,
                    power_cap_watts=task.cap_watts,
                ),
                task.shards,
                executor="inline",
            )
            result = sharded.replay_trace(_point_trace(task))
        else:
            cluster = MicroFaaSCluster(
                worker_count=task.worker_count, seed=task.seed
            )
            if task.cap_watts is not None:
                cluster.set_power_cap(task.cap_watts)
            result = replay_trace(cluster, _point_trace(task))
        return EnergyStudyPoint(
            cap_watts=task.cap_watts,
            budget_scale=None,
            jobs_completed=result.jobs_completed,
            duration_s=result.duration_s,
            throughput_per_min=result.throughput_per_min,
            energy_joules=result.energy_joules,
            joules_per_function=result.joules_per_function,
            p99_latency_s=result.telemetry.percentile_latency_s(99.0),
            jobs_delayed=0,
            jobs_shed=0,
            tenant_joules=(),
            reconciliation_residual_j=None,
            idle_overhead_j=None,
            wasted_j=None,
        )
    # Budget point: tenanted + metered, always serial.
    cluster = _build_budgeted_cluster(task)
    result = replay_trace(cluster, _point_trace(task))
    ledger = cluster.orchestrator.ledger
    report = ledger.reconcile(end=result.duration_s)
    controller = cluster.orchestrator.budgets
    return EnergyStudyPoint(
        cap_watts=task.cap_watts,
        budget_scale=task.budget_scale,
        jobs_completed=result.jobs_completed,
        duration_s=result.duration_s,
        throughput_per_min=result.throughput_per_min,
        energy_joules=result.energy_joules,
        joules_per_function=result.joules_per_function,
        p99_latency_s=result.telemetry.percentile_latency_s(99.0),
        jobs_delayed=controller.jobs_delayed,
        jobs_shed=cluster.orchestrator.jobs_shed,
        tenant_joules=tuple(sorted(ledger.tenant_joules.items())),
        reconciliation_residual_j=report.residual_joules,
        idle_overhead_j=ledger.overhead_joules["idle"],
        wasted_j=ledger.overhead_joules["wasted"],
    )


def _trace_point(task: EnergyStudyTask, trace_path: str) -> None:
    """Re-run the capped+budgeted point inline with span recording."""
    cluster = _build_budgeted_cluster(task, trace=TraceConfig())
    replay_trace(cluster, _point_trace(task))
    write_trace_file(cluster.finished_traces(), trace_path)


def run(
    caps: Sequence[Optional[float]] = DEFAULT_CAPS,
    budget_scales: Sequence[float] = DEFAULT_BUDGET_SCALES,
    tenants: int = 3,
    worker_count: int = 8,
    trough_rate_per_s: float = 0.3,
    peak_rate_per_s: float = 1.5,
    period_s: float = 120.0,
    duration_s: float = 240.0,
    seed: int = 7,
    jobs: int = 1,
    cache: bool = True,
    cache_dir=None,
    trace_path: Optional[str] = None,
    shards: int = 1,
) -> EnergyStudyResult:
    """Sweep power caps (frontier) and tenant budgets over one trace.

    ``caps`` must include ``None`` — the uncapped baseline the frontier
    is measured against.  ``shards > 1`` runs each frontier point
    through the sharded engine (bit-identical; budget points stay
    serial).  With ``trace_path`` set, the largest-scale budget point
    is re-run inline with tracing and its span trees written there.
    """
    if None not in caps:
        raise ValueError("caps must include None (the uncapped baseline)")
    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    if worker_count < 1:
        raise ValueError("worker_count must be >= 1")
    if duration_s <= 0 or period_s <= 0:
        raise ValueError("trace durations must be positive")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    for scale in budget_scales:
        if scale <= 0:
            raise ValueError("budget scales must be positive")

    def make_task(cap, scale, point_shards):
        return EnergyStudyTask(
            cap_watts=cap,
            budget_scale=scale,
            tenants=tenants,
            trough_rate_per_s=trough_rate_per_s,
            peak_rate_per_s=peak_rate_per_s,
            period_s=period_s,
            duration_s=duration_s,
            worker_count=worker_count,
            seed=seed,
            shards=point_shards,
        )

    tasks = [
        make_task(cap, None, min(shards, worker_count)) for cap in caps
    ] + [
        make_task(BUDGETED_CAP_WATTS, scale, 1) for scale in budget_scales
    ]
    points = run_map(
        tasks, _run_point, jobs=jobs, cache=cache, cache_dir=cache_dir
    )
    if trace_path is not None and budget_scales:
        _trace_point(
            make_task(BUDGETED_CAP_WATTS, max(budget_scales), 1), trace_path
        )
    return EnergyStudyResult(points=points)


def render(result: EnergyStudyResult) -> str:
    def cap_label(cap: Optional[float]) -> str:
        return f"{cap:.1f}W" if cap is not None else "none"

    rows = []
    for entry in result.frontier():
        point = entry.point
        rows.append(
            (
                cap_label(point.cap_watts),
                "-",
                point.jobs_completed,
                f"{point.throughput_per_min:.0f}",
                f"{point.energy_joules:.0f}",
                f"{point.joules_per_function:.2f}",
                f"{point.p99_latency_s:.2f}",
                f"{entry.energy_saved_j:.0f}",
                f"{entry.p99_paid_s:.2f}",
                "-",
                "-",
            )
        )
    for point in result.budget_points():
        rows.append(
            (
                cap_label(point.cap_watts),
                f"{point.budget_scale:.1f}x",
                point.jobs_completed,
                f"{point.throughput_per_min:.0f}",
                f"{point.energy_joules:.0f}",
                f"{point.joules_per_function:.2f}",
                f"{point.p99_latency_s:.2f}",
                "-",
                "-",
                point.jobs_delayed,
                point.jobs_shed,
            )
        )
    table = format_table(
        [
            "cap",
            "budget",
            "jobs",
            "func/min",
            "J",
            "J/func",
            "p99 s",
            "J saved",
            "p99 paid",
            "delayed",
            "shed",
        ],
        rows,
        title="Energy study - power-cap frontier + tenant budgets",
    )
    frontier = result.frontier()
    deepest = frontier[-1]
    closing = (
        f"\ncap {cap_label(deepest.point.cap_watts)} saves "
        f"{deepest.energy_saved_j:.0f} J over the uncapped run and pays "
        f"{deepest.p99_paid_s:.2f} s of p99."
    )
    budgeted = result.budget_points()
    if budgeted:
        tightest = budgeted[-1]
        residual = tightest.reconciliation_residual_j
        closing += (
            f"\ntightest budget ({tightest.budget_scale:.1f}x) delayed "
            f"{tightest.jobs_delayed} submissions; ledger residual "
            f"{residual:.2e} J."
        )
    return table + closing


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
