"""Federation study: goodput and failover across regions under outages.

The paper's cluster is one site; the ROADMAP's north star is "heavy
traffic from millions of users" — which, at planet scale, means
*regions*: several MicroFaaS clusters composed behind a fault-tolerant
gateway (:mod:`repro.federation`).  This experiment sweeps user
populations (10⁵–10⁷, driven through the batched-arrival fast path) ×
region counts × region-outage rates and reports what an operator of a
federated deployment would ask:

- goodput (delivered func/min) and the zero-lost-jobs invariant,
- client-perceived p50/p99 latency by client geography,
- failover MTTR (outage detection → recovery, per region and mean),
- cross-region traffic (jobs served away from home, payload bytes),
- energy per function, per region and aggregate.

User populations map to arrival rates at :data:`PER_USER_RPS`
invocations per user-second (10⁶ users ≈ 10 func/s federation-wide);
regions are sized from the rate against the BeagleBone's sustained
per-worker service rate at :data:`TARGET_UTILIZATION`.  Every sweep
point is an independent, seeded task on the shared
:func:`~repro.experiments.runner.run_map` runner — bit-identical at any
``--jobs`` and cached per point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.report import format_table
from repro.experiments.runner import derive_seed, run_map
from repro.federation import (
    FederatedCluster,
    FederationResult,
    GatewayConfig,
    RegionChaosInjector,
    RegionSpec,
)
from repro.obs.export import write_trace_file
from repro.obs.trace import TraceConfig
from repro.reliability.chaos import ChaosPlan, RegionChaosProfile
from repro.sim.rng import RandomStreams
from repro.workloads.traces import poisson_trace

#: Mean invocation rate one user contributes (≈ 0.9 invocations per
#: user-day): 10⁵ users ≈ 1 func/s, 10⁷ users ≈ 100 func/s.
PER_USER_RPS = 1e-5

#: Sustained per-worker service rate through boot→execute→report (the
#: testbed's ~200 func/min across 10 boards, Sec. V).
WORKER_JOBS_PER_S = 1.0 / 3.0

#: Regions are sized so offered load lands at this fraction of
#: capacity — busy enough to be interesting, headroom enough that a
#: single-region outage is absorbable.
TARGET_UTILIZATION = 0.6

#: Arrival-count threshold above which a point switches to the
#: large-run fast path: columnar traces and streaming telemetry.
FAST_PATH_ARRIVALS = 10_000


@dataclass(frozen=True)
class FederationStudyTask:
    """Picklable spec for one (users × regions × outage-rate) point."""

    users: int
    region_count: int
    outage_rate_scale: float
    duration_s: float
    seed: int

    @property
    def rate_per_s(self) -> float:
        return self.users * PER_USER_RPS

    @property
    def workers_per_region(self) -> int:
        """Size each region for its share of the offered load."""
        total = self.rate_per_s / (WORKER_JOBS_PER_S * TARGET_UTILIZATION)
        return max(2, math.ceil(total / self.region_count))


@dataclass(frozen=True)
class RegionRow:
    """One region's share of one sweep point (CSV row shape)."""

    name: str
    workers: int
    jobs_in: int
    jobs_delivered: int
    energy_joules: float
    joules_per_function: float
    outages: int
    mean_recovery_s: Optional[float]
    cross_region_jobs: int
    cross_region_bytes: int


@dataclass(frozen=True)
class GeoLatencyRow:
    """Client-perceived latency for one client geography."""

    geo: str
    count: int
    mean_s: float
    p50_s: float
    p99_s: float


@dataclass(frozen=True)
class FederationStudyPoint:
    """One sweep point's measurements."""

    users: int
    region_count: int
    outage_rate_scale: float
    workers_per_region: int
    jobs_submitted: int
    jobs_delivered: int
    jobs_lost: int
    jobs_shed: int
    goodput_per_min: float
    reroutes: int
    hedges: int
    duplicates_suppressed: int
    ingress_drops: int
    outages: int
    mean_recovery_s: Optional[float]
    cross_region_jobs: int
    cross_region_bytes: int
    duration_s: float
    energy_joules: float
    regions: Tuple[RegionRow, ...]
    geo_latency: Tuple[GeoLatencyRow, ...]

    @property
    def joules_per_function(self) -> float:
        if self.jobs_delivered == 0:
            return float("nan")
        return self.energy_joules / self.jobs_delivered

    @property
    def worst_p99_s(self) -> float:
        """The slowest geography's p99 — the SLO the federation owes."""
        if not self.geo_latency:
            return 0.0
        return max(row.p99_s for row in self.geo_latency)

    @property
    def median_p50_s(self) -> float:
        if not self.geo_latency:
            return 0.0
        values = sorted(row.p50_s for row in self.geo_latency)
        return values[len(values) // 2]


@dataclass(frozen=True)
class FederationStudyResult:
    points: List[FederationStudyPoint]

    @property
    def total_jobs_lost(self) -> int:
        return sum(point.jobs_lost for point in self.points)


def _build_point(
    task: FederationStudyTask, trace: Optional[TraceConfig] = None
) -> Tuple[FederatedCluster, Optional[RegionChaosInjector]]:
    """A seeded federation with this point's chaos plan armed.

    Shared between the cached sweep workers and the inline traced
    re-run, so a traced point sees the exact same outage schedule.
    """
    specs = [
        RegionSpec(
            name=f"region-{index}",
            geo=f"region-{index}",
            worker_count=task.workers_per_region,
            seed=derive_seed(task.seed, f"region-{index}"),
        )
        for index in range(task.region_count)
    ]
    exact = task.users * PER_USER_RPS * task.duration_s < FAST_PATH_ARRIVALS
    fed = FederatedCluster(
        specs,
        config=GatewayConfig(hedge_after_s=30.0),
        telemetry_exact=exact,
        trace=trace,
    )
    injector: Optional[RegionChaosInjector] = None
    if task.outage_rate_scale > 0 and task.region_count > 1:
        profile = RegionChaosProfile(scale=task.outage_rate_scale)
        plan = ChaosPlan.sample_regions(
            profile,
            [spec.name for spec in specs],
            horizon_s=task.duration_s,
            streams=RandomStreams(derive_seed(task.seed, "region-chaos")),
        )
        injector = RegionChaosInjector(fed, plan.events, profile=profile)
        injector.start()
    return fed, injector


def _run_point_inline(
    task: FederationStudyTask, trace: Optional[TraceConfig] = None
) -> Tuple[FederatedCluster, FederationResult]:
    fed, _ = _build_point(task, trace=trace)
    streams = RandomStreams(derive_seed(task.seed, "arrivals"))
    arrivals = poisson_trace(
        task.rate_per_s,
        task.duration_s,
        streams=streams,
        columnar=task.rate_per_s * task.duration_s >= FAST_PATH_ARRIVALS,
    )
    # Client geographies: one uniform draw per arrival, batched so the
    # fast path stays fast and the draw count is arrival-count exact.
    geo_draws = streams.random_batch("client-geos", len(arrivals))
    geos = [
        f"region-{min(int(u * task.region_count), task.region_count - 1)}"
        for u in geo_draws
    ]
    return fed, fed.run_arrivals(arrivals, geos)


def _run_federation_point(task: FederationStudyTask) -> FederationStudyPoint:
    """Worker: one federated arrival replay under one outage rate."""
    _, result = _run_point_inline(task)
    if not result.reconciles():
        raise RuntimeError(
            f"federation accounting failed at users={task.users} "
            f"regions={task.region_count} scale={task.outage_rate_scale}: "
            f"{result.jobs_submitted} submitted, "
            f"{result.jobs_delivered} delivered, {result.jobs_shed} shed, "
            f"{result.jobs_lost} lost"
        )
    return FederationStudyPoint(
        users=task.users,
        region_count=task.region_count,
        outage_rate_scale=task.outage_rate_scale,
        workers_per_region=task.workers_per_region,
        jobs_submitted=result.jobs_submitted,
        jobs_delivered=result.jobs_delivered,
        jobs_lost=result.jobs_lost,
        jobs_shed=result.jobs_shed,
        goodput_per_min=result.goodput_per_min,
        reroutes=result.reroutes,
        hedges=result.hedges,
        duplicates_suppressed=result.duplicates_suppressed,
        ingress_drops=result.ingress_drops,
        outages=sum(report.outages for report in result.region_reports),
        mean_recovery_s=result.mean_recovery_s,
        cross_region_jobs=result.cross_region_jobs,
        cross_region_bytes=result.cross_region_bytes,
        duration_s=result.duration_s,
        energy_joules=result.energy_joules,
        regions=tuple(
            RegionRow(
                name=report.name,
                workers=report.worker_count,
                jobs_in=report.jobs_in,
                jobs_delivered=report.jobs_delivered,
                energy_joules=report.energy_joules,
                joules_per_function=report.joules_per_function,
                outages=report.outages,
                mean_recovery_s=report.mean_recovery_s,
                cross_region_jobs=report.cross_region_jobs,
                cross_region_bytes=report.cross_region_bytes,
            )
            for report in result.region_reports
        ),
        geo_latency=tuple(
            GeoLatencyRow(geo=geo, count=count, mean_s=mean, p50_s=p50, p99_s=p99)
            for geo, (count, mean, p50, p99) in result.geo_latency.items()
        ),
    )


def _trace_point(task: FederationStudyTask, trace_path: str) -> None:
    """Re-run one point inline with span recording and export it.

    The traced re-run is a fresh federation with the same seeds and the
    same outage schedule; the merged per-region traces (labels are
    region names) include the gateway's ``reroute``/``region_outage``
    annotations, so a failover is followable span by span.
    """
    fed, _ = _run_point_inline(task, trace=TraceConfig())
    write_trace_file(fed.finished_traces(), trace_path)


def run(
    user_counts: Sequence[int] = (100_000, 1_000_000),
    region_counts: Sequence[int] = (3,),
    outage_rate_scales: Sequence[float] = (0.0, 1.0),
    duration_s: float = 120.0,
    seed: int = 11,
    jobs: int = 1,
    cache: bool = True,
    cache_dir=None,
    trace_path: Optional[str] = None,
) -> FederationStudyResult:
    """Sweep users × regions × outage rates over independent runs.

    With ``trace_path`` set, the faultiest point at the smallest
    population is re-run inline with tracing enabled and its merged
    span trees written there (failovers are the spans worth reading).
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    tasks = [
        FederationStudyTask(users, regions, scale, duration_s, seed)
        for users in user_counts
        for regions in region_counts
        for scale in outage_rate_scales
    ]
    points = run_map(
        tasks, _run_federation_point, jobs=jobs, cache=cache,
        cache_dir=cache_dir,
    )
    if trace_path is not None:
        target = min(
            tasks,
            key=lambda t: (t.users, -t.outage_rate_scale, t.region_count),
        )
        _trace_point(target, trace_path)
    return FederationStudyResult(points=points)


def render(result: FederationStudyResult) -> str:
    rows = []
    for point in result.points:
        mttr = (
            f"{point.mean_recovery_s:.1f}"
            if point.mean_recovery_s is not None
            else "-"
        )
        rows.append(
            (
                f"{point.users:,}",
                point.region_count,
                f"{point.outage_rate_scale:g}",
                point.workers_per_region,
                f"{point.goodput_per_min:.0f}",
                point.jobs_lost,
                point.jobs_shed,
                f"{point.median_p50_s:.2f}",
                f"{point.worst_p99_s:.2f}",
                mttr,
                point.reroutes,
                point.cross_region_jobs,
                f"{point.joules_per_function:.2f}",
            )
        )
    table = format_table(
        [
            "users",
            "regions",
            "outages",
            "w/region",
            "goodput/min",
            "lost",
            "shed",
            "p50 s",
            "p99 s",
            "MTTR s",
            "reroutes",
            "x-region",
            "J/func",
        ],
        rows,
        title="Federation study - regions, failover, and the WAN",
    )
    closing = (
        f"\nall {sum(p.jobs_submitted for p in result.points)} jobs across "
        f"the sweep delivered exactly once ({result.total_jobs_lost} lost; "
        "shed jobs are counted refusals, not losses)."
        if result.total_jobs_lost == 0
        else f"\nWARNING: {result.total_jobs_lost} jobs lost across the sweep."
    )
    return table + closing


def main() -> None:  # pragma: no cover
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
