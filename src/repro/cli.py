"""Command-line interface: regenerate paper artifacts from the shell.

Usage::

    python -m repro list
    python -m repro fig1
    python -m repro table2
    python -m repro headline --invocations 60
    python -m repro all
"""

from __future__ import annotations

import argparse
import cProfile
import os
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    energy_study,
    fault_study,
    federation_study,
    fig1_boot,
    fig3_runtime,
    fig4_vmsweep,
    fig5_power,
    hardware_selection,
    headline,
    hybrid_study,
    megatrace,
    scale_study,
    sdk_study,
    table1_workloads,
    table2_tco,
)

#: artifact name -> (description, runner(invocations, jobs, cache, trace,
#: shards) -> text).  ``jobs``/``cache`` reach the experiments ported onto
#: :mod:`repro.experiments.runner`; ``trace`` is the ``--trace`` export
#: path and only reaches the artifacts in :data:`TRACEABLE`; ``shards``
#: is the ``--shards`` simulation split and only reaches
#: :data:`SHARDABLE` artifacts.
ARTIFACTS: Dict[str, tuple] = {
    "fig1": (
        "worker-OS boot-time trajectory (1.51 s ARM / 0.96 s x86)",
        lambda n, jobs, cache, trace, shards: fig1_boot.render(fig1_boot.run()),
    ),
    "table1": (
        "the 17-function workload suite, executed live",
        lambda n, jobs, cache, trace, shards: table1_workloads.render(
            table1_workloads.run(scale=0.05, jobs=jobs, cache=cache)
        ),
    ),
    "fig3": (
        "per-function Working/Overhead split on both clusters",
        lambda n, jobs, cache, trace, shards: fig3_runtime.render(
            fig3_runtime.run(invocations_per_function=n)
        ),
    ),
    "fig4": (
        "energy efficiency & throughput vs VM count",
        lambda n, jobs, cache, trace, shards: fig4_vmsweep.render(
            fig4_vmsweep.run(
                invocations_per_function=max(4, n // 3),
                jobs=jobs,
                cache=cache,
            )
        ),
    ),
    "fig5": (
        "power vs active workers (energy proportionality)",
        lambda n, jobs, cache, trace, shards: fig5_power.render(
            fig5_power.run(invocations=max(3, n // 4))
        ),
    ),
    "table2": (
        "5-year TCO comparison (exact to the dollar)",
        lambda n, jobs, cache, trace, shards: table2_tco.render(table2_tco.run()),
    ),
    "headline": (
        "throughput match + the 5.6x energy headline",
        lambda n, jobs, cache, trace, shards: headline.render(
            headline.run(
                invocations_per_function=n,
                jobs=jobs,
                cache=cache,
                trace_path=trace,
            )
        ),
    ),
    "fault-study": (
        "goodput/energy under escalating chaos; recovery stack (extension)",
        lambda n, jobs, cache, trace, shards: fault_study.render(
            fault_study.run(
                invocations_per_function=max(2, n // 8),
                jobs=jobs,
                cache=cache,
                trace_path=trace,
            )
        ),
    ),
    "federation-study": (
        "multi-region federation: failover, WAN, per-geo latency (extension)",
        lambda n, jobs, cache, trace, shards: federation_study.render(
            federation_study.run(
                duration_s=max(30.0, 4.0 * n),
                jobs=jobs,
                cache=cache,
                trace_path=trace,
            )
        ),
    ),
    "hybrid-study": (
        "SBC:VM mix sweep on the heterogeneous cluster (extension)",
        lambda n, jobs, cache, trace, shards: hybrid_study.render(
            hybrid_study.run(
                invocations_per_function=max(2, n // 8),
                jobs=jobs,
                cache=cache,
                trace_path=trace,
                shards=shards,
            )
        ),
    ),
    "sdk-study": (
        "client SDK map_reduce sweep: users x fan-out x backend (extension)",
        lambda n, jobs, cache, trace, shards: sdk_study.render(
            sdk_study.run(
                fanouts=tuple(sorted({8, max(8, n)})),
                jobs=jobs,
                cache=cache,
                trace_path=trace,
            )
        ),
    ),
    "energy-study": (
        "power-cap frontier + per-tenant energy budgets (extension)",
        lambda n, jobs, cache, trace, shards: energy_study.render(
            energy_study.run(
                duration_s=max(60.0, 8.0 * n),
                jobs=jobs,
                cache=cache,
                trace_path=trace,
                shards=shards,
            )
        ),
    ),
    "hardware": (
        "candidate worker boards compared (extension)",
        lambda n, jobs, cache, trace, shards: hardware_selection.render(
            hardware_selection.run(invocations_per_function=n)
        ),
    ),
    "scale": (
        "the prototype architecture at fleet scale (extension)",
        lambda n, jobs, cache, trace, shards: scale_study.render(
            scale_study.run(
                worker_counts=(10, 100, 400, 800),
                jobs_per_worker=max(2, n // 8),
                jobs=jobs,
                cache=cache,
            )
        ),
    ),
    "scale-frontier": (
        "the 2,000-5,000-worker streaming-telemetry sweep (extension)",
        lambda n, jobs, cache, trace, shards: scale_study.render(
            scale_study.run_frontier(
                jobs_per_worker=max(2, n // 10),
                jobs=jobs,
                cache=cache,
                shards=shards,
            )
        ),
    ),
    "megatrace": (
        "fast-path trace replay, 10,000 x --invocations arrivals (extension)",
        lambda n, jobs, cache, trace, shards, streaming: megatrace.render(
            megatrace.run(
                invocations=n * 10_000,
                trace_path=trace,
                shards=shards,
                streaming=streaming,
            )
        ),
    ),
}

#: Artifacts that honour ``--trace`` (the rest would silently ignore it).
TRACEABLE = frozenset(
    {"headline", "fault-study", "federation-study", "hybrid-study",
     "megatrace", "sdk-study", "energy-study"}
)

#: Artifacts that honour ``--shards`` (multi-process sharded simulation;
#: see :mod:`repro.shard`).
SHARDABLE = frozenset(
    {"scale-frontier", "megatrace", "hybrid-study", "energy-study"}
)

#: Artifacts that honour ``--streaming`` (the bounded-RSS replay fast
#: path: chunked trace generation + autocompacting power traces).
STREAMABLE = frozenset({"megatrace"})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MicroFaaS (DATE 2022) reproduction harness",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["all", "list"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--invocations",
        type=int,
        default=30,
        help="invocations per function for simulation-backed artifacts",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep-shaped artifacts "
        "(0 = one per CPU core)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every point instead of reusing cached results",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write per-invocation span trees to PATH (Chrome trace-event "
        "JSON; JSONL if PATH ends in .jsonl) — headline, fault-study and "
        "megatrace only",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split each simulation across N shard processes "
        "(scale-frontier, megatrace and hybrid-study only)",
    )
    parser.add_argument(
        "--streaming",
        choices=["auto", "on", "off"],
        default="auto",
        help="bounded-RSS replay fast path: chunked arrival generation + "
        "autocompacting power traces (megatrace only; auto = on past "
        f"{megatrace.STREAMING_THRESHOLD:,} invocations)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each artifact under cProfile and write "
        "profile_<artifact>.pstats into --export-dir",
    )
    parser.add_argument(
        "--export-dir",
        default="artifacts",
        help="directory for CSV exports and --profile pstats output",
    )
    return parser


def _run_artifact(name: str, args, jobs: Optional[int]) -> int:
    """Run one artifact, optionally under cProfile."""
    runner = ARTIFACTS[name][1]
    trace = args.trace if name in TRACEABLE else None
    shards = args.shards if name in SHARDABLE else 1
    # Streamable artifacts take one extra argument; the rest keep the
    # five-argument runner signature.
    extra = ()
    if name in STREAMABLE:
        extra = ({"auto": None, "on": True, "off": False}[args.streaming],)
    if not args.profile:
        print(
            runner(args.invocations, jobs, not args.no_cache, trace, shards, *extra)
        )
        print()
        if trace is not None:
            print(f"trace written to {trace}", file=sys.stderr)
        return 0
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        text = runner(
            args.invocations, jobs, not args.no_cache, trace, shards, *extra
        )
    finally:
        profiler.disable()
    print(text)
    print()
    os.makedirs(args.export_dir, exist_ok=True)
    stats_path = os.path.join(
        args.export_dir, f"profile_{name.replace('-', '_')}.pstats"
    )
    profiler.dump_stats(stats_path)
    print(f"profile written to {stats_path}", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.invocations < 1:
        print("error: --invocations must be >= 1", file=sys.stderr)
        return 2
    if args.jobs < 0:
        print("error: --jobs must be >= 0", file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs > 0 else None  # None -> cpu_count
    if args.trace is not None and args.artifact not in TRACEABLE:
        print(
            "error: --trace applies to "
            + "/".join(sorted(TRACEABLE))
            + " only",
            file=sys.stderr,
        )
        return 2
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards > 1 and args.artifact not in SHARDABLE:
        print(
            "error: --shards applies to "
            + "/".join(sorted(SHARDABLE))
            + " only",
            file=sys.stderr,
        )
        return 2
    if args.artifact == "list":
        width = max(len(name) for name in ARTIFACTS)
        for name in sorted(ARTIFACTS):
            print(f"{name:{width}s} {ARTIFACTS[name][0]}")
        return 0
    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for name in names:
        _run_artifact(name, args, jobs)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
