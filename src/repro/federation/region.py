"""Regions: named clusters inside a federation.

A :class:`RegionSpec` is the picklable description of one region — its
name, home client geo, worker composition, and seed.  The federation
builds each spec into a full :class:`~repro.cluster.harness.ClusterHarness`
(an SBC cluster, or a hybrid SBC+VM cluster when ``vm_count`` is set)
sharing the federation's single simulation environment, then wraps it in
a :class:`Region` carrying the gateway-facing state: reachability,
brownout window, deferred-delivery buffer, and the per-region outage
log.

Every region keeps its own ``RandomStreams(seed)`` — the gateway never
draws from a region's streams — so a region's internal simulation is
bit-identical to the same cluster built standalone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.cluster.harness import ClusterHarness
from repro.cluster.hybrid import HybridCluster
from repro.cluster.microfaas import MicroFaaSCluster
from repro.core.policies import RecoveryPolicy
from repro.core.scheduler import AssignmentPolicy
from repro.obs.trace import TraceConfig
from repro.sim.kernel import Environment


@dataclass(frozen=True)
class RegionSpec:
    """Picklable description of one region."""

    name: str
    #: Client geography the region serves natively (ingress-latency
    #: tables and locality routing key on geo names).
    geo: str
    worker_count: int
    seed: int
    #: Optional microVM workers — a non-zero count builds the region as
    #: a hybrid SBC+VM cluster.
    vm_count: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region name cannot be empty")
        if self.worker_count < 1 and self.vm_count < 1:
            raise ValueError(f"region {self.name!r} needs at least one worker")


def build_region_cluster(
    spec: RegionSpec,
    env: Environment,
    policy_factory: Optional[Callable[[], AssignmentPolicy]] = None,
    recovery: Optional[RecoveryPolicy] = None,
    telemetry_exact: bool = True,
    trace: Optional[TraceConfig] = None,
) -> ClusterHarness:
    """Build one region's cluster on the shared environment.

    Constructor arguments mirror a standalone build exactly — same
    policy default (``None`` → the harness's seeded RandomSampling),
    same recovery default, same seed — so a one-region federation's
    cluster is indistinguishable from a bare one.
    """
    policy = policy_factory() if policy_factory is not None else None
    if spec.vm_count > 0:
        cluster: ClusterHarness = HybridCluster(
            sbc_count=spec.worker_count,
            vm_count=spec.vm_count,
            seed=spec.seed,
            policy=policy,
            recovery=recovery,
            telemetry_exact=telemetry_exact,
            trace=trace,
            env=env,
        )
    else:
        cluster = MicroFaaSCluster(
            worker_count=spec.worker_count,
            seed=spec.seed,
            policy=policy,
            recovery=recovery,
            telemetry_exact=telemetry_exact,
            trace=trace,
            env=env,
        )
    if cluster.tracer is not None:
        # Distinct labels keep merged federation traces unambiguous
        # (every region numbers its job ids from 0).
        cluster.tracer.label = spec.name
    return cluster


class Region:
    """One built region plus its gateway-facing state."""

    def __init__(self, index: int, spec: RegionSpec, cluster: ClusterHarness):
        self.index = index
        self.spec = spec
        self.cluster = cluster
        #: Gateway-visible reachability: a region blackout makes the
        #: region unreachable (its cluster keeps simulating — results
        #: are buffered and delivered on recovery).
        self.reachable = True
        #: Ingress brownout window: while ``env.now`` is inside it,
        #: ingress sends suffer elevated latency and deterministic loss
        #: at ``brownout_loss``.
        self.brownout_until = 0.0
        self.brownout_loss = 0.0
        #: Completions that arrived while unreachable, held for
        #: deferred delivery: ``(job, record)`` pairs.
        self.buffered: List[Tuple[object, object]] = []
        #: Consecutive missed heartbeats (gateway bookkeeping).
        self.heartbeat_misses = 0
        #: Whether the gateway has declared this region down.
        self.outage_declared = False
        #: Completed outages: ``(detect_time, recover_time)``.
        self.outage_log: List[Tuple[float, float]] = []
        self._outage_detect_time: Optional[float] = None
        #: Jobs this region delivered to the gateway / jobs submitted
        #: into it by the gateway.
        self.jobs_in = 0
        self.jobs_delivered = 0
        #: Cross-region traffic billed to this region: payload bytes of
        #: jobs served here whose home region was elsewhere.
        self.cross_region_bytes = 0
        self.cross_region_jobs = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def geo(self) -> str:
        return self.spec.geo

    @property
    def worker_count(self) -> int:
        return len(self.cluster.workers)

    def load(self) -> float:
        """Outstanding jobs per worker (the router's spill signal)."""
        return self.cluster.orchestrator.pending / max(1, self.worker_count)

    def in_brownout(self, now: float) -> bool:
        return now < self.brownout_until

    def declare_outage(self, now: float) -> None:
        if not self.outage_declared:
            self.outage_declared = True
            self._outage_detect_time = now

    def clear_outage(self, now: float) -> None:
        if self.outage_declared:
            self.outage_declared = False
            self.outage_log.append((self._outage_detect_time, now))
            self._outage_detect_time = None
        self.heartbeat_misses = 0

    @property
    def mean_outage_recovery_s(self) -> Optional[float]:
        """Mean time from outage detection to recovery (per-region MTTR)."""
        if not self.outage_log:
            return None
        return sum(recover - detect for detect, recover in self.outage_log) / len(
            self.outage_log
        )


__all__ = ["Region", "RegionSpec", "build_region_cluster"]
