"""Region-scoped chaos: executing federation faults from a ChaosPlan.

:class:`~repro.reliability.chaos.ChaosPlan.sample_regions` produces
region-scoped :class:`~repro.reliability.chaos.ChaosEvent` schedules
(blackouts, WAN partitions, ingress brownouts) with the same
renewal-sampling determinism as worker/fabric plans.  The single-cluster
:class:`~repro.reliability.chaos.ChaosEngine` counts those kinds as
unsupported; this module's :class:`RegionChaosInjector` is their
executor, driving a :class:`~repro.federation.gateway.FederatedCluster`:

- **region blackout** — the region's WAN uplink dies: the gateway sees
  it unreachable (heartbeats miss, outage declared, traffic re-routed)
  while the region's cluster keeps simulating and buffers completions
  for deferred delivery.  Mirroring the worker engine's never-kill-the-
  last-worker guard, a blackout that would leave zero reachable regions
  is skipped (and counted).
- **WAN partition** — one inter-region link drops for the window;
  cross-region fetches entering during it wait it out
  (:meth:`~repro.net.link.Link.fault_delay_s` semantics, as on the
  intra-cluster fabric).
- **ingress brownout** — the region's ingress link degrades by the
  event's magnitude and ingress sends suffer deterministic loss at the
  profile's ``brownout_loss``, exercising the gateway's
  retry-with-backoff and escape-to-another-region paths.
"""

from __future__ import annotations

from typing import List, Optional

from repro.federation.gateway import FederatedCluster
from repro.federation.region import Region
from repro.reliability.chaos import ChaosEvent, ChaosKind, RegionChaosProfile


class RegionChaosInjector:
    """Executes region-scoped chaos events against a federation."""

    def __init__(
        self,
        fed: FederatedCluster,
        events: List[ChaosEvent],
        profile: Optional[RegionChaosProfile] = None,
    ):
        self.fed = fed
        self.events = sorted(
            events, key=lambda e: (e.time_s, e.kind.value, str(e.target))
        )
        self.profile = profile if profile is not None else RegionChaosProfile()
        self.injected = 0
        #: Blackouts skipped to keep at least one region reachable, plus
        #: events naming unknown regions/links.
        self.skipped = 0
        self._started = False

    def start(self) -> None:
        """Schedule the injector process (idempotent)."""
        if self._started:
            return
        self._started = True
        self.fed.env.process(self._run(), name="region-chaos")

    def _region(self, name: str) -> Optional[Region]:
        for region in self.fed.regions:
            if region.name == name:
                return region
        return None

    def _run(self):
        env = self.fed.env
        for event in self.events:
            delay = event.time_s - env.now
            if delay > 0:
                yield env.timeout(delay)
            self._inject(event)

    def _inject(self, event: ChaosEvent) -> None:
        env = self.fed.env
        if event.kind is ChaosKind.REGION_BLACKOUT:
            region = self._region(event.target)
            if region is None:
                self.skipped += 1
                return
            reachable = [r for r in self.fed.regions if r.reachable]
            if len(reachable) <= 1 and region.reachable:
                # Never black out the last reachable region: a fully
                # dark federation has no failover story to measure.
                self.skipped += 1
                return
            self.injected += 1
            env.process(
                self._blackout(region, event.duration_s),
                name=f"blackout-{region.name}",
            )
        elif event.kind is ChaosKind.WAN_PARTITION:
            try:
                link = self.fed.wan.pair_link(*event.target.split("--", 1))
            except (KeyError, TypeError, ValueError):
                self.skipped += 1
                return
            self.injected += 1
            link.drop_until(env.now + event.duration_s)
        elif event.kind is ChaosKind.INGRESS_BROWNOUT:
            region = self._region(event.target)
            if region is None:
                self.skipped += 1
                return
            self.injected += 1
            env.process(
                self._brownout(region, event.duration_s, event.magnitude),
                name=f"brownout-{region.name}",
            )
        else:
            self.skipped += 1

    def _blackout(self, region: Region, duration_s: float):
        region.reachable = False
        yield self.fed.env.timeout(duration_s)
        region.reachable = True
        # Delivery of buffered results and outage clearing happen on the
        # gateway's next heartbeat — recovery detection latency is part
        # of the measured MTTR, exactly like detection latency was.

    def _brownout(self, region: Region, duration_s: float, extra_latency_s: float):
        env = self.fed.env
        until = env.now + duration_s
        region.brownout_until = max(region.brownout_until, until)
        region.brownout_loss = self.profile.brownout_loss
        link = self.fed.wan.ingress_link(region.name)
        link.degrade(max(link.extra_latency_s, extra_latency_s))
        yield env.timeout(duration_s)
        if env.now >= region.brownout_until:
            # Only restore if no later brownout extended the window.
            region.brownout_loss = 0.0
            link.restore()


__all__ = ["RegionChaosInjector"]
