"""Request routing across regions.

The :class:`FederationRouter` is the gateway's placement brain: given a
client geo, it picks a region through a pluggable
:class:`RoutingPolicy`, consulting health state the gateway maintains —
per-region circuit breakers (a
:class:`~repro.core.policies.WorkerHealthTracker` keyed by region
index, reusing the worker-breaker semantics unchanged) and declared
outages from heartbeat monitoring.

Policies see only *candidate* regions (healthy, not excluded); like the
orchestrator's scheduler the router never starves: constraints fall
away one at a time (breaker quarantine first, then the exclusion
preference, then declared outages) until a candidate set survives.

All three shipped policies are deterministic and draw no random
numbers, so routing never perturbs any region's RNG streams:

- :class:`LatencyAwarePolicy` — nearest region by configured ingress
  latency (brownout degradation included, so a browning-out region
  loses its edge);
- :class:`LocalityPolicy` — the region natively serving the client's
  geo (data affinity), falling back to nearest;
- :class:`LoadSpillPolicy` — locality first, spilling to the least
  loaded region when the home region's backlog crosses a threshold
  and somewhere else is strictly shallower (the same pressure-gate
  shape as the hybrid cluster's energy-aware spill).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Set

from repro.core.policies import WorkerHealthTracker
from repro.federation.region import Region
from repro.net.wan import WanFabric


class RoutingPolicy(ABC):
    """Picks one region out of a healthy candidate list."""

    name: str = "abstract"

    @abstractmethod
    def select(
        self,
        geo: str,
        candidates: Sequence[Region],
        wan: WanFabric,
        now: float,
    ) -> int:
        """Index into ``candidates`` of the chosen region."""


def _ingress_cost_s(geo: str, region: Region, wan: WanFabric, now: float) -> float:
    """Deterministic routing cost: base latency + brownout degradation.

    Uses the configured base (not the jittered draw) so route decisions
    never consume RNG; the ingress link's ``extra_latency_s`` is
    included so degraded regions look as slow as they are.
    """
    try:
        base = wan.ingress_spec(geo, region.name).latency_s
    except KeyError:
        return float("inf")
    return base + wan.ingress_link(region.name).extra_latency_s


class LatencyAwarePolicy(RoutingPolicy):
    """Nearest region by ingress latency (ties break on region index)."""

    name = "latency-aware"

    def select(self, geo, candidates, wan, now):
        best = 0
        best_cost = _ingress_cost_s(geo, candidates[0], wan, now)
        for index in range(1, len(candidates)):
            cost = _ingress_cost_s(geo, candidates[index], wan, now)
            if cost < best_cost:
                best, best_cost = index, cost
        return best


class LocalityPolicy(RoutingPolicy):
    """Data affinity: the region natively serving the client's geo.

    Keeps a geo's working set in one region (no cross-region input
    fetch).  When the home region is not a candidate, falls back to
    nearest-by-latency — the job then pays the WAN fetch from home.
    """

    name = "locality"

    def __init__(self):
        self._fallback = LatencyAwarePolicy()

    def select(self, geo, candidates, wan, now):
        for index, region in enumerate(candidates):
            if region.geo == geo:
                return index
        return self._fallback.select(geo, candidates, wan, now)


class LoadSpillPolicy(RoutingPolicy):
    """Locality with pressure-gated spill to the shallowest region.

    The home region keeps the job unless its backlog reaches
    ``spill_threshold`` outstanding jobs per worker AND some other
    region is strictly shallower — both conditions, so idle federations
    never spill and a uniformly overloaded one doesn't shuffle load
    around for nothing.
    """

    name = "load-spill"

    def __init__(self, spill_threshold: float = 3.0):
        if spill_threshold <= 0:
            raise ValueError("spill threshold must be positive")
        self.spill_threshold = spill_threshold
        self._locality = LocalityPolicy()

    def select(self, geo, candidates, wan, now):
        home = self._locality.select(geo, candidates, wan, now)
        home_load = candidates[home].load()
        if home_load < self.spill_threshold:
            return home
        best, best_load = home, home_load
        for index, region in enumerate(candidates):
            load = region.load()
            if load < best_load:
                best, best_load = index, load
        return best


class CarbonAwareRoutingPolicy(RoutingPolicy):
    """Shift load to cheap/green regions under a latency constraint.

    Each region carries a :class:`~repro.energy.controlplane.
    CarbonSignal` (carbon intensity or spot price).  The policy first
    finds the nearest candidate by ingress latency, keeps only regions
    within ``max_extra_latency_s`` of that floor (the latency budget),
    and among those picks the cheapest signal at ``now`` — ties break
    on candidate index.  A region with no configured signal costs
    ``default_cost``, so partial deployments keep routing sensibly.

    Signals are pre-sampled at construction (see
    :meth:`CarbonSignal.from_stream`), so routing reads them without
    drawing RNG — region streams stay unperturbed.
    """

    name = "carbon-aware"

    def __init__(
        self,
        signals=None,
        max_extra_latency_s: float = 0.05,
        default_cost: float = float("inf"),
    ):
        if max_extra_latency_s < 0:
            raise ValueError("latency budget must be non-negative")
        #: region name -> CarbonSignal
        self.signals = dict(signals) if signals else {}
        self.max_extra_latency_s = max_extra_latency_s
        self.default_cost = default_cost

    def select(self, geo, candidates, wan, now):
        costs = [
            _ingress_cost_s(geo, region, wan, now) for region in candidates
        ]
        floor = min(costs)
        best = None
        best_price = None
        for index, region in enumerate(candidates):
            if costs[index] > floor + self.max_extra_latency_s:
                continue
            signal = self.signals.get(region.name)
            price = (
                signal.cost_at(now) if signal is not None
                else self.default_cost
            )
            if best is None or price < best_price - 1e-12:
                best, best_price = index, price
        # floor came from the candidate list, so at least the nearest
        # region always survives the latency gate.
        return best


class FederationRouter:
    """Health-checked routing over a federation's regions."""

    def __init__(
        self,
        regions: Sequence[Region],
        wan: WanFabric,
        policy: Optional[RoutingPolicy] = None,
        breaker: Optional[WorkerHealthTracker] = None,
    ):
        if not regions:
            raise ValueError("need at least one region")
        self.regions = list(regions)
        self.wan = wan
        self.policy = policy if policy is not None else LatencyAwarePolicy()
        #: Per-region circuit breaker, keyed by region index.  Heartbeat
        #: misses and ingress failures feed it; quarantined regions
        #: leave the candidate set until a half-open probe succeeds.
        self.breaker = (
            breaker
            if breaker is not None
            else WorkerHealthTracker(failure_threshold=2, quarantine_s=2.0)
        )

    def candidate_regions(
        self, now: float, exclude: Optional[Set[int]] = None
    ) -> List[Region]:
        """Routable regions, falling back one constraint at a time."""
        exclude = exclude if exclude is not None else set()
        up = [r for r in self.regions if not r.outage_declared]
        candidates = [
            r
            for r in up
            if r.index not in exclude
            and self.breaker.is_available(r.index, now)
        ]
        if candidates:
            return candidates
        candidates = [r for r in up if r.index not in exclude]
        if candidates:
            return candidates
        if up:
            return up
        # Every region is declared down: route anyway (the job will be
        # buffered and delivered on recovery) rather than dropping it.
        return [r for r in self.regions if r.index not in exclude] or list(
            self.regions
        )

    def route(
        self, geo: str, now: float, exclude: Optional[Set[int]] = None
    ) -> Region:
        """Pick the region one invocation from ``geo`` should run in."""
        candidates = self.candidate_regions(now, exclude)
        index = self.policy.select(geo, candidates, self.wan, now)
        if not 0 <= index < len(candidates):
            raise RuntimeError(
                f"routing policy {self.policy.name!r} chose invalid "
                f"candidate {index}"
            )
        return candidates[index]


__all__ = [
    "CarbonAwareRoutingPolicy",
    "FederationRouter",
    "LatencyAwarePolicy",
    "LoadSpillPolicy",
    "LocalityPolicy",
    "RoutingPolicy",
]
