"""Federation: many region clusters behind a fault-tolerant gateway.

The paper's MicroFaaS clusters are single-site; this package composes
them into named regions connected by a WAN fabric
(:mod:`repro.net.wan`) behind a gateway
(:class:`~repro.federation.gateway.FederatedCluster`) that routes,
retries, hedges, sheds, and fails over — delivering every accepted job
exactly once even under a full single-region outage.
"""

from repro.federation.chaos import RegionChaosInjector
from repro.federation.gateway import (
    FederatedCluster,
    FederationResult,
    FedJob,
    GatewayConfig,
    RegionReport,
)
from repro.federation.region import Region, RegionSpec, build_region_cluster
from repro.federation.router import (
    CarbonAwareRoutingPolicy,
    FederationRouter,
    LatencyAwarePolicy,
    LoadSpillPolicy,
    LocalityPolicy,
    RoutingPolicy,
)

__all__ = [
    "CarbonAwareRoutingPolicy",
    "FedJob",
    "FederatedCluster",
    "FederationResult",
    "FederationRouter",
    "GatewayConfig",
    "LatencyAwarePolicy",
    "LoadSpillPolicy",
    "LocalityPolicy",
    "Region",
    "RegionChaosInjector",
    "RegionReport",
    "RegionSpec",
    "RoutingPolicy",
    "build_region_cluster",
]
