"""The federation gateway: many clusters behind one front door.

A :class:`FederatedCluster` composes region clusters (each a full
:class:`~repro.cluster.harness.ClusterHarness`) on **one** shared
simulation environment, behind a fault-tolerant gateway.  Clients
submit *federated jobs* tagged with a client geo and priority; the
gateway routes each one through a
:class:`~repro.federation.router.FederationRouter`, pays the WAN
ingress latency from :class:`~repro.net.wan.WanFabric`, and delivers
exactly the first result per federated job back to the client.

Fault tolerance, layer by layer:

- **Heartbeats + circuit breakers.**  A per-region heartbeat process
  detects unreachable regions; after ``heartbeat_misses`` consecutive
  misses the gateway declares an outage (the failover-MTTR clock starts
  here) and the per-region breaker — a
  :class:`~repro.core.policies.WorkerHealthTracker` keyed by region
  index — opens.  Recovery closes the breaker and stops the MTTR clock.
- **Re-routing.**  Declaring an outage re-routes every undelivered
  federated job stranded in the dead region to a healthy one.  The
  original attempt keeps running inside the unreachable region; its
  result is buffered and suppressed as a duplicate on recovery — the
  cross-region analogue of the orchestrator's at-least-once +
  duplicate-suppression contract.  Zero jobs are lost under any
  single-region outage.
- **Retry with backoff.**  Ingress sends during a brownout suffer
  deterministic loss; dropped sends retry with exponential backoff and
  hash-derived jitter (:func:`~repro.sim.rng.derive_seed`, never a
  shared RNG), escaping to another region when the budget runs out.
- **Hedged re-routing.**  A federated job undelivered past
  ``hedge_after_s`` gets one duplicate in a secondary region.
- **Graceful degradation.**  With shedding enabled, lowest-priority
  jobs are shed (counted, never silently dropped) while federation-wide
  backlog exceeds the configured threshold.

Determinism: the gateway draws no random numbers (routing, shedding,
and retry jitter are all deterministic; WAN jitter draws only happen on
fabrics configured with ``jitter > 0``), and region clusters keep their
own seeded streams — so a zero-fault federation over one zero-latency
region is bit-identical to the bare cluster run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.backoff import backoff_delay_s
from repro.core.policies import RecoveryPolicy, WorkerHealthTracker
from repro.core.telemetry import QuantileSketch, RunningStat, TelemetryCollector
from repro.federation.region import Region, RegionSpec, build_region_cluster
from repro.federation.router import FederationRouter, RoutingPolicy
from repro.net.wan import WanFabric
from repro.obs import trace as obs
from repro.obs.trace import TraceConfig, merge_traces
from repro.sim.kernel import Environment, Event
from repro.sim.rng import derive_seed
from repro.workloads.base import ALL_FUNCTION_NAMES
from repro.workloads.profiles import profile_for


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway fault-tolerance knobs (all times in simulated seconds)."""

    heartbeat_interval_s: float = 0.5
    #: Consecutive missed heartbeats before an outage is declared.
    heartbeat_misses: int = 2
    #: Hedge a federated job undelivered this long to a second region
    #: (``None`` disables federation-level hedging).
    hedge_after_s: Optional[float] = 12.0
    supervisor_tick_s: float = 0.5
    #: Ingress retry budget during brownouts, with exponential backoff.
    ingress_max_attempts: int = 4
    ingress_backoff_s: float = 0.2
    ingress_backoff_factor: float = 2.0
    ingress_backoff_jitter: float = 0.2
    #: Per-region circuit breaker (WorkerHealthTracker semantics).
    breaker_threshold: int = 2
    breaker_quarantine_s: float = 2.0
    #: Shed jobs of priority <= ``shed_max_priority`` while outstanding
    #: jobs per worker (across up regions) exceed this threshold
    #: (``None`` disables shedding).
    shed_load_threshold: Optional[float] = None
    shed_max_priority: int = 0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.heartbeat_misses < 1:
            raise ValueError("need at least one heartbeat miss")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ValueError("hedge threshold must be positive")
        if self.supervisor_tick_s <= 0:
            raise ValueError("supervisor tick must be positive")
        if self.ingress_max_attempts < 1:
            raise ValueError("need at least one ingress attempt")
        if self.ingress_backoff_s < 0:
            raise ValueError("backoff cannot be negative")
        if self.ingress_backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.shed_load_threshold is not None and self.shed_load_threshold <= 0:
            raise ValueError("shed threshold must be positive")


class FedJob:
    """One federated invocation, across every regional attempt."""

    __slots__ = (
        "fed_id", "function", "geo", "priority", "t_submit",
        "delivered", "shed", "t_delivered", "latency_s",
        "attempts", "hedged", "served_by", "ingress_attempts",
    )

    def __init__(self, fed_id: int, function: str, geo: str, priority: int,
                 t_submit: float):
        self.fed_id = fed_id
        self.function = function
        self.geo = geo
        self.priority = priority
        self.t_submit = t_submit
        self.delivered = False
        self.shed = False
        self.t_delivered: Optional[float] = None
        self.latency_s: Optional[float] = None
        #: Regional attempts: ``(region index, region-local job id)``.
        self.attempts: List[Tuple[int, int]] = []
        self.hedged = False
        self.served_by: Optional[int] = None
        #: Ingress sends tried so far (brownout drops burn attempts).
        self.ingress_attempts = 0

    @property
    def resolved(self) -> bool:
        return self.delivered or self.shed


class FederatedCluster:
    """Named regions behind one fault-tolerant gateway."""

    def __init__(
        self,
        specs: Sequence[RegionSpec],
        wan: Optional[WanFabric] = None,
        routing_policy: Optional[RoutingPolicy] = None,
        config: GatewayConfig = GatewayConfig(),
        recovery: Optional[RecoveryPolicy] = None,
        policy_factory=None,
        telemetry_exact: bool = True,
        trace: Optional[TraceConfig] = None,
    ):
        if not specs:
            raise ValueError("need at least one region")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("region names must be unique")
        self.config = config
        self.telemetry_exact = telemetry_exact
        self.env = Environment()
        if wan is None:
            wan = WanFabric.mesh(tuple(names))
            for spec in specs:
                if spec.geo != spec.name:
                    for region_name in names:
                        wan.set_ingress(
                            spec.geo,
                            region_name,
                            wan.ingress_spec(spec.name, region_name),
                        )
        self.wan = wan
        self.regions: List[Region] = []
        for index, spec in enumerate(specs):
            cluster = build_region_cluster(
                spec,
                self.env,
                policy_factory=policy_factory,
                recovery=recovery,
                telemetry_exact=telemetry_exact,
                trace=trace,
            )
            region = Region(index, spec, cluster)
            cluster.orchestrator.on_complete = (
                lambda job, record, _region=region: self._on_region_complete(
                    _region, job, record
                )
            )
            self.regions.append(region)
        self._region_by_geo: Dict[str, Region] = {}
        for region in self.regions:
            self._region_by_geo.setdefault(region.geo, region)
        self.router = FederationRouter(
            self.regions,
            wan,
            policy=routing_policy,
            breaker=WorkerHealthTracker(
                failure_threshold=config.breaker_threshold,
                quarantine_s=config.breaker_quarantine_s,
            ),
        )

        #: Federated-job bookkeeping.
        self.fed_jobs: Dict[int, FedJob] = {}
        self._undelivered: Dict[int, FedJob] = {}
        self._job_map: Dict[Tuple[int, int], int] = {}
        self._next_fed_id = 0
        self._submitted = 0
        self._outstanding = 0
        self._drain_events: List[Event] = []
        #: Gateway counters.
        self.delivered = 0
        self.shed_jobs = 0
        self.reroutes = 0
        self.hedges = 0
        self.duplicates_suppressed = 0
        self.ingress_drops = 0
        self.ingress_retries = 0
        #: Client-perceived latency per geo: (RunningStat, sketch).
        self._geo_stats: Dict[str, Tuple[RunningStat, QuantileSketch]] = {}
        self._heartbeats_started = False
        self._supervision_started = False
        #: Federated-job resolution subscribers (see :meth:`on_job_done`).
        self._job_done_callbacks: List = []

    # -- region/geo helpers --------------------------------------------------------------

    def region(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"unknown region {name!r}")

    def home_region(self, geo: str) -> Optional[Region]:
        """The region natively serving ``geo`` (data lives there)."""
        return self._region_by_geo.get(geo)

    def _geo_stat(self, geo: str) -> Tuple[RunningStat, QuantileSketch]:
        stats = self._geo_stats.get(geo)
        if stats is None:
            stats = (RunningStat(), QuantileSketch())
            self._geo_stats[geo] = stats
        return stats

    def _ensure_supervision(self) -> None:
        """Start heartbeats (forever) and the hedge supervisor (until
        drained) on first submission — not at construction, so building
        a federation schedules nothing."""
        if not self._heartbeats_started:
            self._heartbeats_started = True
            for region in self.regions:
                self.env.process(
                    self._heartbeat(region),
                    name=f"fed-heartbeat-{region.name}",
                )
        if not self._supervision_started:
            self._supervision_started = True
            self.env.process(self._supervise(), name="fed-supervisor")

    # -- submission ----------------------------------------------------------------------

    def _federation_load(self) -> float:
        """Accepted-but-undelivered jobs per worker across up regions.

        Measured at the gateway (not from region queue depths) so jobs
        still riding the WAN ingress count as demand too.
        """
        workers = sum(
            region.worker_count
            for region in self.regions
            if not region.outage_declared
        )
        return len(self._undelivered) / max(1, workers)

    def submit(self, function: str, geo: str, priority: int = 1) -> FedJob:
        """Accept one federated invocation from a client in ``geo``."""
        now = self.env.now
        fed = FedJob(self._next_fed_id, function, geo, priority, now)
        self._next_fed_id += 1
        self.fed_jobs[fed.fed_id] = fed
        self._undelivered[fed.fed_id] = fed
        self._submitted += 1
        self._outstanding += 1
        self._ensure_supervision()
        threshold = self.config.shed_load_threshold
        if (
            threshold is not None
            and priority <= self.config.shed_max_priority
            and self._federation_load() >= threshold
        ):
            # Graceful degradation: capacity is below demand; the
            # lowest-priority traffic is turned away at the front door
            # (counted as shed, never as lost).
            fed.shed = True
            self.shed_jobs += 1
            self._resolve(fed)
            return fed
        region = self.router.route(geo, now)
        self._dispatch(fed, region)
        return fed

    def _dispatch(
        self,
        fed: FedJob,
        region: Region,
        rerouted_from: Optional[Region] = None,
    ) -> None:
        """Send one attempt of ``fed`` toward ``region``'s front door."""
        now = self.env.now
        fed.ingress_attempts += 1
        attempt = fed.ingress_attempts
        if region.in_brownout(now):
            fraction = (
                derive_seed(fed.fed_id, f"ingress-{region.name}-{attempt}")
                % 2**20
            ) / 2**20
            if fraction < region.brownout_loss:
                # The send is lost in the brownout: back off and retry,
                # attributing the failure to the region's breaker.
                self.ingress_drops += 1
                self.router.breaker.record_failure(region.index, now)
                self.env.process(
                    self._retry_ingress(fed, region),
                    name=f"fed-retry-{fed.fed_id}",
                )
                return
        delay = self.wan.ingress_latency_s(fed.geo, region.name, now)
        home = self.home_region(fed.geo)
        fetch_bytes = 0
        if home is not None and home is not region and self.wan.connected(
            home.name, region.name
        ):
            # Data affinity: serving away from home pays a WAN fetch of
            # the input payload from the home region.
            fetch_bytes = profile_for(fed.function).input_bytes
            delay += self.wan.pair_delay_s(
                home.name, region.name, fetch_bytes, now
            )
        if delay <= 0.0:
            self._submit_to_region(fed, region, fetch_bytes, rerouted_from)
        else:
            self.env.process(
                self._delayed_submit(fed, region, delay, fetch_bytes,
                                     rerouted_from),
                name=f"fed-ingress-{fed.fed_id}",
            )

    def _retry_ingress(self, fed: FedJob, region: Region):
        """Back off after a brownout drop, then retry (or escape)."""
        config = self.config
        yield self.env.timeout(
            backoff_delay_s(
                fed.ingress_attempts,
                base_s=config.ingress_backoff_s,
                factor=config.ingress_backoff_factor,
                max_s=8.0,
                jitter=config.ingress_backoff_jitter,
                key=fed.fed_id,
                salt="ingress-backoff",
            )
        )
        if fed.resolved:
            return
        self.ingress_retries += 1
        now = self.env.now
        if fed.ingress_attempts >= config.ingress_max_attempts:
            # Budget exhausted against this region: route elsewhere.
            self.reroutes += 1
            target = self.router.route(fed.geo, now, exclude={region.index})
            self._dispatch(fed, target, rerouted_from=region)
        else:
            self._dispatch(fed, region)

    def _delayed_submit(
        self,
        fed: FedJob,
        region: Region,
        delay: float,
        fetch_bytes: int,
        rerouted_from: Optional[Region],
    ):
        yield self.env.timeout(delay)
        if fed.resolved:
            return
        if region.outage_declared or not region.reachable:
            # Arrived at a dead front door: route around it.
            self.reroutes += 1
            target = self.router.route(
                fed.geo, self.env.now, exclude={region.index}
            )
            if target is region:
                # Nowhere else to go (every region down): queue into the
                # region anyway; delivery defers to its recovery.
                self._submit_to_region(fed, region, fetch_bytes, rerouted_from)
            else:
                self._dispatch(fed, target, rerouted_from=region)
            return
        self._submit_to_region(fed, region, fetch_bytes, rerouted_from)

    def _submit_to_region(
        self,
        fed: FedJob,
        region: Region,
        fetch_bytes: int,
        rerouted_from: Optional[Region] = None,
    ) -> None:
        job = region.cluster.orchestrator.submit_function(fed.function)
        self._job_map[(region.index, job.job_id)] = fed.fed_id
        fed.attempts.append((region.index, job.job_id))
        region.jobs_in += 1
        if fetch_bytes > 0:
            region.cross_region_jobs += 1
            region.cross_region_bytes += fetch_bytes
        if job.trace_id is not None and rerouted_from is not None:
            region.cluster.orchestrator.tracer.annotate(
                job.trace_id, obs.REROUTE, self.env.now,
                attrs={
                    "fed_id": fed.fed_id,
                    "from_region": rerouted_from.name,
                    "to_region": region.name,
                },
            )

    # -- delivery ------------------------------------------------------------------------

    def _on_region_complete(self, region: Region, job, record) -> None:
        fed_id = self._job_map.get((region.index, job.job_id))
        if fed_id is None:
            return
        if not region.reachable:
            # The region finished the work but the WAN back to the
            # gateway is down: hold the result for deferred delivery.
            region.buffered.append((fed_id, record))
            return
        self._deliver(self.fed_jobs[fed_id], region)

    def _deliver(self, fed: FedJob, region: Region) -> None:
        if fed.resolved:
            # A duplicate attempt (hedge, re-route, or a recovered
            # region's buffered result) lost the race.
            self.duplicates_suppressed += 1
            return
        now = self.env.now
        fed.delivered = True
        fed.served_by = region.index
        fed.t_delivered = now
        egress = self.wan.ingress_latency_s(fed.geo, region.name, now)
        fed.latency_s = (now - fed.t_submit) + egress
        stat, sketch = self._geo_stat(fed.geo)
        stat.add(fed.latency_s)
        sketch.add(fed.latency_s)
        region.jobs_delivered += 1
        self.delivered += 1
        self._resolve(fed)

    def on_job_done(self, callback) -> None:
        """Subscribe to federated-job resolution (push, not poll).

        ``callback(fed)`` fires exactly once per federated job, at the
        simulated instant it resolves — delivery (``fed.delivered``)
        or shedding (``fed.shed``).  Suppressed duplicate regional
        results never fire.  The federation analogue of
        :meth:`repro.core.orchestrator.Orchestrator.on_job_done`; any
        number of subscribers may register, and registration draws no
        RNG so it never perturbs the simulation.
        """
        self._job_done_callbacks.append(callback)

    def _resolve(self, fed: FedJob) -> None:
        self._undelivered.pop(fed.fed_id, None)
        self._outstanding -= 1
        for callback in self._job_done_callbacks:
            callback(fed)
        if self._outstanding == 0:
            for event in self._drain_events:
                if not event.triggered:
                    event.succeed(self.delivered)
            self._drain_events.clear()

    def _flush_buffer(self, region: Region) -> None:
        """Deliver results held while the region was unreachable."""
        buffered, region.buffered = region.buffered, []
        for fed_id, _record in buffered:
            self._deliver(self.fed_jobs[fed_id], region)

    # -- health monitoring ---------------------------------------------------------------

    def _heartbeat(self, region: Region):
        """Probe one region forever; detect outages and recoveries."""
        config = self.config
        while True:
            yield self.env.timeout(config.heartbeat_interval_s)
            now = self.env.now
            if region.reachable:
                if region.outage_declared:
                    # Recovery: the half-open probe succeeded.  Close
                    # the breaker, stop the MTTR clock, and release the
                    # buffered results.
                    region.clear_outage(now)
                    self.router.breaker.record_success(region.index, now)
                else:
                    region.heartbeat_misses = 0
                if region.buffered:
                    self._flush_buffer(region)
            else:
                region.heartbeat_misses += 1
                self.router.breaker.record_failure(region.index, now)
                if (
                    region.heartbeat_misses >= config.heartbeat_misses
                    and not region.outage_declared
                ):
                    region.declare_outage(now)
                    self._failover(region)

    def _failover(self, dead: Region) -> None:
        """Re-route every federated job stranded in a dead region."""
        now = self.env.now
        declared = {r.index for r in self.regions if r.outage_declared}
        for fed in list(self._undelivered.values()):
            if not fed.attempts:
                continue  # still in ingress flight; handled on arrival
            if not all(index in declared for index, _ in fed.attempts):
                continue  # a healthy region is already working on it
            target = self.router.route(fed.geo, now, exclude=declared)
            if target.index in declared:
                continue  # no healthy region exists right now
            self.reroutes += 1
            last_index, last_job_id = fed.attempts[-1]
            last_region = self.regions[last_index]
            last_job = last_region.cluster.orchestrator.jobs.get(last_job_id)
            if last_job is not None and last_job.trace_id is not None:
                last_region.cluster.orchestrator.tracer.annotate(
                    last_job.trace_id, obs.REGION_OUTAGE, now,
                    attrs={"region": dead.name},
                )
            self._dispatch(fed, target, rerouted_from=dead)

    def _supervise(self):
        """Hedge stragglers to a secondary region until drained."""
        config = self.config
        try:
            while self._outstanding > 0:
                yield self.env.timeout(config.supervisor_tick_s)
                if config.hedge_after_s is None:
                    continue
                now = self.env.now
                for fed in list(self._undelivered.values()):
                    if fed.hedged or fed.shed or not fed.attempts:
                        continue
                    if now - fed.t_submit < config.hedge_after_s:
                        continue
                    attempted = {index for index, _ in fed.attempts}
                    target = self.router.route(fed.geo, now, exclude=attempted)
                    if target.index in attempted:
                        continue  # nowhere new to hedge to
                    fed.hedged = True
                    self.hedges += 1
                    self._dispatch(fed, target)
        finally:
            self._supervision_started = False

    # -- drain + entry points ------------------------------------------------------------

    def wait_all(self) -> Event:
        """Event firing when every federated job is delivered or shed."""
        event = Event(self.env)
        if self._outstanding == 0 and self._submitted > 0:
            event.succeed(self.delivered)
        else:
            self._drain_events.append(event)
        return event

    def _drain(self):
        """Runner: all fed jobs resolved, then all regions idle (late
        duplicate attempts finish so energy/trace windows seal)."""
        yield self.wait_all()
        for region in self.regions:
            orchestrator = region.cluster.orchestrator
            if orchestrator.pending > 0:
                yield orchestrator.wait_all()

    def run_saturated(
        self,
        functions: Sequence[str] = tuple(ALL_FUNCTION_NAMES),
        invocations_per_function: int = 10,
        geos: Optional[Sequence[str]] = None,
    ) -> "FederationResult":
        """Issue the full batch at t=0 and run until drained.

        Without explicit ``geos``, clients round-robin over the
        regions' geos.  With a single zero-latency region this is
        *exactly* the bare cluster's ``run_saturated``: same batch,
        same submission order, all at t=0.
        """
        if invocations_per_function < 1:
            raise ValueError("invocations_per_function must be >= 1")
        batch = [
            function
            for _ in range(invocations_per_function)
            for function in functions
        ]
        region_geos = [region.geo for region in self.regions]
        for index, function in enumerate(batch):
            geo = (
                geos[index % len(geos)]
                if geos
                else region_geos[index % len(region_geos)]
            )
            self.submit(function, geo)
        self.env.run(until=self.env.process(self._drain(), name="fed-drain"))
        return self.result(self.env.now)

    def run_arrivals(
        self,
        trace,
        geos: Sequence[str],
        priorities: Optional[Sequence[int]] = None,
    ) -> "FederationResult":
        """Replay an arrival trace through the gateway.

        ``trace`` is anything with ``iter_pairs()``/``duration_s``
        (:class:`~repro.workloads.traces.ArrivalTrace` or the columnar
        fast path); ``geos[i]`` is the i-th arrival's client geo and
        ``priorities[i]`` its priority (default 1).  Arrivals sharing a
        timestamp submit in one burst, as in
        :func:`repro.cluster.replay.replay_trace`.
        """
        if len(trace) == 0:
            raise ValueError("empty trace")
        if len(geos) < len(trace):
            raise ValueError("need one geo per arrival")
        env = self.env

        def submitter():
            index = 0
            batch_time = None
            pending: List[Tuple[int, str]] = []
            for time_s, function in trace.iter_pairs():
                if batch_time is not None and time_s != batch_time:
                    delay = batch_time - env.now
                    if delay > 0:
                        yield env.timeout(delay)
                    for i, fn in pending:
                        self.submit(
                            fn, geos[i],
                            priorities[i] if priorities is not None else 1,
                        )
                    pending = []
                batch_time = time_s
                pending.append((index, function))
                index += 1
            delay = batch_time - env.now
            if delay > 0:
                yield env.timeout(delay)
            for i, fn in pending:
                self.submit(
                    fn, geos[i],
                    priorities[i] if priorities is not None else 1,
                )

        def runner():
            yield env.process(submitter(), name="fed-submitter")
            yield from self._drain()

        env.run(until=env.process(runner(), name="fed-runner"))
        duration = max(env.now, trace.duration_s)
        if env.now < duration:
            env.run(until=duration)
        return self.result(duration)

    # -- results -------------------------------------------------------------------------

    def finished_traces(self):
        """Merged sealed traces of every region (labels are region
        names, so ids never collide)."""
        recorders = [
            region.cluster.tracer
            for region in self.regions
            if region.cluster.tracer is not None
        ]
        for recorder in recorders:
            recorder.drain()
        return merge_traces(recorders)

    def result(self, duration_s: float) -> "FederationResult":
        """Freeze the run into a :class:`FederationResult`.

        Flushes any results still buffered behind a healed WAN first,
        so the exactly-once accounting reconciles: every regional
        delivery is either the federated delivery or a counted
        duplicate.
        """
        for region in self.regions:
            if region.buffered and region.reachable:
                self._flush_buffer(region)
        return FederationResult(self, duration_s)


class FederationResult:
    """Reconciled per-region and aggregate outcome of a federated run."""

    def __init__(self, fed: FederatedCluster, duration_s: float):
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        self.duration_s = duration_s
        self.jobs_submitted = fed._submitted
        self.jobs_delivered = fed.delivered
        self.jobs_shed = fed.shed_jobs
        #: The headline invariant: jobs neither delivered nor shed.
        self.jobs_lost = fed._submitted - fed.delivered - fed.shed_jobs
        self.reroutes = fed.reroutes
        self.hedges = fed.hedges
        self.duplicates_suppressed = fed.duplicates_suppressed
        self.ingress_drops = fed.ingress_drops
        self.ingress_retries = fed.ingress_retries
        #: Per-geo client-perceived latency: geo -> (count, mean, p50, p99).
        self.geo_latency: Dict[str, Tuple[int, float, float, float]] = {}
        for geo in sorted(fed._geo_stats):
            stat, sketch = fed._geo_stats[geo]
            self.geo_latency[geo] = (
                stat.count, stat.mean, sketch.quantile(50.0),
                sketch.quantile(99.0),
            )
        #: Per-region reports, in region order.
        self.region_reports: List[RegionReport] = [
            RegionReport(
                name=region.name,
                geo=region.geo,
                worker_count=region.worker_count,
                jobs_in=region.jobs_in,
                jobs_delivered=region.jobs_delivered,
                telemetry_count=region.cluster.orchestrator.telemetry.count,
                energy_joules=region.cluster.energy_joules(0.0, duration_s),
                outages=len(region.outage_log),
                mean_recovery_s=region.mean_outage_recovery_s,
                cross_region_jobs=region.cross_region_jobs,
                cross_region_bytes=region.cross_region_bytes,
            )
            for region in fed.regions
        ]
        self.energy_joules = sum(
            report.energy_joules for report in self.region_reports
        )
        #: Aggregate telemetry: every region's collector merged.
        self.telemetry = TelemetryCollector(exact=fed.telemetry_exact)
        for region in fed.regions:
            self.telemetry.merge(region.cluster.orchestrator.telemetry)

    @property
    def goodput_per_min(self) -> float:
        return self.jobs_delivered * 60.0 / self.duration_s

    @property
    def joules_per_function(self) -> float:
        if self.jobs_delivered == 0:
            raise ValueError("no delivered jobs")
        return self.energy_joules / self.jobs_delivered

    @property
    def mean_recovery_s(self) -> Optional[float]:
        """Failover MTTR over every completed region outage."""
        spans: List[float] = []
        for report in self.region_reports:
            if report.mean_recovery_s is not None:
                spans.extend([report.mean_recovery_s] * report.outages)
        if not spans:
            return None
        return sum(spans) / len(spans)

    @property
    def cross_region_jobs(self) -> int:
        return sum(r.cross_region_jobs for r in self.region_reports)

    @property
    def cross_region_bytes(self) -> int:
        return sum(r.cross_region_bytes for r in self.region_reports)

    def reconciles(self) -> bool:
        """Exactly-once accounting across the whole federation.

        Every regional delivery is either *the* federated delivery or a
        counted duplicate, and nothing was lost.
        """
        regional = sum(r.telemetry_count for r in self.region_reports)
        return (
            self.jobs_lost == 0
            and regional == self.jobs_delivered + self.duplicates_suppressed
            and self.telemetry.count == regional
        )


@dataclass(frozen=True)
class RegionReport:
    """One region's share of a federated run."""

    name: str
    geo: str
    worker_count: int
    jobs_in: int
    jobs_delivered: int
    telemetry_count: int
    energy_joules: float
    outages: int
    mean_recovery_s: Optional[float]
    cross_region_jobs: int
    cross_region_bytes: int

    @property
    def joules_per_function(self) -> float:
        if self.telemetry_count == 0:
            return float("nan")
        return self.energy_joules / self.telemetry_count


__all__ = [
    "FedJob",
    "FederatedCluster",
    "FederationResult",
    "GatewayConfig",
    "RegionReport",
]
