"""Total-cost-of-ownership model (Cui et al., simplified per Sec. V).

Reproduces Table II exactly: the 5-year single-rack cost comparison
between 41 conventional rack servers and a throughput-equivalent
MicroFaaS deployment of 989 SBCs behind 21 ToR switches.

- :mod:`repro.tco.assumptions` — every constant from the paper's
  appendix.
- :mod:`repro.tco.model` — the compute/network/energy cost model.
- :mod:`repro.tco.analysis` — Table II and sensitivity sweeps.
"""

from repro.tco.assumptions import (
    IDEAL,
    PAPER_CONVENTIONAL_RACK,
    PAPER_MICROFAAS_RACK,
    REALISTIC,
    CostAssumptions,
    DeploymentSpec,
    OperatingConditions,
)
from repro.tco.analysis import (
    Table2Cell,
    sbc_price_sensitivity,
    table2,
    tco_savings_fraction,
    utilization_sweep,
)
from repro.tco.model import CostBreakdown, TcoModel

__all__ = [
    "CostAssumptions",
    "CostBreakdown",
    "DeploymentSpec",
    "IDEAL",
    "OperatingConditions",
    "PAPER_CONVENTIONAL_RACK",
    "PAPER_MICROFAAS_RACK",
    "REALISTIC",
    "Table2Cell",
    "TcoModel",
    "sbc_price_sensitivity",
    "table2",
    "tco_savings_fraction",
    "utilization_sweep",
]
