"""Cost-model assumptions from the paper's appendix.

Every number here is stated in the appendix (or Sec. V):

- Dell PowerEdge R6515 at $2,011; BeagleBone Black at $52.50.
- Refurbished Catalyst 2960S-48LPS at $500, drawing 40.87 W, 48 ports.
- $1.80 of Cat6 per node (6 ft at $0.30/ft).
- Benchmark datacenter: PUE 1.3, SPUE 1.2, $0.10/kWh.
- Server: 150 W loaded / 60 W idle.  SBC: 1.96 W loaded / 0.128 W
  "fully powered down".
- 5-year depreciation.  The energy horizon is 43,200 hours — 8,640 h
  per year (360-day years); this is the only horizon consistent with
  all four of Table II's energy cells.
- Rack contents: 41 servers + 1 ToR switch vs. a throughput-equivalent
  989 SBCs + 21 ToR switches.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostAssumptions:
    """Datacenter-wide constants (Cui et al. benchmark datacenter)."""

    pue: float = 1.3
    spue: float = 1.2
    electricity_usd_per_kwh: float = 0.10
    lifetime_hours: float = 43_200.0  # 5 years x 8,640 h
    cable_usd_per_node: float = 1.80

    def __post_init__(self) -> None:
        if self.pue < 1.0 or self.spue < 1.0:
            raise ValueError("PUE and SPUE cannot be below 1.0")
        if self.electricity_usd_per_kwh <= 0:
            raise ValueError("electricity price must be positive")
        if self.lifetime_hours <= 0:
            raise ValueError("lifetime must be positive")


@dataclass(frozen=True)
class DeploymentSpec:
    """One rack's worth of one technology."""

    name: str
    node_count: int
    node_cost_usd: float
    node_loaded_watts: float
    node_idle_watts: float
    switch_count: int
    switch_cost_usd: float = 500.0
    switch_watts: float = 40.87

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ValueError("need at least one node")
        if self.switch_count < 0:
            raise ValueError("switch count cannot be negative")
        if self.node_idle_watts > self.node_loaded_watts:
            raise ValueError("idle power above loaded power")
        for field_name in ("node_cost_usd", "switch_cost_usd"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} cannot be negative")


@dataclass(frozen=True)
class OperatingConditions:
    """Utilization and online-rate scenario (Table II columns)."""

    name: str
    utilization: float  # fraction of time nodes are loaded
    online_rate: float  # fraction of nodes that never need replacing

    def __post_init__(self) -> None:
        if not 0.0 <= self.utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        if not 0.0 < self.online_rate <= 1.0:
            raise ValueError("online rate must be in (0, 1]")


#: Table II's two scenarios.
IDEAL = OperatingConditions(name="ideal", utilization=1.0, online_rate=1.0)
REALISTIC = OperatingConditions(
    name="realistic", utilization=0.5, online_rate=0.95
)

#: 41 mid-range rack servers + 1 refurbished ToR switch.
PAPER_CONVENTIONAL_RACK = DeploymentSpec(
    name="conventional",
    node_count=41,
    node_cost_usd=2011.0,
    node_loaded_watts=150.0,
    node_idle_watts=60.0,
    switch_count=1,
)

#: Throughput-equivalent MicroFaaS deployment: 989 SBCs + 21 switches.
PAPER_MICROFAAS_RACK = DeploymentSpec(
    name="microfaas",
    node_count=989,
    node_cost_usd=52.50,
    node_loaded_watts=1.96,
    node_idle_watts=0.128,
    switch_count=21,
)

__all__ = [
    "CostAssumptions",
    "DeploymentSpec",
    "IDEAL",
    "OperatingConditions",
    "PAPER_CONVENTIONAL_RACK",
    "PAPER_MICROFAAS_RACK",
    "REALISTIC",
]
