"""Table II generation and TCO sensitivity analyses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.tco.assumptions import (
    CostAssumptions,
    DeploymentSpec,
    IDEAL,
    OperatingConditions,
    PAPER_CONVENTIONAL_RACK,
    PAPER_MICROFAAS_RACK,
    REALISTIC,
)
from repro.tco.model import CostBreakdown, TcoModel


@dataclass(frozen=True)
class Table2Cell:
    """One (scenario, deployment) column of Table II, whole dollars."""

    scenario: str
    deployment: str
    compute_usd: int
    network_usd: int
    energy_usd: int
    total_usd: int


def table2(
    conventional: DeploymentSpec = PAPER_CONVENTIONAL_RACK,
    microfaas: DeploymentSpec = PAPER_MICROFAAS_RACK,
    assumptions: CostAssumptions = CostAssumptions(),
) -> List[Table2Cell]:
    """Regenerate Table II: four columns, whole-dollar amounts.

    Totals are sums of the rounded components, matching the paper's
    presentation.
    """
    model = TcoModel(assumptions)
    cells = []
    for conditions in (IDEAL, REALISTIC):
        for spec in (conventional, microfaas):
            rounded = model.evaluate(spec, conditions).rounded()
            cells.append(
                Table2Cell(
                    scenario=conditions.name,
                    deployment=spec.name,
                    compute_usd=int(rounded.compute_usd),
                    network_usd=int(rounded.network_usd),
                    energy_usd=int(rounded.energy_usd),
                    total_usd=int(rounded.total_usd),
                )
            )
    return cells


def tco_savings_fraction(
    conditions: OperatingConditions,
    conventional: DeploymentSpec = PAPER_CONVENTIONAL_RACK,
    microfaas: DeploymentSpec = PAPER_MICROFAAS_RACK,
    assumptions: CostAssumptions = CostAssumptions(),
) -> float:
    """MicroFaaS saving over conventional, as a fraction of the
    conventional total (the paper reports 32.5-34.2 %)."""
    model = TcoModel(assumptions)
    conventional_total = model.evaluate(conventional, conditions).rounded().total_usd
    microfaas_total = model.evaluate(microfaas, conditions).rounded().total_usd
    return 1.0 - microfaas_total / conventional_total


def utilization_sweep(
    points: int = 11,
    assumptions: CostAssumptions = CostAssumptions(),
) -> List[Tuple[float, float, float]]:
    """(utilization, conventional_total, microfaas_total) across
    utilizations — shows the saving grow as utilization falls (idle
    conventional racks still burn 60 W/server; idle SBCs are off)."""
    if points < 2:
        raise ValueError("need at least two sweep points")
    model = TcoModel(assumptions)
    rows = []
    for i in range(points):
        u = i / (points - 1)
        conditions = OperatingConditions(
            name=f"u={u:.2f}", utilization=u, online_rate=1.0
        )
        rows.append(
            (
                u,
                model.evaluate(PAPER_CONVENTIONAL_RACK, conditions).total_usd,
                model.evaluate(PAPER_MICROFAAS_RACK, conditions).total_usd,
            )
        )
    return rows


def sbc_price_sensitivity(
    prices_usd: Tuple[float, ...] = (35.0, 52.5, 75.0, 100.0, 150.0),
    conditions: OperatingConditions = REALISTIC,
    assumptions: CostAssumptions = CostAssumptions(),
) -> List[Tuple[float, float]]:
    """(sbc_price, savings_fraction): where does the MicroFaaS advantage
    break even as boards get more expensive?"""
    rows = []
    for price in prices_usd:
        if price <= 0:
            raise ValueError("price must be positive")
        spec = DeploymentSpec(
            name="microfaas",
            node_count=PAPER_MICROFAAS_RACK.node_count,
            node_cost_usd=price,
            node_loaded_watts=PAPER_MICROFAAS_RACK.node_loaded_watts,
            node_idle_watts=PAPER_MICROFAAS_RACK.node_idle_watts,
            switch_count=PAPER_MICROFAAS_RACK.switch_count,
        )
        rows.append(
            (price, tco_savings_fraction(conditions, microfaas=spec,
                                         assumptions=assumptions))
        )
    return rows


__all__ = [
    "Table2Cell",
    "sbc_price_sensitivity",
    "table2",
    "tco_savings_fraction",
    "utilization_sweep",
]
