"""The simplified Cui et al. TCO model (Sec. V / appendix).

Three components (the paper drops the original model's infrastructure
and maintenance terms):

- **Compute** (server acquisition, ``C_s``): nodes x unit price, divided
  by the online rate — a 95 % OR means ~5 % of nodes must be bought
  again over the lifetime.
- **Network** (``C_n``): switches x unit price + nodes x per-node
  cabling.
- **Energy** (``C_p``): node power (interpolated between loaded and idle
  by utilization) x SPUE, plus switch power, all x PUE x lifetime hours
  x electricity price.  Online rate does not scale energy (replaced
  nodes consume in place of the failed ones).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tco.assumptions import (
    CostAssumptions,
    DeploymentSpec,
    OperatingConditions,
)


@dataclass(frozen=True)
class CostBreakdown:
    """One Table II column: the three expenses plus the total."""

    compute_usd: float
    network_usd: float
    energy_usd: float

    @property
    def total_usd(self) -> float:
        return self.compute_usd + self.network_usd + self.energy_usd

    def rounded(self) -> "CostBreakdown":
        """Whole-dollar rounding, as Table II presents (its totals are
        sums of the rounded components).

        Rounds half away from zero — Python's built-in ``round`` uses
        banker's rounding, which would turn the paper's $51,922.50 SBC
        acquisition cell into $51,922 instead of its printed $51,923.
        """
        def half_up(value: float) -> float:
            return math.floor(value + 0.5)

        return CostBreakdown(
            compute_usd=half_up(self.compute_usd),
            network_usd=half_up(self.network_usd),
            energy_usd=half_up(self.energy_usd),
        )


class TcoModel:
    """Evaluate deployments under the appendix assumptions."""

    def __init__(self, assumptions: CostAssumptions = CostAssumptions()):
        self.assumptions = assumptions

    def compute_cost(
        self, spec: DeploymentSpec, conditions: OperatingConditions
    ) -> float:
        """Server acquisition cost over the lifetime."""
        return spec.node_count * spec.node_cost_usd / conditions.online_rate

    def network_cost(self, spec: DeploymentSpec) -> float:
        """Switch acquisition plus per-node cabling."""
        return (
            spec.switch_count * spec.switch_cost_usd
            + spec.node_count * self.assumptions.cable_usd_per_node
        )

    def average_node_watts(
        self, spec: DeploymentSpec, conditions: OperatingConditions
    ) -> float:
        """Utilization-weighted node power draw."""
        u = conditions.utilization
        return u * spec.node_loaded_watts + (1 - u) * spec.node_idle_watts

    def energy_cost(
        self, spec: DeploymentSpec, conditions: OperatingConditions
    ) -> float:
        """Lifetime electricity cost of the deployment."""
        a = self.assumptions
        node_watts = (
            spec.node_count
            * self.average_node_watts(spec, conditions)
            * a.spue
        )
        switch_watts = spec.switch_count * spec.switch_watts
        total_watts = (node_watts + switch_watts) * a.pue
        kwh = total_watts * a.lifetime_hours / 1000.0
        return kwh * a.electricity_usd_per_kwh

    def evaluate(
        self, spec: DeploymentSpec, conditions: OperatingConditions
    ) -> CostBreakdown:
        """Full cost breakdown for one deployment under one scenario."""
        return CostBreakdown(
            compute_usd=self.compute_cost(spec, conditions),
            network_usd=self.network_cost(spec),
            energy_usd=self.energy_cost(spec, conditions),
        )


__all__ = ["CostBreakdown", "TcoModel"]
