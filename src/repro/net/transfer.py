"""Transfer-time and round-trip calculators.

The cluster simulation and the workload profiles need two quantities:

- ``rtt(src, dst)`` — request/response round-trip time for a small
  message (dominates the network-bound workloads' per-operation cost);
- ``transfer_s(src, dst, nbytes)`` — time to move a payload end to end
  (dominates function input/result *overhead* and the object-store
  workloads).

Both derive from the topology: per-endpoint protocol-stack latency,
per-switch forwarding latency, and the bottleneck bandwidth along the
path.  A per-invocation *session overhead* models what a freshly booted
MicroPython worker pays to open its TCP connection to the orchestrator
and parse/serialize the JSON payloads — measurably larger on the slow
ARM core than on x86.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.topology import NetworkTopology

#: Per-invocation session overhead (TCP handshake + JSON codec), seconds.
SESSION_OVERHEAD_S = {
    "arm-bare": 28e-3,
    "x86-virtio": 16e-3,
    "x86-bare": 8e-3,
}


@dataclass(frozen=True)
class TransferEstimate:
    """Breakdown of one end-to-end transfer."""

    serialization_s: float
    latency_s: float
    session_s: float
    #: Extra time waiting out network faults (down links/switches,
    #: degraded latency); zero unless chaos injection is active.
    fault_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.serialization_s + self.latency_s + self.session_s + self.fault_s

    def as_attrs(self) -> dict:
        """Flat dict form, for tracing span attributes."""
        return {
            "serialization_s": self.serialization_s,
            "latency_s": self.latency_s,
            "session_s": self.session_s,
            "fault_s": self.fault_s,
        }


class TransferModel:
    """Timing calculator bound to a :class:`NetworkTopology`.

    With a ``clock`` (and after :meth:`enable_chaos`), transfers also pay
    for injected network faults: a message crossing a dropped link or a
    dead switch waits out the remaining outage (frames buffer and flow
    on recovery — the discrete-event simplification of TCP retransmit),
    and degraded links add their extra latency.  Fault accounting is
    gated on both so un-faulted simulations compute byte-identical
    estimates to the pre-chaos code.
    """

    def __init__(
        self,
        topology: NetworkTopology,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.topology = topology
        self.clock = clock
        self._chaos = False

    def enable_chaos(self) -> None:
        """Turn on fault accounting (requires a clock)."""
        if self.clock is None:
            raise RuntimeError("chaos accounting needs a clock")
        self._chaos = True

    def _fault_s(self, src: str, dst: str) -> float:
        """One-way fault penalty for a message entering the fabric now."""
        if not self._chaos or self.clock is None:
            return 0.0
        now = self.clock()
        outage = 0.0
        extra = 0.0
        for name in (src, dst):
            link = self.topology.links.get(name)
            if link is not None:
                outage = max(outage, max(0.0, link.down_until - now))
                extra += link.extra_latency_s
        for node in self.topology.path(src, dst)[1:-1]:
            switch = self.topology.switches.get(node)
            if switch is not None:
                outage = max(outage, switch.outage_remaining_s(now))
        return outage + extra

    def one_way_latency_s(self, src: str, dst: str) -> float:
        """Small-message one-way latency: stacks plus switch hops."""
        _bw, switch_latency, _hops = self.topology.path_properties(src, dst)
        src_stack = self.topology.endpoint(src).stack_latency_s
        dst_stack = self.topology.endpoint(dst).stack_latency_s
        return src_stack + dst_stack + switch_latency

    def rtt_s(self, src: str, dst: str) -> float:
        """Request/response round trip for a small message."""
        return 2.0 * self.one_way_latency_s(src, dst)

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: int,
        include_session: bool = False,
    ) -> TransferEstimate:
        """Estimate moving ``nbytes`` from ``src`` to ``dst``.

        ``include_session`` adds the source's per-invocation session
        overhead (connection setup and payload codec) — used once per
        function invocation, not per service operation.
        """
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        bottleneck, _switch_latency, _hops = self.topology.path_properties(
            src, dst
        )
        serialization = nbytes * 8.0 / bottleneck
        latency = self.one_way_latency_s(src, dst)
        session = (
            SESSION_OVERHEAD_S[self.topology.endpoint(src).host_class]
            if include_session
            else 0.0
        )
        return TransferEstimate(
            serialization_s=serialization,
            latency_s=latency,
            session_s=session,
            fault_s=self._fault_s(src, dst),
        )

    def transfer_s(self, src: str, dst: str, nbytes: int) -> float:
        """Shorthand for ``transfer(...).total_s`` without session cost."""
        return self.transfer(src, dst, nbytes).total_s

    def invocation_overhead_s(
        self,
        orchestrator: str,
        worker: str,
        input_bytes: int,
        output_bytes: int,
    ) -> float:
        """Fig. 3 'Overhead': receive input + return result + session.

        This is the time a worker spends on invocation plumbing rather
        than executing the function body.
        """
        inbound = self.transfer(orchestrator, worker, input_bytes)
        outbound = self.transfer(worker, orchestrator, output_bytes)
        session = SESSION_OVERHEAD_S[
            self.topology.endpoint(worker).host_class
        ]
        return inbound.total_s + outbound.total_s + session


__all__ = ["SESSION_OVERHEAD_S", "TransferEstimate", "TransferModel"]
