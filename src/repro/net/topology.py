"""Cluster network topology graph.

A thin networkx wrapper tying endpoints and switches into one graph so
the transfer model can resolve paths (endpoint → switch → ... → endpoint)
and find the bottleneck bandwidth and accumulated forwarding latency
along them.  The testbed topology is a single switch, but the TCO
analysis reasons about multi-switch fabrics (989 SBCs across 21 ToR
switches), so paths through multiple switches are supported via
inter-switch trunk edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.net.link import Endpoint, Link
from repro.net.switch import Switch


class NetworkTopology:
    """Endpoints and switches joined into one resolvable graph."""

    def __init__(self):
        self.graph = nx.Graph()
        self.endpoints: Dict[str, Endpoint] = {}
        self.switches: Dict[str, Switch] = {}
        self.links: Dict[str, Link] = {}
        # Switch-only skeleton of the fabric.  Endpoints always have
        # degree 1 (attached to exactly one switch), so every path is
        # "src, src's switch, ..switches.., dst's switch, dst" and the
        # search only ever needs to run over this skeleton — a BFS over
        # tens of switches instead of thousands of endpoint nodes.
        self._switch_graph = nx.Graph()
        self._endpoint_switch: Dict[str, str] = {}
        # Resolved-path memo, flushed on any topology mutation.  Edge
        # bandwidths and switch forwarding latencies are fixed at attach
        # time, so cached entries stay valid until the graph changes.
        self._path_cache: Dict[Tuple[str, str], List[str]] = {}
        self._props_cache: Dict[Tuple[str, str], Tuple[float, float, int]] = {}

    def _invalidate_paths(self) -> None:
        self._path_cache.clear()
        self._props_cache.clear()

    def add_switch(self, switch: Switch) -> None:
        if switch.name in self.switches:
            raise ValueError(f"duplicate switch name {switch.name!r}")
        self.switches[switch.name] = switch
        self.graph.add_node(switch.name, kind="switch")
        self._switch_graph.add_node(switch.name)
        self._invalidate_paths()

    def attach_endpoint(self, endpoint: Endpoint, switch_name: str) -> Link:
        """Attach ``endpoint`` to the named switch."""
        if endpoint.name in self.endpoints:
            raise ValueError(f"duplicate endpoint name {endpoint.name!r}")
        switch = self.switches[switch_name]
        link = switch.attach(endpoint)
        self.endpoints[endpoint.name] = endpoint
        self.links[endpoint.name] = link
        self.graph.add_node(endpoint.name, kind="endpoint")
        self.graph.add_edge(
            endpoint.name,
            switch_name,
            bandwidth_bps=link.effective_bandwidth_bps,
        )
        self._endpoint_switch[endpoint.name] = switch_name
        self._invalidate_paths()
        return link

    def attach_endpoints(
        self, endpoints: List[Endpoint], switch_name: str
    ) -> List[Link]:
        """Attach many endpoints to one switch in a single operation.

        Equivalent to calling :meth:`attach_endpoint` once per endpoint
        in order — same port accounting, same graph node and edge
        insertion order — but with the dup checks hoisted, the graph
        populated through networkx's bulk adders, and one cache flush
        instead of one per endpoint.  Blueprint-driven builds attach a
        whole switch span at a time through this path.
        """
        endpoints = list(endpoints)
        switch = self.switches[switch_name]
        links: List[Link] = []
        for endpoint in endpoints:
            if endpoint.name in self.endpoints:
                raise ValueError(
                    f"duplicate endpoint name {endpoint.name!r}"
                )
            link = switch.attach(endpoint)
            self.endpoints[endpoint.name] = endpoint
            self.links[endpoint.name] = link
            self._endpoint_switch[endpoint.name] = switch_name
            links.append(link)
        self.graph.add_nodes_from(
            (endpoint.name, {"kind": "endpoint"}) for endpoint in endpoints
        )
        self.graph.add_edges_from(
            (
                endpoint.name,
                switch_name,
                {"bandwidth_bps": link.effective_bandwidth_bps},
            )
            for endpoint, link in zip(endpoints, links)
        )
        self._invalidate_paths()
        return links

    def connect_switches(
        self,
        a: str,
        b: str,
        trunk_bandwidth_bps: float = 1e9,
    ) -> None:
        """Join two switches with a trunk link."""
        if a not in self.switches or b not in self.switches:
            raise KeyError(f"both {a!r} and {b!r} must be switches")
        self.switches[a].reserve_trunk(b)
        self.switches[b].reserve_trunk(a)
        self.graph.add_edge(a, b, bandwidth_bps=trunk_bandwidth_bps)
        self._switch_graph.add_edge(a, b)
        self._invalidate_paths()

    def path(self, src: str, dst: str) -> List[str]:
        """Shortest node path from ``src`` to ``dst`` (memoized).

        Cache misses resolve over the switch skeleton: each endpoint
        terminal is rewritten to its attachment switch, the BFS runs
        switch-to-switch, and the endpoints are spliced back on.  On a
        5,000-worker fabric that turns an O(endpoints) search into an
        O(switches) one.
        """
        cached = self._path_cache.get((src, dst))
        if cached is None:
            cached = self._resolve_path(src, dst)
            self._path_cache[(src, dst)] = cached
            self._path_cache[(dst, src)] = cached[::-1]
        return cached

    def _resolve_path(self, src: str, dst: str) -> List[str]:
        src_switch = self._endpoint_switch.get(src, src)
        dst_switch = self._endpoint_switch.get(dst, dst)
        if (
            src_switch not in self._switch_graph
            or dst_switch not in self._switch_graph
        ):
            # Unknown terminal: let networkx raise its usual errors.
            return nx.shortest_path(self.graph, src, dst)
        if src == dst:
            return [src]
        if src_switch == dst_switch:
            spine = [src_switch]
        else:
            spine = nx.shortest_path(self._switch_graph, src_switch, dst_switch)
        nodes = list(spine)
        if src != src_switch:
            nodes.insert(0, src)
        if dst != dst_switch:
            nodes.append(dst)
        return nodes

    def path_properties(self, src: str, dst: str) -> Tuple[float, float, int]:
        """Resolve (bottleneck_bps, switch_latency_s, hop_count) for a path.

        ``switch_latency_s`` is the summed store-and-forward latency of
        every switch traversed.  Memoized: the graph is undirected, so
        the same tuple serves both directions.
        """
        props = self._props_cache.get((src, dst))
        if props is not None:
            return props
        nodes = self.path(src, dst)
        bottleneck = float("inf")
        switch_latency = 0.0
        for u, v in zip(nodes, nodes[1:]):
            bottleneck = min(bottleneck, self.graph.edges[u, v]["bandwidth_bps"])
        for node in nodes[1:-1]:
            if self.graph.nodes[node]["kind"] == "switch":
                switch_latency += self.switches[node].forwarding_latency_s
        props = (bottleneck, switch_latency, len(nodes) - 1)
        self._props_cache[(src, dst)] = props
        self._props_cache[(dst, src)] = props
        return props

    def endpoint(self, name: str) -> Endpoint:
        return self.endpoints[name]

    def __contains__(self, name: str) -> bool:
        return name in self.graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NetworkTopology endpoints={len(self.endpoints)} "
            f"switches={len(self.switches)}>"
        )


__all__ = ["NetworkTopology"]
