"""Network substrate: links, switches, topology, and transfer timing.

Models the testbed's Ethernet fabric (Sec. IV-B): worker nodes and the
orchestration server attached to a 24-port managed switch, with the
backend-service SBCs on the same segment.  Provides:

- :mod:`repro.net.link` — endpoint NICs and links with bandwidth,
  protocol-stack latency, and an optional simulated-contention resource.
- :mod:`repro.net.switch` — store-and-forward switch with port
  accounting and constant power draw.
- :mod:`repro.net.topology` — a networkx-backed cluster network graph
  with path resolution.
- :mod:`repro.net.transfer` — round-trip and bulk-transfer time
  calculators used by the cluster simulation and workload profiles.
"""

from repro.net.link import Endpoint, Link
from repro.net.switch import Switch
from repro.net.topology import NetworkTopology
from repro.net.transfer import TransferModel

__all__ = [
    "Endpoint",
    "Link",
    "NetworkTopology",
    "Switch",
    "TransferModel",
]
