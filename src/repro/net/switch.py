"""Store-and-forward Ethernet switch model.

The testbed uses a 24-port managed Gigabit switch; the TCO analysis uses
48-port Catalyst units.  A switch contributes a fixed forwarding latency
per hop, bounds how many devices can attach, and draws constant power
(recorded on a trace so cluster-level meters can include it).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.hardware.power import PowerTrace
from repro.hardware.specs import SwitchSpec, TESTBED_SWITCH
from repro.net.link import Endpoint, Link
from repro.sim.kernel import Environment


class PortExhaustedError(RuntimeError):
    """Raised when attaching to a switch with no free ports."""


class Switch:
    """A top-of-rack switch with a fixed number of ports."""

    def __init__(
        self,
        clock: Callable[[], float],
        spec: SwitchSpec = TESTBED_SWITCH,
        env: Optional[Environment] = None,
        name: str = "switch",
    ):
        self.spec = spec
        self.name = name
        self.env = env
        self._clock = clock
        self.links: Dict[str, Link] = {}
        self.trunks: set = set()
        self.trace = PowerTrace(initial_time=clock(), initial_watts=spec.watts)
        #: Chaos state: the whole switch forwards nothing until this
        #: simulated time (power blip, firmware crash).
        self.down_until = 0.0

    def fail_until(self, until_s: float) -> None:
        """Take the switch down until ``until_s`` (idempotent, extends)."""
        self.down_until = max(self.down_until, until_s)

    def outage_remaining_s(self, now: float) -> float:
        """How much longer a frame arriving at ``now`` must wait."""
        return max(0.0, self.down_until - now)

    @property
    def ports_total(self) -> int:
        return self.spec.ports

    @property
    def ports_used(self) -> int:
        return len(self.links) + len(self.trunks)

    @property
    def ports_free(self) -> int:
        return self.spec.ports - self.ports_used

    @property
    def forwarding_latency_s(self) -> float:
        return self.spec.forwarding_latency_s

    @property
    def watts(self) -> float:
        """Switches in this model draw constant power."""
        return self.spec.watts

    def attach(self, endpoint: Endpoint) -> Link:
        """Attach ``endpoint`` to a free port, returning its link."""
        if endpoint.name in self.links:
            raise ValueError(f"endpoint {endpoint.name!r} already attached")
        if self.ports_free <= 0:
            raise PortExhaustedError(
                f"{self.name}: all {self.spec.ports} ports in use"
            )
        link = Link(
            endpoint,
            port_bandwidth_bps=self.spec.port_bandwidth_bps,
            env=self.env,
        )
        self.links[endpoint.name] = link
        return link

    def reserve_trunk(self, peer_name: str) -> None:
        """Consume one port for an inter-switch trunk link."""
        if peer_name in self.trunks:
            raise ValueError(f"trunk to {peer_name!r} already reserved")
        if self.ports_free <= 0:
            raise PortExhaustedError(
                f"{self.name}: no port free for trunk to {peer_name!r}"
            )
        self.trunks.add(peer_name)

    def detach(self, endpoint_name: str) -> None:
        """Free the port held by ``endpoint_name``."""
        if endpoint_name not in self.links:
            raise KeyError(endpoint_name)
        del self.links[endpoint_name]

    def link_for(self, endpoint_name: str) -> Link:
        """The link of an attached endpoint."""
        return self.links[endpoint_name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Switch {self.name} {self.ports_used}/{self.ports_total} ports>"
        )


def switches_needed(node_count: int, spec: SwitchSpec = TESTBED_SWITCH) -> int:
    """ToR switches needed to attach ``node_count`` devices.

    This is the appendix's ``N_rack = ceil(N_server-IT / ports)`` term —
    e.g. 989 SBCs on 48-port Catalysts need 21 switches.
    """
    if node_count < 0:
        raise ValueError(f"negative node count: {node_count}")
    if node_count == 0:
        return 0
    return -(-node_count // spec.ports)  # ceiling division


__all__ = ["PortExhaustedError", "Switch", "switches_needed"]
