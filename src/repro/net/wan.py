"""Inter-region WAN fabric.

:mod:`repro.net` models the intra-cluster LAN: endpoints, access links,
and a switch skeleton.  A federation (:mod:`repro.federation`) composes
many such clusters into named *regions*, and the paths between them are
a different animal — tens of milliseconds of propagation delay, shared
long-haul bandwidth, and jitter that dwarfs serialization.  This module
models that tier on the same primitives:

- every region gets one *ingress* :class:`~repro.net.link.Link`
  (the front door its gateway traffic enters through), and
- every connected region pair gets one *pair* link (the long-haul path
  cross-region traffic rides).

Reusing :class:`~repro.net.link.Link` means the chaos hooks carry over
unchanged: a WAN partition is ``pair_link.drop_until(...)`` exactly like
an access-link outage, and an ingress brownout is ``link.degrade(...)``.
Latency math lives here (links model occupancy/fault state; WAN
propagation is a property of the route, not the NIC):

- ``ingress_latency_s(geo, region, now)`` — one-way client → region
  time: the configured base latency for that (geo, region) pair, plus
  deterministic lognormal jitter from a named RNG stream, plus any
  degradation on the region's ingress link.
- ``pair_delay_s(a, b, nbytes, now)`` — one-way region → region time
  for a payload: base latency + serialization at the pair bandwidth +
  jitter + fault state (a partition "waits out the outage", the same
  discrete-event simplification :mod:`repro.net.transfer` uses).

With ``jitter=0`` nowhere draws a random number, so a zero-jitter
fabric never perturbs any RNG stream — the property the federation's
bit-identity pin relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hardware.specs import GIGABIT_ETHERNET
from repro.net.link import Endpoint, Link
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class WanLinkSpec:
    """One WAN path's characteristics.

    ``latency_s`` is the one-way propagation delay, ``bandwidth_bps``
    the application-level throughput of the path, and ``jitter`` the
    sigma of a lognormal factor applied to the latency per message
    (0 disables jitter and all RNG draws).
    """

    latency_s: float
    bandwidth_bps: float = 1e9
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency cannot be negative")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.jitter < 0:
            raise ValueError("jitter cannot be negative")


def pair_key(region_a: str, region_b: str) -> str:
    """Canonical (sorted) name of a region pair, e.g. ``eu--us``."""
    if region_a == region_b:
        raise ValueError(f"a region pair needs two regions, got {region_a!r}")
    first, second = sorted((region_a, region_b))
    return f"{first}--{second}"


class WanFabric:
    """Ingress and inter-region links of a federation.

    Regions are registered first; ingress latencies are configured per
    (client geo, region) and pair links per region pair.  ``links``
    maps link names (``ingress-<region>``, ``wan-<a>--<b>``) to the
    underlying :class:`~repro.net.link.Link` objects — the surface the
    region-scoped chaos faults mutate.
    """

    def __init__(self, streams: Optional[RandomStreams] = None):
        self.streams = streams
        self.regions: List[str] = []
        #: Link name -> Link (chaos targets resolve against this).
        self.links: Dict[str, Link] = {}
        self._ingress_base: Dict[Tuple[str, str], WanLinkSpec] = {}
        self._pairs: Dict[str, WanLinkSpec] = {}

    # -- construction --------------------------------------------------------------------

    def add_region(self, name: str) -> None:
        if name in self.regions:
            raise ValueError(f"region {name!r} already registered")
        self.regions.append(name)
        self.links[f"ingress-{name}"] = Link(
            Endpoint(f"ingress-{name}", GIGABIT_ETHERNET, "x86-bare"),
            GIGABIT_ETHERNET.bandwidth_bps,
        )

    def set_ingress(self, geo: str, region: str, spec: WanLinkSpec) -> None:
        """Configure the client geo → region ingress path."""
        self._require_region(region)
        self._ingress_base[(geo, region)] = spec

    def connect(self, region_a: str, region_b: str, spec: WanLinkSpec) -> None:
        """Configure the long-haul path between two regions."""
        self._require_region(region_a)
        self._require_region(region_b)
        key = pair_key(region_a, region_b)
        self._pairs[key] = spec
        if f"wan-{key}" not in self.links:
            self.links[f"wan-{key}"] = Link(
                Endpoint(f"wan-{key}", GIGABIT_ETHERNET, "x86-bare"),
                GIGABIT_ETHERNET.bandwidth_bps,
            )

    def _require_region(self, name: str) -> None:
        if name not in self.regions:
            raise KeyError(f"unknown region {name!r}")

    # -- link lookup ---------------------------------------------------------------------

    def ingress_link(self, region: str) -> Link:
        self._require_region(region)
        return self.links[f"ingress-{region}"]

    def pair_link(self, region_a: str, region_b: str) -> Link:
        key = pair_key(region_a, region_b)
        try:
            return self.links[f"wan-{key}"]
        except KeyError:
            raise KeyError(f"regions {key} are not connected") from None

    def connected(self, region_a: str, region_b: str) -> bool:
        return pair_key(region_a, region_b) in self._pairs

    # -- latency model -------------------------------------------------------------------

    def _jitter_factor(self, stream: str, sigma: float) -> float:
        if sigma == 0.0 or self.streams is None:
            return 1.0
        return self.streams.lognormal_factor(stream, sigma)

    def ingress_spec(self, geo: str, region: str) -> WanLinkSpec:
        try:
            return self._ingress_base[(geo, region)]
        except KeyError:
            raise KeyError(
                f"no ingress path from geo {geo!r} to region {region!r}"
            ) from None

    def ingress_latency_s(self, geo: str, region: str, now: float) -> float:
        """One-way client → region time for one message at ``now``.

        Includes the configured base latency, per-message jitter, and
        any brownout degradation on the region's ingress link.  A
        dropped ingress link does *not* stall messages here — the
        gateway re-routes around declared outages instead of queueing
        into them — so only ``extra_latency_s`` is consulted.
        """
        spec = self.ingress_spec(geo, region)
        latency = spec.latency_s * self._jitter_factor(
            f"wan-ingress-{region}", spec.jitter
        )
        return latency + self.ingress_link(region).extra_latency_s

    def pair_delay_s(
        self, region_a: str, region_b: str, nbytes: int, now: float
    ) -> float:
        """One-way region → region time for ``nbytes`` entering at ``now``.

        Base latency + serialization at the pair bandwidth + jitter,
        plus the link's fault delay: a partitioned pair buffers the
        transfer until the partition heals (wait-out-the-outage, as in
        :class:`~repro.net.transfer.TransferModel`).
        """
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        key = pair_key(region_a, region_b)
        try:
            spec = self._pairs[key]
        except KeyError:
            raise KeyError(f"regions {key} are not connected") from None
        latency = spec.latency_s * self._jitter_factor(
            f"wan-pair-{key}", spec.jitter
        )
        serialization = nbytes * 8.0 / spec.bandwidth_bps
        return latency + serialization + self.links[f"wan-{key}"].fault_delay_s(now)

    # -- factories -----------------------------------------------------------------------

    @classmethod
    def single(cls, region: str, geo: Optional[str] = None) -> "WanFabric":
        """A degenerate one-region fabric with a zero-latency ingress.

        This is the bit-identity configuration: no latency, no jitter,
        no RNG draws — a federation over it simulates exactly the bare
        cluster.
        """
        fabric = cls()
        fabric.add_region(region)
        fabric.set_ingress(geo if geo is not None else region, region, WanLinkSpec(0.0))
        return fabric

    @classmethod
    def mesh(
        cls,
        regions: Tuple[str, ...],
        ingress_latency_s: float = 0.008,
        hop_latency_s: float = 0.030,
        bandwidth_bps: float = 2.5e8,
        jitter: float = 0.0,
        streams: Optional[RandomStreams] = None,
    ) -> "WanFabric":
        """A full mesh over a region ring.

        Each region is its own client geo (local clients see
        ``ingress_latency_s``); a remote geo pays one extra
        ``hop_latency_s`` per step of ring distance, which is also the
        pair-link latency.  This is deliberately simple — enough
        geographic structure for latency-aware routing to have a right
        answer, without a coordinate model.
        """
        if len(regions) < 1:
            raise ValueError("need at least one region")
        fabric = cls(streams=streams)
        for name in regions:
            fabric.add_region(name)
        count = len(regions)
        for i, region in enumerate(regions):
            for j, geo in enumerate(regions):
                ring_distance = min(abs(i - j), count - abs(i - j))
                fabric.set_ingress(
                    geo,
                    region,
                    WanLinkSpec(
                        ingress_latency_s + hop_latency_s * ring_distance,
                        bandwidth_bps,
                        jitter,
                    ),
                )
            for j in range(i + 1, count):
                ring_distance = min(j - i, count - (j - i))
                fabric.connect(
                    region,
                    regions[j],
                    WanLinkSpec(
                        hop_latency_s * ring_distance, bandwidth_bps, jitter
                    ),
                )
        return fabric


__all__ = ["WanFabric", "WanLinkSpec", "pair_key"]
