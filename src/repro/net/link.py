"""Network endpoints and links.

An :class:`Endpoint` is a NIC attached to a host, characterized by its
spec (bandwidth, efficiency) and its *stack latency* — the one-way time
the host's software spends per message (interrupt handling, TCP/IP
processing, and for microVMs the virtio + bridge detour).  A
:class:`Link` joins an endpoint to a switch port.

Stack latencies are calibrated to the three host classes in the paper's
testbed:

- ``arm-bare``   — MicroPython worker on the SBC (slow CPU, bare metal).
- ``x86-virtio`` — microVM guest behind virtio-net and a host bridge.
- ``x86-bare``   — bare-metal x86 host (orchestrator, hypervisor host).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.specs import NicSpec
from repro.sim.kernel import Environment
from repro.sim.resources import Resource

#: One-way per-message protocol-stack latency by host class, seconds.
STACK_LATENCY_S = {
    "arm-bare": 120e-6,
    "x86-virtio": 280e-6,
    "x86-bare": 60e-6,
}


@dataclass(frozen=True)
class Endpoint:
    """A NIC attached to a named host."""

    name: str
    nic: NicSpec
    host_class: str

    def __post_init__(self) -> None:
        if self.host_class not in STACK_LATENCY_S:
            raise ValueError(
                f"unknown host class {self.host_class!r}; "
                f"expected one of {sorted(STACK_LATENCY_S)}"
            )

    @property
    def stack_latency_s(self) -> float:
        """One-way per-message software latency at this endpoint."""
        return STACK_LATENCY_S[self.host_class]

    @property
    def goodput_bps(self) -> float:
        """Achievable application-level throughput of the NIC."""
        return self.nic.goodput_bps


class Link:
    """A full-duplex link between an endpoint and a switch port.

    When given an :class:`~repro.sim.kernel.Environment`, the link owns a
    capacity-1 :class:`~repro.sim.resources.Resource` per direction so
    simulated transfers can contend for it.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        port_bandwidth_bps: float,
        env: Optional[Environment] = None,
    ):
        if port_bandwidth_bps <= 0:
            raise ValueError("port bandwidth must be positive")
        self.endpoint = endpoint
        self.port_bandwidth_bps = port_bandwidth_bps
        self.env = env
        self.tx = Resource(env, capacity=1) if env is not None else None
        self.rx = Resource(env, capacity=1) if env is not None else None
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Chaos state: the link is dropped until this simulated time
        #: (frames buffer at the endpoints and flow once it recovers)...
        self.down_until = 0.0
        #: ...and/or degraded with extra one-way latency per message.
        self.extra_latency_s = 0.0

    def drop_until(self, until_s: float) -> None:
        """Take the link down until ``until_s`` (idempotent, extends)."""
        self.down_until = max(self.down_until, until_s)

    def degrade(self, extra_latency_s: float) -> None:
        """Add per-message latency (a flapping PHY, a saturated port)."""
        if extra_latency_s < 0:
            raise ValueError("extra latency cannot be negative")
        self.extra_latency_s = extra_latency_s

    def restore(self) -> None:
        """Clear any degradation (outages expire on their own)."""
        self.extra_latency_s = 0.0

    def fault_delay_s(self, now: float) -> float:
        """Extra one-way delay a message entering at ``now`` suffers."""
        outage = max(0.0, self.down_until - now)
        return outage + self.extra_latency_s

    @property
    def effective_bandwidth_bps(self) -> float:
        """The link runs at the slower of NIC goodput and port rate."""
        return min(self.endpoint.goodput_bps, self.port_bandwidth_bps)

    def serialization_s(self, nbytes: int) -> float:
        """Time to push ``nbytes`` onto the wire at the effective rate."""
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        return nbytes * 8.0 / self.effective_bandwidth_bps

    def transmit(self, nbytes: int):
        """Simulated transmission claiming the TX side (a process helper).

        Usage from a process::

            yield from link.transmit(65536)
        """
        if self.tx is None:
            raise RuntimeError("link was built without a simulation env")
        request = self.tx.request()
        yield request
        try:
            self.bytes_sent += nbytes
            yield self.env.timeout(self.serialization_s(nbytes))
        finally:
            self.tx.release(request)

    def receive(self, nbytes: int):
        """Simulated reception claiming the RX side (a process helper)."""
        if self.rx is None:
            raise RuntimeError("link was built without a simulation env")
        request = self.rx.request()
        yield request
        try:
            self.bytes_received += nbytes
            yield self.env.timeout(self.serialization_s(nbytes))
        finally:
            self.rx.release(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.endpoint.name} "
            f"{self.effective_bandwidth_bps / 1e6:.0f} Mbps>"
        )


__all__ = ["Endpoint", "Link", "STACK_LATENCY_S"]
