"""Policy replay on virtual queue state.

The shard coordinator owns every assignment decision: shards simulate
worker execution between rendezvous boundaries, report completions and
liveness transitions, and the coordinator replays the assignment policy
against integer *virtual* queue loads that mirror what the serial
orchestrator's queues would hold at each decision instant.

Replayers must reproduce the serial policies' selections **exactly**,
including tie-breaks:

* ``random-sampling`` — ``rng.randrange(len(candidates))`` indexed into
  the candidate list (alive queues in worker-id order);
* ``round-robin`` — a monotone counter modulo the candidate count;
* ``least-loaded`` — serial scans ``loads.index(min(loads))``: the
  lowest-id worker among the minimum loads.  That is O(N) per job —
  ruinous at 100k workers × 10⁵ jobs — so the replayer keeps a lazy
  min-heap of ``(load, worker_id)`` entries: stale entries (the load
  changed since push, or the worker died) are discarded on pop, and the
  surviving top is precisely the lowest-id minimum, at O(log N) per
  update;
* ``energy-aware`` — the same heap trick twice (preferred platform vs.
  the rest) plus the serial spill rule.  Serial keeps the *first*
  strict minimum per group, i.e. the lowest-id minimum — exactly the
  ``(load, id)`` heap order.

Loads count *outstanding* work (queued + in flight), matching
``WorkerQueue.outstanding``, and are integers — so the virtual state is
exact, with no float drift to accumulate across boundaries.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Optional, Sequence

from repro.core.platform import ARM

#: Policies whose decisions depend only on (rng state, candidate order,
#: outstanding counts, platform tags) — i.e. state the coordinator can
#: mirror exactly.  ``packing`` reads per-board power state and queue
#: depth mid-simulation, which only the owning shard knows, so it is
#: not shardable.
SHARDABLE_POLICIES = (
    "random-sampling",
    "round-robin",
    "least-loaded",
    "energy-aware",
    "carbon-aware",
)


class VirtualCluster:
    """Integer mirror of the serial orchestrator's scheduling state."""

    def __init__(self, platforms: Sequence[str]):
        #: Per-worker outstanding job counts (queued + running).
        self.loads: List[int] = [0] * len(platforms)
        self.platforms = tuple(platforms)
        self.dead: set = set()
        self._alive_sorted: Optional[List[int]] = None  # None = all alive

    @property
    def worker_count(self) -> int:
        return len(self.loads)

    def alive_ids(self) -> List[int]:
        """Alive worker ids in ascending order — the order the serial
        orchestrator's candidate queue list presents them in."""
        if self._alive_sorted is None:
            return list(range(len(self.loads)))
        return self._alive_sorted

    def mark_dead(self, worker_id: int) -> None:
        self.dead.add(worker_id)
        self._alive_sorted = [
            wid for wid in range(len(self.loads)) if wid not in self.dead
        ]

    def mark_alive(self, worker_id: int) -> None:
        self.dead.discard(worker_id)
        if not self.dead:
            self._alive_sorted = None
        else:
            self._alive_sorted = [
                wid for wid in range(len(self.loads)) if wid not in self.dead
            ]


class PolicyReplayer:
    """Replays one assignment policy's selections on virtual state."""

    def __init__(self, state: VirtualCluster):
        self.state = state

    def select(self, job) -> int:
        """The worker id the serial policy would pick right now."""
        raise NotImplementedError

    def on_load_change(self, worker_id: int) -> None:
        """The load of ``worker_id`` changed (assign/complete/salvage)."""

    def on_alive_change(self, worker_id: int) -> None:
        """``worker_id`` died or was revived."""

    def advance_to(self, now: float) -> None:
        """The coordinator's decision clock moved to ``now``.

        Time-varying policies (carbon-aware) re-read their signals from
        this; the integer-state replayers ignore it — a no-op keeps the
        coordinator's call site unconditional.
        """


class RandomSamplingReplayer(PolicyReplayer):
    """``rng.randrange(len(candidates))`` over alive ids in order."""

    def __init__(self, state: VirtualCluster, seed: int):
        super().__init__(state)
        # Serial harness default: RandomSamplingPolicy(random.Random(seed)).
        self.rng = random.Random(seed)

    def select(self, job) -> int:
        alive = self.state.alive_ids()
        if not alive:
            raise RuntimeError("no alive workers available")
        return alive[self.rng.randrange(len(alive))]


class RoundRobinReplayer(PolicyReplayer):
    def __init__(self, state: VirtualCluster):
        super().__init__(state)
        self._next = 0

    def select(self, job) -> int:
        alive = self.state.alive_ids()
        if not alive:
            raise RuntimeError("no alive workers available")
        index = self._next % len(alive)
        self._next += 1
        return alive[index]


class _LazyMinHeap:
    """Min-heap of ``(load, worker_id)`` with lazy invalidation."""

    def __init__(self, state: VirtualCluster, members: Sequence[int]):
        self.state = state
        self.members = frozenset(members)
        self.heap = [(state.loads[wid], wid) for wid in sorted(members)]
        heapq.heapify(self.heap)

    def push(self, worker_id: int) -> None:
        if worker_id in self.members:
            heapq.heappush(
                self.heap, (self.state.loads[worker_id], worker_id)
            )

    def peek(self) -> Optional[tuple]:
        """Current ``(load, worker_id)`` minimum among alive members.

        Lowest load first, lowest id among equals — identical to the
        serial left-to-right scan's first-minimum tie-break.
        """
        loads = self.state.loads
        dead = self.state.dead
        heap = self.heap
        while heap:
            load, wid = heap[0]
            if wid in dead or loads[wid] != load:
                heapq.heappop(heap)  # stale entry
                continue
            return load, wid
        return None


class LeastLoadedReplayer(PolicyReplayer):
    def __init__(self, state: VirtualCluster):
        super().__init__(state)
        self._heap = _LazyMinHeap(state, range(state.worker_count))

    def select(self, job) -> int:
        best = self._heap.peek()
        if best is None:
            raise RuntimeError("no alive workers available")
        return best[1]

    def on_load_change(self, worker_id: int) -> None:
        self._heap.push(worker_id)

    def on_alive_change(self, worker_id: int) -> None:
        self._heap.push(worker_id)


class EnergyAwareReplayer(PolicyReplayer):
    """Two lazy heaps + the serial spill rule (see EnergyAwarePolicy)."""

    def __init__(
        self,
        state: VirtualCluster,
        spill_threshold: int = 2,
        preferred: str = ARM,
    ):
        super().__init__(state)
        self.spill_threshold = spill_threshold
        preferred_ids = [
            wid
            for wid in range(state.worker_count)
            if state.platforms[wid] == preferred
        ]
        other_ids = [
            wid
            for wid in range(state.worker_count)
            if state.platforms[wid] != preferred
        ]
        self._preferred = _LazyMinHeap(state, preferred_ids)
        self._other = _LazyMinHeap(state, other_ids)

    def select(self, job) -> int:
        best_pref = self._preferred.peek()
        best_other = self._other.peek()
        if best_pref is None and best_other is None:
            raise RuntimeError("no alive workers available")
        if best_pref is None:
            return best_other[1]
        if best_other is None:
            return best_pref[1]
        if (
            best_pref[0] >= self.spill_threshold
            and best_other[0] < best_pref[0]
        ):
            return best_other[1]
        return best_pref[1]

    def on_load_change(self, worker_id: int) -> None:
        self._preferred.push(worker_id)
        self._other.push(worker_id)

    def on_alive_change(self, worker_id: int) -> None:
        self.on_load_change(worker_id)


class CarbonAwareReplayer(PolicyReplayer):
    """Time-varying preferred platform over per-platform lazy heaps.

    Mirrors :class:`~repro.core.scheduler.CarbonAwarePolicy` exactly:
    the preferred platform at each decision instant comes from the same
    :func:`~repro.core.scheduler.carbon_preferred_platform` helper over
    the same pre-sampled signals, then the serial energy-aware spill
    rule runs with that preference.  The coordinator feeds decision
    time through :meth:`advance_to`; signals are never *sampled* here,
    only read, so shard and serial runs see identical curves.
    """

    def __init__(
        self,
        state: VirtualCluster,
        signals,
        joules_weights=None,
        spill_threshold: int = 2,
        preferred: str = ARM,
    ):
        super().__init__(state)
        self.signals = dict(signals) if signals else {}
        self.joules_weights = dict(joules_weights) if joules_weights else {}
        self.spill_threshold = spill_threshold
        self.default_preferred = preferred
        self._now = 0.0
        platforms = sorted(set(state.platforms))
        self._heaps = {
            platform: _LazyMinHeap(
                state,
                [
                    wid
                    for wid in range(state.worker_count)
                    if state.platforms[wid] == platform
                ],
            )
            for platform in platforms
        }

    def advance_to(self, now: float) -> None:
        self._now = now

    def select(self, job) -> int:
        from repro.core.scheduler import carbon_preferred_platform

        if self.signals:
            preferred = carbon_preferred_platform(
                self.signals, self.joules_weights, self._now,
                self.default_preferred,
            )
        else:
            preferred = self.default_preferred
        best_pref = None
        best_other = None
        for platform, heap in self._heaps.items():
            top = heap.peek()
            if top is None:
                continue
            if platform == preferred:
                best_pref = top
            elif best_other is None or top < best_other:
                # (load, id) tuple order = the serial scan's first-
                # minimum tie-break across the non-preferred queues.
                best_other = top
        if best_pref is None and best_other is None:
            raise RuntimeError("no alive workers available")
        if best_pref is None:
            return best_other[1]
        if best_other is None:
            return best_pref[1]
        if (
            best_pref[0] >= self.spill_threshold
            and best_other[0] < best_pref[0]
        ):
            return best_other[1]
        return best_pref[1]

    def on_load_change(self, worker_id: int) -> None:
        self._heaps[self.state.platforms[worker_id]].push(worker_id)

    def on_alive_change(self, worker_id: int) -> None:
        self.on_load_change(worker_id)


def make_replayer(
    policy_name: str,
    state: VirtualCluster,
    seed: int,
    spill_threshold: int = 2,
    preferred: str = ARM,
    signals=None,
    joules_weights=None,
) -> PolicyReplayer:
    """Build the replayer matching a serial policy configuration."""
    if policy_name == "random-sampling":
        return RandomSamplingReplayer(state, seed)
    if policy_name == "round-robin":
        return RoundRobinReplayer(state)
    if policy_name == "least-loaded":
        return LeastLoadedReplayer(state)
    if policy_name == "energy-aware":
        return EnergyAwareReplayer(
            state, spill_threshold=spill_threshold, preferred=preferred
        )
    if policy_name == "carbon-aware":
        return CarbonAwareReplayer(
            state,
            signals=signals,
            joules_weights=joules_weights,
            spill_threshold=spill_threshold,
            preferred=preferred,
        )
    raise ValueError(
        f"policy {policy_name!r} is not shardable; "
        f"supported: {SHARDABLE_POLICIES}"
    )


__all__ = [
    "CarbonAwareReplayer",
    "EnergyAwareReplayer",
    "LeastLoadedReplayer",
    "PolicyReplayer",
    "RandomSamplingReplayer",
    "RoundRobinReplayer",
    "SHARDABLE_POLICIES",
    "VirtualCluster",
    "make_replayer",
]
