"""One shard of a sharded simulation.

A :class:`ShardRuntime` owns a partially-built cluster: the **full**
topology, queue list, and id space (so endpoint names, worker ids, and
per-worker RNG stream names match the serial build exactly), but
hardware, GPIO lines, and worker processes only for its local worker
ids.  Between rendezvous boundaries it advances the simulation kernel
over a bounded window; at each boundary the coordinator injects the
assignments it decided (new submissions, chaos-salvaged pushes,
cross-shard migrations) and collects what happened inside the window
(completions, worker deaths/revivals, buffered salvage requests).

The runtime never makes a scheduling decision.  The shard cluster's
policy is a sentinel that raises if consulted, and the orchestrator's
``assign_override`` hook captures the one shard-side path that would
reach the policy — chaos recovery reassigning a dead board's jobs — and
buffers it for the coordinator instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.blueprint import (
    ClusterBlueprint,
    PoolDescriptor,
    compute_blueprint,
)
from repro.cluster.hybrid import HybridCluster
from repro.cluster.microfaas import MicroFaaSCluster
from repro.cluster.pool import SbcPool
from repro.core.controlplane import ControlPlaneModel
from repro.core.job import Job, JobStatus
from repro.core.scheduler import AssignmentPolicy
from repro.obs.trace import TraceConfig
from repro.reliability.chaos import ChaosEngine, ChaosPlan
from repro.shard.partition import PoolShape
from repro.shard.replay import SHARDABLE_POLICIES
from repro.sim.kernel import SimulationError
from repro.workloads.profiles import profile_for


class ShardRemotePolicy(AssignmentPolicy):
    """Sentinel installed on shard clusters: every assignment decision
    belongs to the coordinator, so consulting this policy is a protocol
    bug, not a fallback."""

    name = "shard-remote"

    def select(self, job, queues, is_powered) -> int:
        raise RuntimeError(
            "shard-side policy consulted; assignments must come from "
            "the shard coordinator"
        )


@dataclass(frozen=True)
class ClusterSpec:
    """Picklable description of the cluster a sharded run simulates.

    Carries exactly the knobs the sharded protocol supports; building
    with ``local_ids=None`` yields the serial twin the determinism
    tests compare against.
    """

    kind: str = "microfaas"  # "microfaas" | "hybrid"
    worker_count: int = 10  # microfaas
    sbc_count: int = 0  # hybrid
    vm_count: int = 0  # hybrid
    seed: int = 0
    #: Assignment policy name (None: the platform default —
    #: random-sampling for microfaas, energy-aware for hybrid).
    policy: Optional[str] = None
    spill_threshold: int = 2
    jitter_sigma: float = 0.06
    telemetry_exact: bool = True
    control_plane: Optional[ControlPlaneModel] = None
    trace: Optional[TraceConfig] = None
    chaos_plan: Optional[ChaosPlan] = None
    chaos_detection_delay_s: float = 1.0
    chaos_max_power_cycles: int = 3
    #: Per-worker power cap in watts (None: uncapped).  Applied to each
    #: pool at build time on shards and serial twins alike — DVFS state
    #: is per-board, so capping shards independently is exact.
    power_cap_watts: Optional[float] = None
    #: Carbon/price signals for the carbon-aware policy: platform tag ->
    #: :class:`~repro.energy.controlplane.CarbonSignal`.  Signals are
    #: pre-sampled (picklable) so shards and the coordinator read
    #: identical curves.
    carbon_signals: Optional[dict] = None
    #: Platform tag -> joules-per-function weight for the carbon cost.
    carbon_weights: Optional[dict] = None

    @property
    def policy_name(self) -> str:
        if self.policy is not None:
            return self.policy
        return "random-sampling" if self.kind == "microfaas" else "energy-aware"

    @property
    def total_workers(self) -> int:
        if self.kind == "microfaas":
            return self.worker_count
        return self.sbc_count + self.vm_count

    def validate(self) -> None:
        if self.kind not in ("microfaas", "hybrid"):
            raise ValueError(f"unknown cluster kind {self.kind!r}")
        if self.total_workers < 1:
            raise ValueError("need at least one worker")
        if self.policy_name not in SHARDABLE_POLICIES:
            raise ValueError(
                f"policy {self.policy_name!r} is not shardable; "
                f"supported: {SHARDABLE_POLICIES}"
            )
        if self.power_cap_watts is not None and self.power_cap_watts <= 0:
            raise ValueError("power cap must be positive watts")
        if self.trace is not None and self.trace.sample_rate not in (0.0, 1.0):
            raise ValueError(
                "sharded tracing needs sample_rate 0.0 or 1.0: fractional "
                "rates draw from a sequential sampler stream whose order "
                "depends on global submission interleaving"
            )
        if self.chaos_plan is not None:
            if self.chaos_plan.has_shared_fabric_events():
                raise ValueError(
                    "sharded chaos supports board/link faults only; "
                    "switch and backend outages touch cluster-shared state"
                )
            if self.trace is not None and self.trace.sample_rate > 0:
                raise ValueError(
                    "tracing with chaos is not shardable: a migrated "
                    "job's spans would split across shard recorders"
                )

    def pool_shapes(self) -> Tuple[PoolShape, ...]:
        """Pool sizes in build order, for the partitioner."""
        if self.kind == "microfaas":
            return (PoolShape(self.worker_count),)
        shapes = []
        if self.sbc_count:
            shapes.append(PoolShape(self.sbc_count))
        if self.vm_count:
            shapes.append(PoolShape(self.vm_count, divisible=False))
        return tuple(shapes)

    def platforms(self) -> Tuple[str, ...]:
        """Per-worker platform tags in global id order."""
        from repro.core.platform import ARM, X86

        if self.kind == "microfaas":
            return (ARM,) * self.worker_count
        return (ARM,) * self.sbc_count + (X86,) * self.vm_count

    def serial_policy(self) -> AssignmentPolicy:
        """The policy object a serial run of this spec uses — seeded the
        same way the coordinator's replayer assumes."""
        import random

        from repro.core.scheduler import EnergyAwarePolicy, make_policy

        name = self.policy_name
        if name == "random-sampling":
            return make_policy(name, random.Random(self.seed))
        if name == "energy-aware":
            return EnergyAwarePolicy(spill_threshold=self.spill_threshold)
        if name == "carbon-aware":
            from repro.core.scheduler import CarbonAwarePolicy

            return CarbonAwarePolicy(
                signals=self.carbon_signals,
                joules_weights=self.carbon_weights,
                spill_threshold=self.spill_threshold,
            )
        return make_policy(name)

    def blueprint(self) -> ClusterBlueprint:
        """Construction skeleton for this spec's cluster shape.

        The descriptors mirror the pools :meth:`build` composes (the
        facades use the default hardware specs, so the testbed switch
        model is the only ToR); ``ClusterBlueprint.bind`` re-validates
        the correspondence against the live pools at build time.
        """
        from repro.hardware.specs import TESTBED_SWITCH

        descriptors = []
        if self.kind == "microfaas":
            descriptors.append(
                PoolDescriptor(
                    kind="sbc",
                    worker_count=self.worker_count,
                    switch_ports=TESTBED_SWITCH.ports,
                )
            )
        else:
            if self.sbc_count:
                descriptors.append(
                    PoolDescriptor(
                        kind="sbc",
                        worker_count=self.sbc_count,
                        switch_ports=TESTBED_SWITCH.ports,
                    )
                )
            if self.vm_count:
                descriptors.append(
                    PoolDescriptor(kind="vm", worker_count=self.vm_count)
                )
        return compute_blueprint(descriptors)

    def build(
        self,
        local_ids=None,
        policy: Optional[AssignmentPolicy] = None,
        blueprint: Optional[ClusterBlueprint] = None,
    ):
        """Construct the cluster (serial twin when ``local_ids`` is None).

        Without an explicit ``policy``, the serial twin schedules with
        :meth:`serial_policy` — the named policy from the spec, not the
        platform default (a spec naming ``least-loaded`` must not fall
        back to random-sampling).
        """
        if policy is None:
            policy = self.serial_policy()
        if self.kind == "microfaas":
            cluster = MicroFaaSCluster(
                worker_count=self.worker_count,
                seed=self.seed,
                policy=policy,
                jitter_sigma=self.jitter_sigma,
                telemetry_exact=self.telemetry_exact,
                control_plane=self.control_plane,
                trace=self.trace,
                local_ids=local_ids,
                blueprint=blueprint,
            )
        else:
            cluster = HybridCluster(
                sbc_count=self.sbc_count,
                vm_count=self.vm_count,
                seed=self.seed,
                policy=policy,
                jitter_sigma=self.jitter_sigma,
                telemetry_exact=self.telemetry_exact,
                control_plane=self.control_plane,
                trace=self.trace,
                local_ids=local_ids,
                blueprint=blueprint,
            )
        if self.power_cap_watts is not None:
            cluster.set_power_cap(self.power_cap_watts)
        if hasattr(policy, "bind_clock"):
            policy.bind_clock(lambda: cluster.env.now)
        return cluster


@dataclass(frozen=True)
class ShardSpec:
    """Everything one shard process needs to build and run its slice."""

    shard_index: int
    shard_count: int
    cluster: ClusterSpec
    local_ids: Tuple[int, ...]
    #: Construction skeleton computed once by the coordinator and
    #: shipped (387 bytes of names and ints, not a topology) into every
    #: shard process; None falls back to the legacy full rebuild.
    blueprint: Optional[ClusterBlueprint] = None


def job_state(job: Job) -> tuple:
    """Picklable snapshot of a mid-flight job for cross-shard migration
    (taken after ``reset_for_retry``, so no attempt state remains)."""
    return (
        job.job_id,
        job.function,
        job.input_bytes,
        job.output_bytes,
        job.idempotency_key,
        job.attempts,
        job.t_submit,
        job.t_queued,
    )


def job_from_state(state: tuple) -> Job:
    job_id, function, input_bytes, output_bytes, key, attempts, t_submit, t_queued = state
    job = Job(
        job_id=job_id,
        function=function,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        idempotency_key=key,
    )
    job.attempts = attempts
    job.t_submit = t_submit
    job.t_queued = t_queued
    return job


class ShardRuntime:
    """Builds and drives one shard's partial cluster."""

    def __init__(self, spec: ShardSpec):
        spec.cluster.validate()
        self.spec = spec
        self.local_ids = frozenset(spec.local_ids)
        self.cluster = spec.cluster.build(
            local_ids=spec.local_ids,
            policy=ShardRemotePolicy(),
            blueprint=spec.blueprint,
        )
        orch = self.cluster.orchestrator
        orch.assign_override = self._capture_salvage
        orch.on_complete = self._record_completion
        orch.on_worker_dead = self._record_dead
        orch.on_worker_alive = self._record_alive
        # Per-window report buffers.
        self._completions: List[Tuple[float, int, int]] = []
        self._salvages: List[tuple] = []
        self._liveness: List[Tuple[float, str, int]] = []
        #: Salvaged Job objects awaiting a coordinator decision,
        #: keyed by job id.
        self._held_jobs: Dict[int, Job] = {}
        self._salvage_seq = 0
        self.chaos: Optional[ChaosEngine] = None
        if spec.cluster.chaos_plan is not None:
            self.chaos = ChaosEngine(
                self.cluster,
                detection_delay_s=spec.cluster.chaos_detection_delay_s,
                max_power_cycles=spec.cluster.chaos_max_power_cycles,
            )
            self.chaos.apply(
                spec.cluster.chaos_plan.restrict_to_workers(self.local_ids)
            )

    # -- orchestrator hooks ---------------------------------------------------

    def _capture_salvage(self, job: Job, exclude) -> bool:
        """Intercept chaos recovery's reassignment: hold the job and ask
        the coordinator where it goes (it replays the policy on global
        queue state at this boundary)."""
        now = self.cluster.env.now
        self._held_jobs[job.job_id] = job
        self._salvages.append(
            (now, self._salvage_seq, job.job_id, job_state(job))
        )
        self._salvage_seq += 1
        return True

    def _record_completion(self, job: Job, record) -> None:
        self._completions.append(
            (record.t_completed, record.worker_id, job.job_id)
        )

    def _record_dead(self, worker_id: int) -> None:
        self._liveness.append((self.cluster.env.now, "dead", worker_id))

    def _record_alive(self, worker_id: int) -> None:
        self._liveness.append((self.cluster.env.now, "alive", worker_id))

    # -- protocol verbs -------------------------------------------------------

    def inject(self, directives: List[tuple]) -> None:
        """Apply coordinator decisions at the current boundary time."""
        orch = self.cluster.orchestrator
        env = self.cluster.env
        env.begin_bulk()
        try:
            self._inject(orch, directives)
        finally:
            env.end_bulk()

    def _inject(self, orch, directives: List[tuple]) -> None:
        for directive in directives:
            verb = directive[0]
            if verb == "new":
                _, job_id, function, worker_id = directive
                profile = profile_for(function)
                job = Job(
                    job_id=job_id,
                    function=function,
                    input_bytes=profile.input_bytes,
                    output_bytes=profile.output_bytes,
                )
                orch.submit_assigned(job, worker_id)
            elif verb == "salvage":
                _, job_id, worker_id = directive
                job = self._held_jobs.pop(job_id)
                orch.queues[worker_id].push(job)
            elif verb == "migrate_out":
                _, job_id = directive
                self._held_jobs.pop(job_id)
                orch.release_job(job_id)
            elif verb == "adopt":
                _, state, worker_id = directive
                orch.adopt_job(job_from_state(state), worker_id)
            else:
                raise ValueError(f"unknown directive {verb!r}")

    def advance(self, until: Optional[float]) -> dict:
        """Run the kernel to ``until`` (or drain local pending work when
        None), then report what happened inside the window."""
        env = self.cluster.env
        orch = self.cluster.orchestrator
        if until is not None:
            if until > env.now:
                env.run(until=until)
        else:
            # Per-event stepping with the pending check between events:
            # draining a whole timestamp after pending hits zero could pull
            # extra completions into this report window and perturb the
            # cross-shard merge order.  Hoisted locals keep the loop cheap.
            step = env.step
            queue = env._queue
            while orch._submitted > orch._completed:
                if not queue:
                    raise SimulationError(
                        f"shard {self.spec.shard_index} deadlocked with "
                        f"{orch.pending} pending jobs and no events"
                    )
                step()
        report = {
            "shard": self.spec.shard_index,
            "now": env.now,
            "pending": orch.pending,
            "completions": self._completions,
            "salvages": self._salvages,
            "liveness": self._liveness,
        }
        self._completions = []
        self._salvages = []
        self._liveness = []
        return report

    def finish(self, t_global: float) -> dict:
        """Flush local events up to the global end time and collect this
        shard's contribution to the merged result."""
        env = self.cluster.env
        if t_global > env.now:
            env.run(until=t_global)
        board_energy = []
        for pool_index, pool in enumerate(self.cluster.pools):
            if isinstance(pool, SbcPool):
                board_energy.append(
                    (pool_index, pool.board_energy_joules(0.0, t_global))
                )
            elif getattr(pool, "vms", None):
                # An indivisible pool reports from its owning shard only.
                first_id = pool.worker_ids[0]
                board_energy.append(
                    (pool_index, [(first_id, pool.energy_joules(0.0, t_global))])
                )
        counters = {
            "resubmissions": self.cluster.orchestrator.resubmissions,
            "switch_count": len(self.cluster.switches),
        }
        cp = self.cluster.control_plane
        if cp is not None:
            counters["cp_dispatches"] = cp.dispatches
            counters["cp_collections"] = cp.collections
            counters["cp_busy_seconds"] = cp.busy_seconds
        chaos_stats = None
        if self.chaos is not None:
            chaos_stats = {
                "injected": self.chaos.injected,
                "skipped_last_worker": self.chaos.skipped_last_worker,
                "skipped_overlap": self.chaos.skipped_overlap,
                "skipped_unsupported": self.chaos.skipped_unsupported,
                "recovered_jobs": self.chaos.recovered_jobs,
                "boards_abandoned": self.chaos.boards_abandoned,
                "recovery_times": list(self.chaos.recovery_times),
            }
        return {
            "shard": self.spec.shard_index,
            "env_now": env.now,
            "telemetry": self.cluster.orchestrator.telemetry,
            "board_energy": board_energy,
            "counters": counters,
            "chaos": chaos_stats,
            "traces": list(self.cluster.finished_traces()),
            "peak_rss_mib": _peak_rss_mib(),
        }


def _peak_rss_mib() -> float:
    """This process's peak resident set size, in MiB."""
    import resource
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return peak / 1024.0 if sys.platform != "darwin" else peak / (1024.0**2)


__all__ = [
    "ClusterSpec",
    "ShardRemotePolicy",
    "ShardRuntime",
    "ShardSpec",
    "job_from_state",
    "job_state",
]
