"""Worker partitioning for sharded simulation.

A shard owns a contiguous slice of each divisible pool's global worker
ids (SBC boards are independent hardware, so any slice works) while
indivisible pools — a :class:`~repro.cluster.pool.MicroVmPool` is one
rack server, one hypervisor, one wall meter — land whole on a single
shard.  Contiguity is cosmetic (ids are matched by set membership
everywhere), but it keeps shard contents human-readable and makes the
balanced split obvious.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class PoolShape:
    """The partitioner's view of one pool: how many global worker ids
    it allocates (in build order) and whether it can be split."""

    worker_count: int
    divisible: bool = True


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of every global worker id to exactly one shard."""

    #: Per shard: sorted tuple of the global worker ids it simulates.
    shard_worker_ids: Tuple[Tuple[int, ...], ...]

    @property
    def shard_count(self) -> int:
        return len(self.shard_worker_ids)

    @property
    def worker_count(self) -> int:
        return sum(len(ids) for ids in self.shard_worker_ids)

    def shard_of(self, worker_id: int) -> int:
        """The shard simulating ``worker_id``."""
        return self._owner[worker_id]

    def __post_init__(self) -> None:
        owner = {}
        for shard, ids in enumerate(self.shard_worker_ids):
            for worker_id in ids:
                if worker_id in owner:
                    raise ValueError(
                        f"worker {worker_id} assigned to two shards"
                    )
                owner[worker_id] = shard
        if set(owner) != set(range(len(owner))):
            raise ValueError("worker ids must cover 0..N-1 exactly")
        object.__setattr__(self, "_owner", owner)


def plan_shards(pools: Sequence[PoolShape], shards: int) -> ShardPlan:
    """Balanced partition of the pools' global id space into ``shards``.

    Divisible pools are cut into near-equal contiguous runs, assigned
    round-robin to the currently lightest shards; indivisible pools go
    whole to the lightest shard at their turn.  Pools are processed in
    build order, matching the harness's global id allocation.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    total = sum(pool.worker_count for pool in pools)
    if total < 1:
        raise ValueError("need at least one worker")
    if shards > total:
        raise ValueError(
            f"cannot split {total} workers into {shards} shards"
        )
    assigned: List[List[int]] = [[] for _ in range(shards)]
    next_id = 0
    for pool in pools:
        ids = list(range(next_id, next_id + pool.worker_count))
        next_id += pool.worker_count
        if not ids:
            continue
        if not pool.divisible:
            lightest = min(range(shards), key=lambda s: (len(assigned[s]), s))
            assigned[lightest].extend(ids)
            continue
        # Cut into `shards` near-equal contiguous runs (some possibly
        # empty for tiny pools) and hand run k to shard k: worker i of
        # an N-worker pool lands on shard i * shards // N.
        base, extra = divmod(len(ids), shards)
        cursor = 0
        for shard in range(shards):
            size = base + (1 if shard < extra else 0)
            assigned[shard].extend(ids[cursor:cursor + size])
            cursor += size
    return ShardPlan(
        shard_worker_ids=tuple(
            tuple(sorted(ids)) for ids in assigned
        )
    )


__all__ = ["PoolShape", "ShardPlan", "plan_shards"]
