"""The shard coordinator: lockstep-exact conservative-lookahead runs.

One simulation, N shards, bit-identical results.  The protocol exploits
a structural property of the MicroFaaS model: between *globally known
decision boundaries*, workers never interact — transfer latencies are
stateless functions of the (identical, fully replicated) topology,
per-worker RNG streams are name-derived and disjoint, and the only
coupling is the orchestrator's assignment policy.  The decision
boundaries are known in advance:

* ``t = 0`` for saturated submission bursts;
* the 1-second arrival interval marks of the paper's arrival process
  (the schedule is pre-computed and draw-free);
* every board-level chaos event's *detection* time (``event time +
  detection delay``), where the serial engine drains a dead board's
  queue through the policy — and the chaos plan is pre-sampled from
  dedicated named streams, so all parties know it up front.

So the coordinator advances every shard to the next boundary, replays
the assignment policy on integer virtual queue state (fed by the
shards' completion/liveness reports, applied in timestamp order), and
injects the resulting placements.  Shards run their windows in
parallel; no shard ever waits on another except at boundaries.
Conservative lookahead degenerates to an exact schedule: the lookahead
between boundaries is infinite because *no* cross-shard event can
occur inside a window.

Determinism caveat (documented bound): event timestamps are sums of
continuous draws (lognormal jitter, exponential gaps), so collisions
between completions, detections, and boundary marks have measure zero;
on the pinned configurations the regression tests assert exact
equality.  In streaming-telemetry mode, merged means carry
float-summation-order noise (see ``TelemetryCollector.merge``);
counts, throughput, energy, and duration remain bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.result import ClusterResult
from repro.core.platform import ARM, HYBRID, MICROFAAS, X86
from repro.core.telemetry import TelemetryCollector
from repro.obs.trace import merge_traces
from repro.shard.executors import InlineExecutor, ProcessExecutor
from repro.shard.partition import ShardPlan, plan_shards
from repro.shard.replay import VirtualCluster, make_replayer
from repro.shard.runtime import ClusterSpec, ShardSpec
from repro.workloads.base import ALL_FUNCTION_NAMES

#: Tie-break ranks for same-timestamp events, mirroring the serial
#: in-event order: a detection marks the worker dead, then salvages its
#: queue; revivals are separate events.  (Cross-kind timestamp
#: collisions have measure zero anyway — see the module docstring.)
_RANK_COMPLETION = 0
_RANK_DEAD = 1
_RANK_SALVAGE = 2
_RANK_ALIVE = 3


@dataclass
class ShardedRunStats:
    """Side-channel observability for a sharded run (the headline
    numbers live in the returned :class:`ClusterResult`)."""

    boundaries: int = 0
    rounds: int = 0
    migrations: int = 0
    salvage_assignments: int = 0
    peak_shard_rss_mib: float = 0.0
    switch_count: int = 0
    cp_busy_seconds: float = 0.0
    cp_dispatches: int = 0
    cp_collections: int = 0
    resubmissions: int = 0
    chaos: Optional[dict] = None


class ShardedCluster:
    """Drives one simulation split across N shard processes.

    ``executor`` selects the backend: ``"process"`` forks one child per
    shard (the wall-clock win); ``"inline"`` runs every shard in this
    process — same code path, same results, used by determinism tests.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        shards: int,
        executor: str = "process",
    ):
        spec.validate()
        self.spec = spec
        self.plan: ShardPlan = plan_shards(spec.pool_shapes(), shards)
        platforms = spec.platforms()
        self.state = VirtualCluster(platforms)
        self.replayer = make_replayer(
            spec.policy_name,
            self.state,
            spec.seed,
            spill_threshold=spec.spill_threshold,
            preferred=ARM,
            signals=spec.carbon_signals,
            joules_weights=spec.carbon_weights,
        )
        self._owner = [
            self.plan.shard_of(wid) for wid in range(len(platforms))
        ]
        self.stats = ShardedRunStats()
        self._next_job_id = 0
        self._submitted = 0
        self._completed = 0
        self._last_completion = 0.0
        boundaries = ()
        if spec.chaos_plan is not None:
            boundaries = spec.chaos_plan.board_detect_times(
                spec.chaos_detection_delay_s
            )
        self._chaos_boundaries = list(boundaries)
        self._chaos_cursor = 0
        # One blueprint for the whole fleet: each shard adopts the
        # precomputed construction skeleton instead of replaying the
        # full serial build to rediscover switch growth (see
        # repro.cluster.blueprint).
        blueprint = spec.blueprint()
        specs = [
            ShardSpec(
                shard_index=index,
                shard_count=self.plan.shard_count,
                cluster=spec,
                local_ids=self.plan.shard_worker_ids[index],
                blueprint=blueprint,
            )
            for index in range(self.plan.shard_count)
        ]
        if executor == "process":
            self.executor = ProcessExecutor(specs)
        elif executor == "inline":
            self.executor = InlineExecutor(specs)
        else:
            raise ValueError(f"unknown executor {executor!r}")

    # -- assignment ------------------------------------------------------------

    def _assign_new(self, function: str, directives: List[list]) -> None:
        """Mirror ``Orchestrator.submit_function``: allocate the id, let
        the replayer pick the worker, route to the owning shard."""
        job_id = self._next_job_id
        self._next_job_id += 1
        worker_id = self.replayer.select(None)
        self.state.loads[worker_id] += 1
        self.replayer.on_load_change(worker_id)
        directives[self._owner[worker_id]].append(
            ("new", job_id, function, worker_id)
        )
        self._submitted += 1

    def _empty_directives(self) -> List[list]:
        return [[] for _ in range(self.plan.shard_count)]

    # -- report processing -----------------------------------------------------

    def _process_reports(
        self, reports: Sequence[dict], directives: List[list]
    ) -> None:
        """Apply one window's events to the virtual state in timestamp
        order, deciding salvage placements as they occur."""
        events = []
        for report in reports:
            shard = report["shard"]
            for t, wid, job_id in report["completions"]:
                events.append((t, _RANK_COMPLETION, shard, 0, (wid, job_id)))
            for t, kind, wid in report["liveness"]:
                rank = _RANK_DEAD if kind == "dead" else _RANK_ALIVE
                events.append((t, rank, shard, 0, wid))
            for t, seq, job_id, state in report["salvages"]:
                events.append((t, _RANK_SALVAGE, shard, seq, (job_id, state)))
        events.sort(key=lambda e: e[:4])
        for t, rank, shard, _seq, payload in events:
            if rank == _RANK_COMPLETION:
                wid, _job_id = payload
                self.state.loads[wid] -= 1
                self.replayer.on_load_change(wid)
                self._completed += 1
                if t > self._last_completion:
                    self._last_completion = t
            elif rank == _RANK_DEAD:
                wid = payload
                # The serial engine drains the dead queue: every job it
                # held is salvaged (reported right after this event), so
                # its virtual load zeroes here and re-adds elsewhere.
                self.state.loads[wid] = 0
                self.state.mark_dead(wid)
                self.replayer.on_alive_change(wid)
            elif rank == _RANK_ALIVE:
                wid = payload
                self.state.mark_alive(wid)
                self.replayer.on_alive_change(wid)
            else:  # salvage
                job_id, job_snapshot = payload
                # Salvage decisions happen at the detection instant;
                # time-varying policies read their signals there.
                self.replayer.advance_to(t)
                target = self.replayer.select(None)
                self.state.loads[target] += 1
                self.replayer.on_load_change(target)
                self.stats.salvage_assignments += 1
                if self._owner[target] == shard:
                    directives[shard].append(("salvage", job_id, target))
                else:
                    self.stats.migrations += 1
                    directives[shard].append(("migrate_out", job_id))
                    directives[self._owner[target]].append(
                        ("adopt", job_snapshot, target)
                    )

    # -- the drive loop --------------------------------------------------------

    def _next_chaos_boundary(self) -> Optional[float]:
        if self._chaos_cursor < len(self._chaos_boundaries):
            return self._chaos_boundaries[self._chaos_cursor]
        return None

    def _round(self, until: Optional[float], directives: List[list]) -> None:
        """One rendezvous: advance all shards, fold reports, inject."""
        reports = self.executor.advance(until)
        self.stats.rounds += 1
        self._process_reports(reports, directives)
        if any(directives):
            self.executor.inject(directives)

    def _drain(self) -> None:
        """Run until every submitted job has completed, stopping at each
        remaining chaos boundary while work is still in flight."""
        while self._completed < self._submitted:
            boundary = self._next_chaos_boundary()
            if boundary is not None:
                self._chaos_cursor += 1
                self.stats.boundaries += 1
            self._round(boundary, self._empty_directives())

    def _consume_boundaries_until(self, t: float) -> None:
        """Rendezvous at every chaos boundary strictly before ``t``."""
        while True:
            boundary = self._next_chaos_boundary()
            if boundary is None or boundary >= t:
                return
            self._chaos_cursor += 1
            self.stats.boundaries += 1
            self._round(boundary, self._empty_directives())

    # -- experiment entry points -----------------------------------------------

    def run_saturated(
        self,
        functions: Sequence[str] = tuple(ALL_FUNCTION_NAMES),
        invocations_per_function: int = 10,
    ) -> ClusterResult:
        """Sharded twin of ``ClusterHarness.run_saturated``."""
        if invocations_per_function < 1:
            raise ValueError("invocations_per_function must be >= 1")
        directives = self._empty_directives()
        for _ in range(invocations_per_function):
            for function in functions:
                self._assign_new(function, directives)
        self.executor.inject(directives)
        self._drain()
        return self._finish()

    def run_paper_arrivals(
        self,
        functions: Sequence[str] = tuple(ALL_FUNCTION_NAMES),
        jobs_per_second: int = 2,
        total_jobs: int = 170,
        interval_s: float = 1.0,
    ) -> ClusterResult:
        """Sharded twin of ``ClusterHarness.run_paper_arrivals``: the
        arrival schedule is pre-computed exactly like the serial
        ``paper_arrival_process`` and each interval mark is a boundary."""
        if jobs_per_second < 1:
            raise ValueError("jobs_per_second must be >= 1")
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        count = len(functions)
        batches = [
            [
                functions[issued % count]
                for issued in range(
                    first, min(first + jobs_per_second, total_jobs)
                )
            ]
            for first in range(0, total_jobs, jobs_per_second)
        ]
        for index, batch in enumerate(batches):
            t_batch = index * interval_s
            if index > 0:
                self._consume_boundaries_until(t_batch)
                # Advance to the arrival mark itself before submitting.
                self._round(t_batch, self._empty_directives())
                self.stats.boundaries += 1
            self.replayer.advance_to(t_batch)
            directives = self._empty_directives()
            for function in batch:
                self._assign_new(function, directives)
            self.executor.inject(directives)
        self._drain()
        return self._finish()

    def replay_trace(self, trace) -> ClusterResult:
        """Sharded twin of :func:`repro.cluster.replay.replay_trace`.

        Same-timestamp arrivals form one batch, exactly as the serial
        replay submits them; every distinct arrival time is a
        rendezvous boundary.  The measurement window runs to the later
        of the trace end and the last completion, matching the serial
        ``duration = max(env.now, trace.duration_s)``.
        """
        if hasattr(type(trace), "__len__") and len(trace) == 0:
            raise ValueError("empty trace")
        batch_time: Optional[float] = None
        batch: List[str] = []
        for time_s, function in trace.iter_pairs():
            if batch_time is not None and time_s != batch_time:
                self._submit_batch_at(batch_time, batch)
                batch = []
            batch_time = time_s
            batch.append(function)
        if batch_time is None:
            raise ValueError("empty trace")
        self._submit_batch_at(batch_time, batch)
        self._drain()
        return self._finish(end_time=trace.duration_s)

    def _submit_batch_at(self, t_batch: float, batch: List[str]) -> None:
        """Rendezvous at ``t_batch`` and submit one arrival batch."""
        if t_batch > 0:
            self._consume_boundaries_until(t_batch)
            self._round(t_batch, self._empty_directives())
            self.stats.boundaries += 1
        self.replayer.advance_to(t_batch)
        directives = self._empty_directives()
        for function in batch:
            self._assign_new(function, directives)
        self.executor.inject(directives)

    # -- result merging --------------------------------------------------------

    def _merge_telemetry(self, finishes: Sequence[dict]) -> TelemetryCollector:
        if self.spec.telemetry_exact:
            # Bit-identical path: the collector's running aggregates are
            # order-sensitive float sums, so replay every shard's records
            # through a fresh collector in global completion order —
            # exactly the sequence the serial collector saw.
            merged = TelemetryCollector(exact=True)
            records = [
                record
                for finish in finishes
                for record in finish["telemetry"].records
            ]
            records.sort(key=lambda r: (r.t_completed, r.job_id))
            for record in records:
                merged.record(record)
            return merged
        merged = TelemetryCollector(exact=False)
        for finish in finishes:
            merged.merge(finish["telemetry"])
        return merged

    def _pool_platforms(self) -> Tuple[str, ...]:
        if self.spec.kind == "microfaas":
            return (ARM,)
        tags = []
        if self.spec.sbc_count:
            tags.append(ARM)
        if self.spec.vm_count:
            tags.append(X86)
        return tuple(tags)

    def _merge_energy(self, finishes: Sequence[dict]):
        """Re-sum per-board energies in global board order, per pool —
        the exact addition sequence the serial harness performs."""
        boards_by_pool: Dict[int, List[Tuple[int, float]]] = {}
        for finish in finishes:
            for pool_index, boards in finish["board_energy"]:
                boards_by_pool.setdefault(pool_index, []).extend(boards)
        pool_platforms = self._pool_platforms()
        pool_energy = []
        for pool_index, platform in enumerate(pool_platforms):
            boards = sorted(boards_by_pool.get(pool_index, []))
            pool_energy.append(
                (platform, sum(joules for _wid, joules in boards))
            )
        total = sum(joules for _platform, joules in pool_energy)
        return total, tuple(pool_energy)

    def _finish(self, end_time: float = 0.0) -> ClusterResult:
        t_global = max(self._last_completion, end_time)
        finishes = self.executor.finish(t_global)
        telemetry = self._merge_telemetry(finishes)
        energy, pool_energy = self._merge_energy(finishes)
        self.traces = merge_traces([f["traces"] for f in finishes])
        stats = self.stats
        stats.peak_shard_rss_mib = max(
            f["peak_rss_mib"] for f in finishes
        )
        stats.switch_count = max(
            f["counters"]["switch_count"] for f in finishes
        )
        stats.resubmissions = sum(
            f["counters"]["resubmissions"] for f in finishes
        )
        stats.cp_busy_seconds = sum(
            f["counters"].get("cp_busy_seconds", 0.0) for f in finishes
        )
        stats.cp_dispatches = sum(
            f["counters"].get("cp_dispatches", 0) for f in finishes
        )
        stats.cp_collections = sum(
            f["counters"].get("cp_collections", 0) for f in finishes
        )
        if any(f["chaos"] for f in finishes):
            merged_chaos: Dict[str, object] = {
                "injected": 0,
                "skipped_last_worker": 0,
                "skipped_overlap": 0,
                "skipped_unsupported": 0,
                "recovered_jobs": 0,
                "boards_abandoned": 0,
                "recovery_times": [],
            }
            for finish in finishes:
                chaos = finish["chaos"]
                if not chaos:
                    continue
                for key, value in chaos.items():
                    if key == "recovery_times":
                        merged_chaos["recovery_times"].extend(value)
                    else:
                        merged_chaos[key] += value
            stats.chaos = merged_chaos
        return ClusterResult(
            platform=MICROFAAS if self.spec.kind == "microfaas" else HYBRID,
            worker_count=self.plan.worker_count,
            jobs_completed=telemetry.count,
            duration_s=t_global,
            energy_joules=energy,
            telemetry=telemetry,
            pool_energy=pool_energy,
        )

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["ClusterSpec", "ShardedCluster", "ShardedRunStats"]
