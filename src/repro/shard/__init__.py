"""Sharded parallel simulation: conservative-lookahead multi-process runs.

``repro.shard`` splits one simulation across N OS processes while
producing results bit-identical to the serial run: the coordinator
replays the assignment policy on integer virtual queue state at
globally-known decision boundaries, and shards simulate worker
execution in parallel between them.  Start from
:class:`~repro.shard.coordinator.ShardedCluster`.
"""

from repro.shard.coordinator import ShardedCluster, ShardedRunStats
from repro.shard.executors import InlineExecutor, ProcessExecutor
from repro.shard.partition import PoolShape, ShardPlan, plan_shards
from repro.shard.replay import (
    SHARDABLE_POLICIES,
    PolicyReplayer,
    VirtualCluster,
    make_replayer,
)
from repro.shard.runtime import ClusterSpec, ShardRuntime, ShardSpec

__all__ = [
    "ClusterSpec",
    "InlineExecutor",
    "PolicyReplayer",
    "PoolShape",
    "ProcessExecutor",
    "SHARDABLE_POLICIES",
    "ShardPlan",
    "ShardRuntime",
    "ShardSpec",
    "ShardedCluster",
    "ShardedRunStats",
    "VirtualCluster",
    "make_replayer",
    "plan_shards",
]
