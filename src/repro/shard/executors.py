"""Shard execution backends.

The coordinator speaks one verb set — ``inject`` / ``advance`` /
``finish`` — against N shards.  :class:`InlineExecutor` runs them in
the coordinator's own process (zero parallelism, bit-identical to the
process backend; the determinism tests and tiny sharded points use it).
:class:`ProcessExecutor` forks one child per shard and pipes pickled
commands: each child builds its :class:`~repro.shard.runtime.ShardRuntime`
locally (cluster construction parallelizes too, which matters at 100k
workers) and the coordinator overlaps all shards' windows.

The protocol is strictly synchronous per round: broadcast a command to
every shard, then collect every reply.  Shards never talk to each
other — all cross-shard traffic flows through the coordinator at
rendezvous boundaries, which is what keeps the run deterministic
regardless of process scheduling.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import List, Optional, Sequence

from repro.shard.runtime import ShardRuntime, ShardSpec


class InlineExecutor:
    """All shards in this process; commands run shard-by-shard."""

    def __init__(self, specs: Sequence[ShardSpec]):
        self.runtimes = [ShardRuntime(spec) for spec in specs]

    def inject(self, directives_per_shard: Sequence[list]) -> None:
        for runtime, directives in zip(self.runtimes, directives_per_shard):
            if directives:
                runtime.inject(directives)

    def advance(self, until: Optional[float]) -> List[dict]:
        return [runtime.advance(until) for runtime in self.runtimes]

    def finish(self, t_global: float) -> List[dict]:
        return [runtime.finish(t_global) for runtime in self.runtimes]

    def close(self) -> None:
        self.runtimes = []


def _shard_child(spec: ShardSpec, conn) -> None:
    """Child main loop: build the runtime, then serve commands."""
    try:
        runtime = ShardRuntime(spec)
        conn.send(("ready", spec.shard_index))
    except BaseException as exc:  # construction failed: report, don't hang
        conn.send(("error", repr(exc)))
        conn.close()
        return
    try:
        while True:
            verb, payload = conn.recv()
            if verb == "inject":
                runtime.inject(payload)
                conn.send(("ok", None))
            elif verb == "advance":
                conn.send(("ok", runtime.advance(payload)))
            elif verb == "finish":
                conn.send(("ok", runtime.finish(payload)))
            elif verb == "exit":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown verb {verb!r}"))
    except EOFError:
        pass
    except BaseException as exc:
        try:
            conn.send(("error", repr(exc)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class ProcessExecutor:
    """One forked child per shard, commands over pipes."""

    def __init__(self, specs: Sequence[ShardSpec]):
        ctx = mp.get_context()
        self._conns = []
        self._procs = []
        for spec in specs:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_child,
                args=(spec, child),
                name=f"shard-{spec.shard_index}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        # Construction barrier: every child builds its cluster before
        # the first command (construction errors surface here).
        for index, conn in enumerate(self._conns):
            status, detail = conn.recv()
            if status != "ready":
                self.close()
                raise RuntimeError(f"shard {index} failed to build: {detail}")

    def _broadcast(self, verb: str, payloads) -> List:
        for conn, payload in zip(self._conns, payloads):
            conn.send((verb, payload))
        replies = []
        for index, conn in enumerate(self._conns):
            status, value = conn.recv()
            if status != "ok":
                self.close()
                raise RuntimeError(f"shard {index} failed: {value}")
            replies.append(value)
        return replies

    def inject(self, directives_per_shard: Sequence[list]) -> None:
        self._broadcast("inject", list(directives_per_shard))

    def advance(self, until: Optional[float]) -> List[dict]:
        return self._broadcast("advance", [until] * len(self._conns))

    def finish(self, t_global: float) -> List[dict]:
        return self._broadcast("finish", [t_global] * len(self._conns))

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("exit", None))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
        self._conns = []
        self._procs = []


__all__ = ["InlineExecutor", "ProcessExecutor"]
