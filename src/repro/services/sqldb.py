"""A small relational SQL engine (the PostgreSQL stand-in).

Implements the SQL subset the SQLSelect/SQLUpdate workloads (and the
examples) need, parsed with a hand-written tokenizer and recursive-
descent parser:

- ``CREATE TABLE name (col TYPE [PRIMARY KEY], ...)`` / ``DROP TABLE``
- ``INSERT INTO name [(cols)] VALUES (...), (...)``
- ``SELECT cols|*|COUNT(*) FROM name [WHERE expr] [ORDER BY col [DESC]]
  [LIMIT n]``
- ``UPDATE name SET col = expr, ... [WHERE expr]``
- ``DELETE FROM name [WHERE expr]``

Expressions support arithmetic (``+ - * /``), comparisons
(``= != <> < <= > >=``), ``AND/OR/NOT``, parentheses, ``LIKE`` with
``%``/``_`` wildcards, and ``IS [NOT] NULL``.  Types are ``INTEGER``,
``REAL``, and ``TEXT`` with insert-time checking; ``PRIMARY KEY``
enforces uniqueness.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

Row = Dict[str, Any]


class SqlError(Exception):
    """Raised for syntax errors, type errors, and constraint violations."""


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<number>\d+\.\d+|\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|\*|\+|-|/|;|\.)
    )
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "INSERT", "INTO",
    "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "TABLE", "DROP",
    "ORDER", "BY", "ASC", "DESC", "LIMIT", "NULL", "LIKE", "IS",
    "PRIMARY", "KEY", "INTEGER", "REAL", "TEXT", "COUNT",
    "JOIN", "ON", "GROUP", "SUM", "AVG", "MIN", "MAX",
}

#: Aggregate keywords usable in a select list.
AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "string" | "ident" | "keyword" | "op"
    text: str


def tokenize(sql: str) -> List[Token]:
    """Split a statement into tokens; raises :class:`SqlError` on junk."""
    tokens: List[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            remainder = sql[position:].strip()
            if not remainder:
                break
            raise SqlError(f"cannot tokenize near {remainder[:20]!r}")
        position = match.end()
        if match.lastgroup == "number":
            tokens.append(Token("number", match.group("number")))
        elif match.lastgroup == "string":
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(Token("string", raw))
        elif match.lastgroup == "ident":
            text = match.group("ident")
            if text.upper() in KEYWORDS:
                tokens.append(Token("keyword", text.upper()))
            else:
                tokens.append(Token("ident", text))
        else:
            op = match.group("op")
            if op == ";":
                break  # statement terminator
            tokens.append(Token("op", op))
    return tokens


# ---------------------------------------------------------------------------
# Expression AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: Any

    def evaluate(self, row: Row) -> Any:
        return self.value


@dataclass(frozen=True)
class ColumnRef:
    name: str

    def evaluate(self, row: Row) -> Any:
        if self.name not in row:
            raise SqlError(f"unknown column {self.name!r}")
        return row[self.name]


@dataclass(frozen=True)
class UnaryOp:
    op: str  # "NOT" | "-"
    operand: Any

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        if self.op == "NOT":
            return not bool(value)
        if self.op == "-":
            if value is None:
                return None
            return -value
        raise SqlError(f"unknown unary operator {self.op!r}")


def _like_to_regex(pattern: str) -> "re.Pattern[str]":
    regex = re.escape(pattern).replace(r"%", ".*").replace(r"_", ".")
    return re.compile(f"^{regex}$", re.DOTALL)


@dataclass(frozen=True)
class BinaryOp:
    op: str
    left: Any
    right: Any

    def evaluate(self, row: Row) -> Any:
        if self.op == "AND":
            return bool(self.left.evaluate(row)) and bool(self.right.evaluate(row))
        if self.op == "OR":
            return bool(self.left.evaluate(row)) or bool(self.right.evaluate(row))
        lhs = self.left.evaluate(row)
        rhs = self.right.evaluate(row)
        if self.op == "IS":
            return lhs is None if rhs is None else lhs == rhs
        if self.op == "IS NOT":
            return lhs is not None if rhs is None else lhs != rhs
        if lhs is None or rhs is None:
            return None  # SQL three-valued logic collapses to NULL
        if self.op == "LIKE":
            if not isinstance(lhs, str) or not isinstance(rhs, str):
                raise SqlError("LIKE requires text operands")
            return bool(_like_to_regex(rhs).match(lhs))
        comparisons: Dict[str, Callable[[Any, Any], Any]] = {
            "=": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "<>": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b,
        }
        if self.op not in comparisons:
            raise SqlError(f"unknown operator {self.op!r}")
        try:
            return comparisons[self.op](lhs, rhs)
        except TypeError:
            raise SqlError(
                f"type error: {lhs!r} {self.op} {rhs!r}"
            ) from None
        except ZeroDivisionError:
            raise SqlError("division by zero") from None


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ---------------------------------------------------------

    def peek(self) -> Optional[Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of statement")
        self.position += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token is None or token.kind != kind:
            return None
        if text is not None and token.text != text:
            return None
        return self.advance()

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            wanted = text or kind
            raise SqlError(
                f"expected {wanted}, got "
                f"{actual.text if actual else 'end of statement'!r}"
            )
        return token

    def at_end(self) -> bool:
        return self.position >= len(self.tokens)

    # -- expressions (precedence climbing) ----------------------------------------

    def parse_expression(self):
        return self._parse_or()

    def _parse_or(self):
        node = self._parse_and()
        while self.accept("keyword", "OR"):
            node = BinaryOp("OR", node, self._parse_and())
        return node

    def _parse_and(self):
        node = self._parse_not()
        while self.accept("keyword", "AND"):
            node = BinaryOp("AND", node, self._parse_not())
        return node

    def _parse_not(self):
        if self.accept("keyword", "NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self):
        node = self._parse_additive()
        token = self.peek()
        if token is not None and token.kind == "op" and token.text in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            op = self.advance().text
            return BinaryOp(op, node, self._parse_additive())
        if token is not None and token.kind == "keyword" and token.text == "LIKE":
            self.advance()
            return BinaryOp("LIKE", node, self._parse_additive())
        if token is not None and token.kind == "keyword" and token.text == "IS":
            self.advance()
            negate = self.accept("keyword", "NOT") is not None
            self.expect("keyword", "NULL")
            return BinaryOp("IS NOT" if negate else "IS", node, Literal(None))
        return node

    def _parse_additive(self):
        node = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token is not None and token.kind == "op" and token.text in ("+", "-"):
                op = self.advance().text
                node = BinaryOp(op, node, self._parse_multiplicative())
            else:
                return node

    def _parse_multiplicative(self):
        node = self._parse_primary()
        while True:
            token = self.peek()
            if token is not None and token.kind == "op" and token.text in ("*", "/"):
                op = self.advance().text
                node = BinaryOp(op, node, self._parse_primary())
            else:
                return node

    def parse_column_name(self) -> str:
        """An optionally qualified column name: ``col`` or ``table.col``."""
        name = self.expect("ident").text
        if self.accept("op", "."):
            name = f"{name}.{self.expect('ident').text}"
        return name

    def _parse_primary(self):
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of expression")
        if token.kind == "number":
            self.advance()
            text = token.text
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.advance()
            return Literal(token.text)
        if token.kind == "keyword" and token.text == "NULL":
            self.advance()
            return Literal(None)
        if token.kind == "ident":
            self.advance()
            name = token.text
            if self.accept("op", "."):
                name = f"{name}.{self.expect('ident').text}"
            return ColumnRef(name)
        if token.kind == "op" and token.text == "-":
            self.advance()
            return UnaryOp("-", self._parse_primary())
        if token.kind == "op" and token.text == "(":
            self.advance()
            node = self.parse_expression()
            self.expect("op", ")")
            return node
        raise SqlError(f"unexpected token {token.text!r} in expression")


# ---------------------------------------------------------------------------
# Schema and storage
# ---------------------------------------------------------------------------

_PYTHON_TYPES = {
    "INTEGER": (int,),
    "REAL": (int, float),  # integers coerce to REAL
    "TEXT": (str,),
}


@dataclass
class Column:
    name: str
    sql_type: str
    primary_key: bool = False

    def check(self, value: Any) -> Any:
        if value is None:
            if self.primary_key:
                raise SqlError(f"primary key {self.name!r} cannot be NULL")
            return None
        if not isinstance(value, _PYTHON_TYPES[self.sql_type]):
            raise SqlError(
                f"column {self.name!r} expects {self.sql_type}, "
                f"got {type(value).__name__}"
            )
        if self.sql_type == "REAL":
            return float(value)
        return value


@dataclass
class Table:
    name: str
    columns: List[Column]
    rows: List[Row] = field(default_factory=list)

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    @property
    def primary_key(self) -> Optional[Column]:
        for column in self.columns:
            if column.primary_key:
                return column
        return None


@dataclass(frozen=True)
class ResultSet:
    """Result of a statement: selected rows and/or an affected-row count."""

    rows: Tuple[Row, ...] = ()
    rowcount: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """First column of the first row (for COUNT(*) etc.)."""
        if not self.rows:
            raise SqlError("result set is empty")
        first = self.rows[0]
        return next(iter(first.values()))


class SqlDatabase:
    """The engine: tables plus an ``execute(sql)`` entry point."""

    def __init__(self):
        self.tables: Dict[str, Table] = {}
        self.statements_executed = 0
        #: Chaos hook (see :mod:`repro.services.chaos`): called with the
        #: operation name at the wire entry point; may raise.
        self.fault_gate: Optional[Callable[[str], None]] = None

    # -- public API --------------------------------------------------------------

    def execute(self, sql: str) -> ResultSet:
        """Parse and run one SQL statement."""
        if self.fault_gate is not None:
            self.fault_gate("execute")
        self.statements_executed += 1
        tokens = tokenize(sql)
        if not tokens:
            raise SqlError("empty statement")
        parser = _Parser(tokens)
        keyword = parser.expect("keyword").text
        handlers = {
            "CREATE": self._create,
            "DROP": self._drop,
            "INSERT": self._insert,
            "SELECT": self._select,
            "UPDATE": self._update,
            "DELETE": self._delete,
        }
        if keyword not in handlers:
            raise SqlError(f"unsupported statement {keyword!r}")
        result = handlers[keyword](parser)
        if not parser.at_end():
            raise SqlError(f"trailing tokens after statement: {parser.peek().text!r}")
        return result

    def table(self, name: str) -> Table:
        if name not in self.tables:
            raise SqlError(f"no such table {name!r}")
        return self.tables[name]

    # -- statements ---------------------------------------------------------------

    def _create(self, parser: _Parser) -> ResultSet:
        parser.expect("keyword", "TABLE")
        name = parser.expect("ident").text
        if name in self.tables:
            raise SqlError(f"table {name!r} already exists")
        parser.expect("op", "(")
        columns: List[Column] = []
        while True:
            column_name = parser.expect("ident").text
            type_token = parser.expect("keyword")
            if type_token.text not in _PYTHON_TYPES:
                raise SqlError(f"unknown type {type_token.text!r}")
            primary = False
            if parser.accept("keyword", "PRIMARY"):
                parser.expect("keyword", "KEY")
                primary = True
            columns.append(Column(column_name, type_token.text, primary))
            if parser.accept("op", ")"):
                break
            parser.expect("op", ",")
        if len({c.name for c in columns}) != len(columns):
            raise SqlError("duplicate column names")
        if sum(1 for c in columns if c.primary_key) > 1:
            raise SqlError("at most one PRIMARY KEY column")
        self.tables[name] = Table(name, columns)
        return ResultSet()

    def _drop(self, parser: _Parser) -> ResultSet:
        parser.expect("keyword", "TABLE")
        name = parser.expect("ident").text
        if name not in self.tables:
            raise SqlError(f"no such table {name!r}")
        del self.tables[name]
        return ResultSet()

    def _insert(self, parser: _Parser) -> ResultSet:
        parser.expect("keyword", "INTO")
        table = self.table(parser.expect("ident").text)
        if parser.accept("op", "("):
            column_names = [parser.expect("ident").text]
            while parser.accept("op", ","):
                column_names.append(parser.expect("ident").text)
            parser.expect("op", ")")
        else:
            column_names = table.column_names
        unknown = set(column_names) - set(table.column_names)
        if unknown:
            raise SqlError(f"unknown columns {sorted(unknown)}")
        parser.expect("keyword", "VALUES")
        inserted = 0
        while True:
            parser.expect("op", "(")
            values = [parser.parse_expression().evaluate({})]
            while parser.accept("op", ","):
                values.append(parser.parse_expression().evaluate({}))
            parser.expect("op", ")")
            if len(values) != len(column_names):
                raise SqlError(
                    f"expected {len(column_names)} values, got {len(values)}"
                )
            row: Row = {c.name: None for c in table.columns}
            for column_name, value in zip(column_names, values):
                column = next(c for c in table.columns if c.name == column_name)
                row[column_name] = column.check(value)
            self._check_primary_key(table, row)
            table.rows.append(row)
            inserted += 1
            if not parser.accept("op", ","):
                break
        return ResultSet(rowcount=inserted)

    @staticmethod
    def _check_primary_key(table: Table, row: Row, ignore: Optional[Row] = None) -> None:
        pk = table.primary_key
        if pk is None:
            return
        value = row[pk.name]
        if value is None:
            raise SqlError(f"primary key {pk.name!r} cannot be NULL")
        for existing in table.rows:
            if existing is ignore:
                continue
            if existing[pk.name] == value:
                raise SqlError(
                    f"duplicate primary key {value!r} in table {table.name!r}"
                )

    # -- SELECT ---------------------------------------------------------------------

    @staticmethod
    def _parse_select_list(parser: _Parser) -> List[Tuple[str, ...]]:
        """Parse the projection: ``*``, columns, and/or aggregates.

        Items are ``("star",)``, ``("col", name)``, or
        ``("agg", fn, column_or_star, output_name)``.
        """
        if parser.accept("op", "*"):
            return [("star",)]
        items: List[Tuple[str, ...]] = []
        while True:
            token = parser.peek()
            if (
                token is not None
                and token.kind == "keyword"
                and token.text in AGGREGATES
            ):
                fn = parser.advance().text
                parser.expect("op", "(")
                if fn == "COUNT" and parser.accept("op", "*"):
                    argument = "*"
                    output = "count"
                else:
                    argument = parser.parse_column_name()
                    output = f"{fn.lower()}_{argument.replace('.', '_')}"
                parser.expect("op", ")")
                items.append(("agg", fn, argument, output))
            else:
                items.append(("col", parser.parse_column_name()))
            if not parser.accept("op", ","):
                return items

    def _join_rows(
        self, left: Table, right: Table, on_left: str, on_right: str
    ) -> Tuple[List[Row], List[str]]:
        """Inner equi-join; returns combined rows and output columns.

        Combined rows carry qualified keys (``table.col``) for every
        column plus unqualified aliases for names unique to one side.
        """
        def resolve(name: str) -> Tuple[Table, str]:
            if "." in name:
                table_name, column = name.split(".", 1)
                table = {left.name: left, right.name: right}.get(table_name)
                if table is None:
                    raise SqlError(f"unknown table qualifier {table_name!r}")
            else:
                column = name
                owners = [
                    t for t in (left, right) if column in t.column_names
                ]
                if len(owners) != 1:
                    raise SqlError(f"ambiguous join column {name!r}")
                table = owners[0]
            if column not in table.column_names:
                raise SqlError(f"unknown column {name!r}")
            return table, column

        left_table, left_col = resolve(on_left)
        right_table, right_col = resolve(on_right)
        if left_table is right_table:
            raise SqlError("join condition must reference both tables")
        if left_table is right:
            left_col, right_col = right_col, left_col
        shared = set(left.column_names) & set(right.column_names)
        # Hash join on the right side.
        index: Dict[Any, List[Row]] = {}
        for row in right.rows:
            index.setdefault(row[right_col], []).append(row)
        combined: List[Row] = []
        for row in left.rows:
            key = row[left_col]
            if key is None:
                continue  # NULLs never join
            for match in index.get(key, ()):
                merged: Row = {}
                for column, value in row.items():
                    merged[f"{left.name}.{column}"] = value
                    if column not in shared:
                        merged[column] = value
                for column, value in match.items():
                    merged[f"{right.name}.{column}"] = value
                    if column not in shared:
                        merged[column] = value
                combined.append(merged)
        output_columns = [f"{left.name}.{c}" for c in left.column_names] + [
            f"{right.name}.{c}" for c in right.column_names
        ]
        return combined, output_columns

    @staticmethod
    def _aggregate(fn: str, values: List[Any]) -> Any:
        """SQL aggregate semantics: NULLs are ignored; empty => NULL
        (except COUNT, which yields 0)."""
        present = [v for v in values if v is not None]
        if fn == "COUNT":
            return len(present)
        if not present:
            return None
        if fn == "SUM":
            return sum(present)
        if fn == "AVG":
            return sum(present) / len(present)
        if fn == "MIN":
            return min(present)
        if fn == "MAX":
            return max(present)
        raise SqlError(f"unknown aggregate {fn!r}")

    def _select(self, parser: _Parser) -> ResultSet:
        items = self._parse_select_list(parser)
        parser.expect("keyword", "FROM")
        table = self.table(parser.expect("ident").text)
        if parser.accept("keyword", "JOIN"):
            other = self.table(parser.expect("ident").text)
            parser.expect("keyword", "ON")
            on_left = parser.parse_column_name()
            parser.expect("op", "=")
            on_right = parser.parse_column_name()
            rows, all_columns = self._join_rows(table, other, on_left, on_right)
            schema_keys = set(all_columns) | {
                key for row in rows[:1] for key in row
            }
            if not rows:
                # No sample row: derive unqualified aliases from schemas.
                shared = set(table.column_names) & set(other.column_names)
                schema_keys |= {
                    c
                    for t in (table, other)
                    for c in t.column_names
                    if c not in shared
                }
        else:
            rows = table.rows
            all_columns = list(table.column_names)
            schema_keys = set(all_columns)
        # Expand '*' and validate projections.
        columns: List[str] = []
        aggregates: List[Tuple[str, str, str]] = []  # (fn, arg, output)
        for item in items:
            if item[0] == "star":
                columns.extend(all_columns)
            elif item[0] == "col":
                if item[1] not in schema_keys:
                    raise SqlError(f"unknown column {item[1]!r}")
                columns.append(item[1])
            else:
                _tag, fn, argument, output = item
                if argument != "*" and argument not in schema_keys:
                    raise SqlError(f"unknown column {argument!r}")
                aggregates.append((fn, argument, output))
        predicate = None
        if parser.accept("keyword", "WHERE"):
            predicate = parser.parse_expression()
        selected = [
            row for row in rows
            if predicate is None or bool(predicate.evaluate(row))
        ]
        group_column: Optional[str] = None
        if parser.accept("keyword", "GROUP"):
            parser.expect("keyword", "BY")
            group_column = parser.parse_column_name()
            if group_column not in schema_keys:
                raise SqlError(f"unknown GROUP BY column {group_column!r}")
        if aggregates or group_column is not None:
            output = self._grouped_result(
                selected, columns, aggregates, group_column
            )
        else:
            output = None
        # ORDER BY applies to source rows for plain queries and to the
        # produced rows for grouped/aggregated ones.
        if parser.accept("keyword", "ORDER"):
            parser.expect("keyword", "BY")
            order_column = parser.parse_column_name()
            descending = False
            if parser.accept("keyword", "DESC"):
                descending = True
            else:
                parser.accept("keyword", "ASC")
            target = output if output is not None else selected
            if output is not None:
                if output and order_column not in output[0]:
                    raise SqlError(
                        f"unknown ORDER BY column {order_column!r}"
                    )
            elif order_column not in schema_keys:
                raise SqlError(f"unknown ORDER BY column {order_column!r}")
            target.sort(
                key=lambda r: (r[order_column] is None, r[order_column]),
                reverse=descending,
            )
        if parser.accept("keyword", "LIMIT"):
            limit_token = parser.expect("number")
            limit = int(limit_token.text)
            if limit < 0:
                raise SqlError("LIMIT must be non-negative")
            if output is not None:
                output = output[:limit]
            else:
                selected = selected[:limit]
        if output is not None:
            return ResultSet(rows=tuple(output), rowcount=len(output))
        projected = tuple(
            {name: row[name] for name in columns} for row in selected
        )
        return ResultSet(rows=projected, rowcount=len(projected))

    def _grouped_result(
        self,
        selected: List[Row],
        columns: List[str],
        aggregates: List[Tuple[str, str, str]],
        group_column: Optional[str],
    ) -> List[Row]:
        """Evaluate aggregates, optionally per group."""
        stray = [c for c in columns if c != group_column]
        if stray:
            raise SqlError(
                f"non-aggregate columns {stray} require GROUP BY on them"
            )
        if group_column is None:
            row: Row = {}
            for fn, argument, output in aggregates:
                values = (
                    [1] * len(selected) if argument == "*"
                    else [r[argument] for r in selected]
                )
                row[output] = self._aggregate(fn, values)
            return [row]
        groups: Dict[Any, List[Row]] = {}
        for row in selected:
            groups.setdefault(row[group_column], []).append(row)
        result: List[Row] = []
        for key in sorted(groups, key=lambda k: (k is None, k)):
            members = groups[key]
            out: Row = {group_column: key}
            for fn, argument, output in aggregates:
                values = (
                    [1] * len(members) if argument == "*"
                    else [r[argument] for r in members]
                )
                out[output] = self._aggregate(fn, values)
            result.append(out)
        return result

    def _update(self, parser: _Parser) -> ResultSet:
        table = self.table(parser.expect("ident").text)
        parser.expect("keyword", "SET")
        assignments: List[Tuple[str, Any]] = []
        while True:
            column_name = parser.expect("ident").text
            if column_name not in table.column_names:
                raise SqlError(f"unknown column {column_name!r}")
            parser.expect("op", "=")
            assignments.append((column_name, parser.parse_expression()))
            if not parser.accept("op", ","):
                break
        predicate = None
        if parser.accept("keyword", "WHERE"):
            predicate = parser.parse_expression()
        updated = 0
        for row in table.rows:
            if predicate is not None and not bool(predicate.evaluate(row)):
                continue
            new_values = {}
            for column_name, expression in assignments:
                column = next(c for c in table.columns if c.name == column_name)
                new_values[column_name] = column.check(expression.evaluate(row))
            candidate = {**row, **new_values}
            if table.primary_key and table.primary_key.name in new_values:
                self._check_primary_key(table, candidate, ignore=row)
            row.update(new_values)
            updated += 1
        return ResultSet(rowcount=updated)

    def _delete(self, parser: _Parser) -> ResultSet:
        parser.expect("keyword", "FROM")
        table = self.table(parser.expect("ident").text)
        predicate = None
        if parser.accept("keyword", "WHERE"):
            predicate = parser.parse_expression()
        keep = []
        deleted = 0
        for row in table.rows:
            if predicate is None or bool(predicate.evaluate(row)):
                deleted += 1
            else:
                keep.append(row)
        table.rows = keep
        return ResultSet(rowcount=deleted)


__all__ = ["ResultSet", "SqlDatabase", "SqlError", "tokenize"]
