"""Backend-service capacity model.

The testbed hosts each backend service (Redis/PostgreSQL/MinIO/Kafka)
on *one dedicated SBC* (Sec. IV-C).  At 10 workers those boxes coast;
scaled to hundreds of workers, a single-board PostgreSQL becomes the
next wall after the control plane.  This module models each backend as
a finite-concurrency server: a network-bound function's backend-facing
I/O claims a slot for the *service* share of its wait, so queueing
emerges once concurrent demand exceeds the backend's parallelism.

The non-service share of the I/O phase (network round-trip time) never
queues — the wire is idle waiting, not backend work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.sim.kernel import Environment
from repro.sim.resources import Resource

#: Which backend box serves each service operation prefix.
SERVICE_OF_OP = {
    "kv": "redis",
    "sql": "postgres",
    "cos": "minio",
    "mq": "kafka",
}

#: Fraction of a network-bound function's I/O phase that is backend
#: processing (the rest is round-trip wire time).  Calibration note:
#: the profiles fold both into ``(1 - cpu_fraction) * work``; point-op
#: services are RTT-dominated, query/object services work-dominated.
SERVICE_SHARE = {
    "redis": 0.25,
    "postgres": 0.70,
    "minio": 0.65,
    "kafka": 0.30,
}


@dataclass(frozen=True)
class BackendCapacityModel:
    """Concurrency each single-board backend sustains.

    Defaults reflect one SBC per service: Redis and Kafka are
    single-threaded event loops that interleave well (higher effective
    concurrency for sub-ms ops); PostgreSQL and MinIO do real per-request
    work on one core.
    """

    concurrency: Mapping[str, int] = field(
        default_factory=lambda: {
            "redis": 8,
            "postgres": 2,
            "minio": 2,
            "kafka": 6,
        }
    )

    def __post_init__(self) -> None:
        missing = set(SERVICE_SHARE) - set(self.concurrency)
        if missing:
            raise ValueError(f"missing concurrency for services: {missing}")
        bad = {s: c for s, c in self.concurrency.items() if c < 1}
        if bad:
            raise ValueError(f"concurrency must be >= 1: {bad}")


def service_for(operation: str) -> str:
    """Map a profile's ``service_op`` (e.g. ``sql.select``) to its box."""
    prefix = operation.split(".", 1)[0]
    if prefix not in SERVICE_OF_OP:
        raise KeyError(f"unknown service operation {operation!r}")
    return SERVICE_OF_OP[prefix]


class BackendFleet:
    """The simulation-side backend boxes, one resource per service."""

    def __init__(
        self,
        env: Environment,
        model: BackendCapacityModel = BackendCapacityModel(),
    ):
        self.env = env
        self.model = model
        self.resources: Dict[str, Resource] = {
            service: Resource(env, capacity=count)
            for service, count in model.concurrency.items()
        }
        self.requests_served: Dict[str, int] = {
            service: 0 for service in model.concurrency
        }
        self.busy_seconds: Dict[str, float] = {
            service: 0.0 for service in model.concurrency
        }
        #: Chaos state: per-service outage horizon.  A request arriving
        #: while its service is down waits out the remainder (clients
        #: block on reconnect; the work itself is not lost).
        self.down_until: Dict[str, float] = {
            service: 0.0 for service in model.concurrency
        }
        self.faults_injected: Dict[str, int] = {
            service: 0 for service in model.concurrency
        }

    def fail_service(self, service: str, until_s: float) -> None:
        """Take one backend box down until ``until_s`` (extends)."""
        if service not in self.down_until:
            raise KeyError(f"unknown service {service!r}")
        self.down_until[service] = max(self.down_until[service], until_s)
        self.faults_injected[service] += 1

    def outage_remaining_s(self, service: str) -> float:
        return max(0.0, self.down_until[service] - self.env.now)

    def serve(self, operation: str, io_wait_s: float):
        """Process helper: perform a function's backend I/O phase.

        Splits the wait into wire time (non-queueing) and service time
        (claims the backend's concurrency), preserving the calibrated
        total when uncontended.
        """
        if io_wait_s < 0:
            raise ValueError("negative I/O wait")
        service = service_for(operation)
        outage = self.outage_remaining_s(service)
        if outage > 0:
            # The box is down: the client blocks retrying until it
            # answers again, then the operation proceeds normally.
            yield self.env.timeout(outage)
        service_s = io_wait_s * SERVICE_SHARE[service]
        wire_s = io_wait_s - service_s
        if wire_s > 0:
            yield self.env.timeout(wire_s)
        if service_s > 0:
            resource = self.resources[service]
            request = resource.request()
            yield request
            try:
                yield self.env.timeout(service_s)
                self.busy_seconds[service] += service_s
            finally:
                resource.release(request)
        self.requests_served[service] += 1

    def queue_length(self, service: str) -> int:
        return self.resources[service].queue_length

    def utilization(self, service: str, duration_s: float) -> float:
        """Busy fraction of one backend over a window."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        capacity = self.model.concurrency[service]
        return min(1.0, self.busy_seconds[service] / (duration_s * capacity))


__all__ = [
    "BackendCapacityModel",
    "BackendFleet",
    "SERVICE_OF_OP",
    "SERVICE_SHARE",
    "service_for",
]
