"""Backend services the network-bound workloads exercise.

The paper's testbed dedicates extra SBCs to hosting Redis, PostgreSQL,
MinIO, and Kafka for the network-bound workload functions (Table I).
None of those servers are available here, so this package provides
from-scratch, in-process equivalents with real request/response
semantics:

- :mod:`repro.services.kvstore` — a Redis-style key-value store with
  TTLs, counters, and a command-list protocol.
- :mod:`repro.services.sqldb` — a small SQL engine (CREATE/INSERT/
  SELECT/UPDATE/DELETE with WHERE, ORDER BY, LIMIT).
- :mod:`repro.services.objectstore` — a MinIO-style bucket/object store
  with ETags and prefix listing.
- :mod:`repro.services.mq` — a Kafka-style partitioned log with consumer
  groups and offset commits.
- :mod:`repro.services.latency` — calibrated per-operation service times
  used by the simulation layer.
- :mod:`repro.services.chaos` — fault injection for the live services
  (outage windows raising :class:`ServiceUnavailable` at entry points).
"""

from repro.services.backend import BackendCapacityModel, BackendFleet
from repro.services.chaos import ServiceFaultInjector, ServiceUnavailable
from repro.services.kvstore import KeyValueStore, KvError
from repro.services.latency import SERVICE_LATENCY, ServiceLatencyModel
from repro.services.mq import MessageQueue, MqError
from repro.services.objectstore import ObjectStore, ObjectStoreError
from repro.services.sqldb import SqlDatabase, SqlError

__all__ = [
    "BackendCapacityModel",
    "BackendFleet",
    "KeyValueStore",
    "KvError",
    "MessageQueue",
    "MqError",
    "ObjectStore",
    "ObjectStoreError",
    "SERVICE_LATENCY",
    "ServiceFaultInjector",
    "ServiceLatencyModel",
    "ServiceUnavailable",
    "SqlDatabase",
    "SqlError",
]
