"""A Kafka-style partitioned message queue (MQProduce/MQConsume backend).

Topics are split into partitions, each an append-only log.  Producing
with a key routes deterministically to a partition (hash of the key);
keyless records round-robin.  Consumer groups track committed offsets
per partition, so multiple consumers in a group share a topic while
separate groups each see every record.
"""

from __future__ import annotations

import hashlib
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


class MqError(Exception):
    """Base error for the message queue."""


class NoSuchTopic(MqError):
    pass


class TopicAlreadyExists(MqError):
    pass


@dataclass(frozen=True)
class Record:
    """One message in a partition log."""

    topic: str
    partition: int
    offset: int
    key: Optional[str]
    value: str
    timestamp: float


@dataclass
class _Partition:
    log: List[Record] = field(default_factory=list)

    @property
    def end_offset(self) -> int:
        return len(self.log)


class MessageQueue:
    """Topics, partitions, producers, and consumer groups."""

    def __init__(self, clock: Callable[[], float] = _time.monotonic):
        self._clock = clock
        self._topics: Dict[str, List[_Partition]] = {}
        #: (group, topic, partition) -> committed offset
        self._offsets: Dict[Tuple[str, str, int], int] = {}
        self._round_robin: Dict[str, int] = {}
        self.records_produced = 0
        self.records_consumed = 0
        #: Chaos hook (see :mod:`repro.services.chaos`): called with the
        #: operation name at each broker entry point; may raise.
        self.fault_gate: Optional[Callable[[str], None]] = None

    # -- topics -----------------------------------------------------------------

    def create_topic(self, topic: str, partitions: int = 1) -> None:
        if partitions < 1:
            raise MqError(f"partitions must be >= 1, got {partitions}")
        if topic in self._topics:
            raise TopicAlreadyExists(topic)
        self._topics[topic] = [_Partition() for _ in range(partitions)]
        self._round_robin[topic] = 0

    def delete_topic(self, topic: str) -> None:
        self._partitions(topic)
        del self._topics[topic]
        del self._round_robin[topic]
        self._offsets = {
            key: offset
            for key, offset in self._offsets.items()
            if key[1] != topic
        }

    def list_topics(self) -> List[str]:
        return sorted(self._topics)

    def partition_count(self, topic: str) -> int:
        return len(self._partitions(topic))

    def _partitions(self, topic: str) -> List[_Partition]:
        if topic not in self._topics:
            raise NoSuchTopic(topic)
        return self._topics[topic]

    # -- producing ----------------------------------------------------------------

    def partition_for_key(self, topic: str, key: Optional[str]) -> int:
        """Deterministic partition routing (stable across processes)."""
        partitions = self._partitions(topic)
        if key is None:
            index = self._round_robin[topic]
            self._round_robin[topic] = (index + 1) % len(partitions)
            return index
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:4], "big") % len(partitions)

    def produce(
        self, topic: str, value: str, key: Optional[str] = None
    ) -> Record:
        """Append a record, returning it with its assigned offset."""
        if self.fault_gate is not None:
            self.fault_gate("produce")
        partition_index = self.partition_for_key(topic, key)
        partition = self._partitions(topic)[partition_index]
        record = Record(
            topic=topic,
            partition=partition_index,
            offset=partition.end_offset,
            key=key,
            value=value,
            timestamp=self._clock(),
        )
        partition.log.append(record)
        self.records_produced += 1
        return record

    # -- consuming ----------------------------------------------------------------

    def committed_offset(self, group: str, topic: str, partition: int) -> int:
        self._check_partition(topic, partition)
        return self._offsets.get((group, topic, partition), 0)

    def poll(
        self,
        group: str,
        topic: str,
        max_records: int = 1,
        partition: Optional[int] = None,
    ) -> List[Record]:
        """Fetch up to ``max_records`` uncommitted records for ``group``.

        Polling does not advance offsets; call :meth:`commit` after
        processing (at-least-once semantics, like Kafka's default).
        """
        if self.fault_gate is not None:
            self.fault_gate("poll")
        if max_records < 1:
            raise MqError(f"max_records must be >= 1, got {max_records}")
        partitions = self._partitions(topic)
        indices = (
            range(len(partitions)) if partition is None else [partition]
        )
        fetched: List[Record] = []
        for index in indices:
            self._check_partition(topic, index)
            offset = self._offsets.get((group, topic, index), 0)
            for record in partitions[index].log[offset:]:
                if len(fetched) >= max_records:
                    return fetched
                fetched.append(record)
        return fetched

    def commit(self, group: str, record: Record) -> None:
        """Mark everything up to and including ``record`` as consumed."""
        if self.fault_gate is not None:
            self.fault_gate("commit")
        self._check_partition(record.topic, record.partition)
        key = (group, record.topic, record.partition)
        current = self._offsets.get(key, 0)
        if record.offset + 1 > current:
            self.records_consumed += record.offset + 1 - current
            self._offsets[key] = record.offset + 1

    def consume_one(
        self, group: str, topic: str, partition: Optional[int] = None
    ) -> Optional[Record]:
        """Poll-and-commit a single record (what MQConsume does)."""
        records = self.poll(group, topic, max_records=1, partition=partition)
        if not records:
            return None
        self.commit(group, records[0])
        return records[0]

    def lag(self, group: str, topic: str) -> int:
        """Total uncommitted records across the topic for ``group``."""
        partitions = self._partitions(topic)
        return sum(
            partition.end_offset
            - self._offsets.get((group, topic, index), 0)
            for index, partition in enumerate(partitions)
        )

    def _check_partition(self, topic: str, partition: int) -> None:
        partitions = self._partitions(topic)
        if not 0 <= partition < len(partitions):
            raise MqError(
                f"topic {topic!r} has no partition {partition} "
                f"(has {len(partitions)})"
            )


__all__ = [
    "MessageQueue",
    "MqError",
    "NoSuchTopic",
    "Record",
    "TopicAlreadyExists",
]
