"""A MinIO-style cloud object store (the COSGet/COSPut backend).

Buckets hold binary objects addressed by key.  Each object carries an
MD5 ETag (as S3-compatible stores do), a content type, and user
metadata.  Listing supports prefix filtering and pagination; integrity
can be verified on download, which is exactly what the COSGet workload
does on the worker.
"""

from __future__ import annotations

import hashlib
import re
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

_BUCKET_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9\-.]{1,61}[a-z0-9]$")


class ObjectStoreError(Exception):
    """Base error for the object store."""


class NoSuchBucket(ObjectStoreError):
    pass


class NoSuchKey(ObjectStoreError):
    pass


class BucketAlreadyExists(ObjectStoreError):
    pass


class BucketNotEmpty(ObjectStoreError):
    pass


class PreconditionFailed(ObjectStoreError):
    """ETag mismatch on a conditional operation."""


@dataclass
class StoredObject:
    """One object at rest."""

    key: str
    data: bytes
    etag: str
    content_type: str
    last_modified: float
    metadata: Dict[str, str] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.data)


def compute_etag(data: bytes) -> str:
    """S3-style ETag: hex MD5 of the payload."""
    return hashlib.md5(data).hexdigest()


class ObjectStore:
    """An in-memory bucket/object store."""

    def __init__(self, clock: Callable[[], float] = _time.monotonic):
        self._clock = clock
        self._buckets: Dict[str, Dict[str, StoredObject]] = {}
        self.ops_processed = 0
        self.bytes_stored = 0
        #: Chaos hook (see :mod:`repro.services.chaos`): called with the
        #: operation name at each object entry point; may raise.
        self.fault_gate: Optional[Callable[[str], None]] = None

    def _gate(self, operation: str) -> None:
        if self.fault_gate is not None:
            self.fault_gate(operation)

    # -- buckets -----------------------------------------------------------------

    def create_bucket(self, bucket: str) -> None:
        self.ops_processed += 1
        if not _BUCKET_NAME_RE.match(bucket):
            raise ObjectStoreError(f"invalid bucket name {bucket!r}")
        if bucket in self._buckets:
            raise BucketAlreadyExists(bucket)
        self._buckets[bucket] = {}

    def delete_bucket(self, bucket: str) -> None:
        self.ops_processed += 1
        contents = self._bucket(bucket)
        if contents:
            raise BucketNotEmpty(bucket)
        del self._buckets[bucket]

    def list_buckets(self) -> List[str]:
        self.ops_processed += 1
        return sorted(self._buckets)

    def _bucket(self, bucket: str) -> Dict[str, StoredObject]:
        if bucket not in self._buckets:
            raise NoSuchBucket(bucket)
        return self._buckets[bucket]

    # -- objects -----------------------------------------------------------------

    def put_object(
        self,
        bucket: str,
        key: str,
        data: bytes,
        content_type: str = "application/octet-stream",
        metadata: Optional[Dict[str, str]] = None,
        if_match: Optional[str] = None,
    ) -> str:
        """Store an object, returning its ETag.

        ``if_match`` makes the put conditional on the current ETag
        (optimistic concurrency, as the COSPut workload uses for safe
        overwrites).
        """
        self._gate("put_object")
        self.ops_processed += 1
        if not key:
            raise ObjectStoreError("object key cannot be empty")
        if not isinstance(data, (bytes, bytearray)):
            raise ObjectStoreError("object data must be bytes")
        contents = self._bucket(bucket)
        if if_match is not None:
            existing = contents.get(key)
            if existing is None or existing.etag != if_match:
                raise PreconditionFailed(key)
        previous = contents.get(key)
        if previous is not None:
            self.bytes_stored -= previous.size
        data = bytes(data)
        obj = StoredObject(
            key=key,
            data=data,
            etag=compute_etag(data),
            content_type=content_type,
            last_modified=self._clock(),
            metadata=dict(metadata or {}),
        )
        contents[key] = obj
        self.bytes_stored += obj.size
        return obj.etag

    def get_object(self, bucket: str, key: str) -> StoredObject:
        """Fetch an object (raises :class:`NoSuchKey` when absent)."""
        self._gate("get_object")
        self.ops_processed += 1
        contents = self._bucket(bucket)
        if key not in contents:
            raise NoSuchKey(f"{bucket}/{key}")
        return contents[key]

    def head_object(self, bucket: str, key: str) -> Dict[str, object]:
        """Metadata-only fetch."""
        obj = self.get_object(bucket, key)
        return {
            "etag": obj.etag,
            "size": obj.size,
            "content_type": obj.content_type,
            "last_modified": obj.last_modified,
            "metadata": dict(obj.metadata),
        }

    def delete_object(self, bucket: str, key: str) -> bool:
        """Delete; returns whether the key existed (S3 deletes are
        idempotent and never 404)."""
        self._gate("delete_object")
        self.ops_processed += 1
        contents = self._bucket(bucket)
        obj = contents.pop(key, None)
        if obj is None:
            return False
        self.bytes_stored -= obj.size
        return True

    def list_objects(
        self,
        bucket: str,
        prefix: str = "",
        max_keys: Optional[int] = None,
        start_after: Optional[str] = None,
    ) -> List[str]:
        """Sorted keys matching ``prefix``, paginated via ``start_after``."""
        self._gate("list_objects")
        self.ops_processed += 1
        if max_keys is not None and max_keys < 0:
            raise ObjectStoreError("max_keys must be non-negative")
        keys = sorted(
            key for key in self._bucket(bucket) if key.startswith(prefix)
        )
        if start_after is not None:
            keys = [key for key in keys if key > start_after]
        if max_keys is not None:
            keys = keys[:max_keys]
        return keys

    def verify_integrity(self, bucket: str, key: str) -> bool:
        """Re-hash the payload and compare against the stored ETag."""
        obj = self.get_object(bucket, key)
        return compute_etag(obj.data) == obj.etag


__all__ = [
    "BucketAlreadyExists",
    "BucketNotEmpty",
    "NoSuchBucket",
    "NoSuchKey",
    "ObjectStore",
    "ObjectStoreError",
    "PreconditionFailed",
    "StoredObject",
    "compute_etag",
]
