"""Backend-service fault injection.

The live service implementations (:mod:`repro.services.kvstore`,
:mod:`~repro.services.mq`, :mod:`~repro.services.sqldb`,
:mod:`~repro.services.objectstore`) each expose a ``fault_gate``
attribute: a callable invoked with the operation name at every wire
entry point (``execute``, ``produce``/``poll``/``commit``, object CRUD).
When no gate is installed the services behave exactly as before.

:class:`ServiceFaultInjector` is the standard gate: a clock-driven
outage window per service instance.  While a window is open every
operation raises :class:`ServiceUnavailable` — the error a real client
sees as a connection refused / request timeout — and callers exercise
their retry paths.  The simulation-side
:class:`~repro.services.backend.BackendFleet` models the *timing* of the
same outages (requests wait out the remainder); this module models the
*semantics* for code that talks to the live services directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["ServiceFaultInjector", "ServiceUnavailable"]


class ServiceUnavailable(RuntimeError):
    """A backend service is down; the client should retry later."""

    def __init__(self, service: str, operation: str, retry_after_s: float):
        super().__init__(
            f"{service} unavailable during {operation!r}; "
            f"retry in {retry_after_s:.3f}s"
        )
        self.service = service
        self.operation = operation
        self.retry_after_s = retry_after_s


class ServiceFaultInjector:
    """Clock-driven outage windows for live service instances.

    Usage::

        injector = ServiceFaultInjector(clock=lambda: env.now)
        injector.install("redis", kvstore)
        injector.fail("redis", duration_s=2.0)
        kvstore.execute(["GET", "k"])   # raises ServiceUnavailable
    """

    def __init__(self, clock: Callable[[], float]):
        self.clock = clock
        self._down_until: Dict[str, float] = {}
        self._installed: Dict[str, object] = {}
        #: (time, service, operation) per refused request.
        self.refusals: List[Tuple[float, str, str]] = []

    def install(self, service: str, instance: object) -> None:
        """Attach this injector as ``instance.fault_gate``."""
        if not hasattr(instance, "fault_gate"):
            raise TypeError(
                f"{type(instance).__name__} has no fault_gate attribute"
            )
        instance.fault_gate = self._gate_for(service)
        self._installed[service] = instance

    def uninstall(self, service: str) -> None:
        instance = self._installed.pop(service, None)
        if instance is not None:
            instance.fault_gate = None
        self._down_until.pop(service, None)

    def fail(self, service: str, duration_s: float) -> None:
        """Open (or extend) the outage window for ``service``."""
        if duration_s < 0:
            raise ValueError("duration cannot be negative")
        until = self.clock() + duration_s
        self._down_until[service] = max(
            self._down_until.get(service, 0.0), until
        )

    def restore(self, service: str) -> None:
        self._down_until.pop(service, None)

    def is_down(self, service: str) -> bool:
        return self.outage_remaining_s(service) > 0

    def outage_remaining_s(self, service: str) -> float:
        return max(0.0, self._down_until.get(service, 0.0) - self.clock())

    def _gate_for(self, service: str) -> Callable[[str], None]:
        def gate(operation: str) -> None:
            remaining = self.outage_remaining_s(service)
            if remaining > 0:
                self.refusals.append((self.clock(), service, operation))
                raise ServiceUnavailable(service, operation, remaining)

        return gate
