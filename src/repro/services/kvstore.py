"""A Redis-style in-memory key-value store.

Implements the slice of Redis the RedisInsert/RedisUpdate workloads (and
realistic FaaS applications) need: string SET/GET with NX/XX modes,
DEL/EXISTS, INCR/DECR counters, key expiry (EXPIRE/TTL, SET ... EX),
APPEND/STRLEN, and KEYS with glob patterns — all behind both a direct
method API and a Redis-like command-list protocol (:meth:`execute`).

Time is injected (``clock``) so the store works identically under the
simulation clock and the wall clock.
"""

from __future__ import annotations

import fnmatch
import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

Value = str


class KvError(Exception):
    """Protocol or type error, as a Redis client would receive."""


@dataclass
class _Entry:
    #: str for strings, dict for hashes, list for lists.
    value: Union[Value, Dict[str, Value], List[Value]]
    expires_at: Optional[float]  # absolute time, None = no expiry

    @property
    def kind(self) -> str:
        if isinstance(self.value, dict):
            return "hash"
        if isinstance(self.value, list):
            return "list"
        return "string"


class KeyValueStore:
    """An in-memory string key-value store with expiry."""

    def __init__(self, clock: Callable[[], float] = _time.monotonic):
        self._clock = clock
        self._data: Dict[str, _Entry] = {}
        self.ops_processed = 0
        #: Chaos hook (see :mod:`repro.services.chaos`): called with the
        #: operation name at the wire entry point; may raise.
        self.fault_gate: Optional[Callable[[str], None]] = None

    # -- internals -------------------------------------------------------------

    def _live_entry(self, key: str) -> Optional[_Entry]:
        entry = self._data.get(key)
        if entry is None:
            return None
        if entry.expires_at is not None and self._clock() >= entry.expires_at:
            del self._data[key]
            return None
        return entry

    def _typed_entry(self, key: str, kind: str) -> Optional[_Entry]:
        """Fetch a live entry, enforcing Redis WRONGTYPE semantics."""
        entry = self._live_entry(key)
        if entry is not None and entry.kind != kind:
            raise KvError(
                f"WRONGTYPE key {key!r} holds a {entry.kind}, not a {kind}"
            )
        return entry

    # -- string commands ---------------------------------------------------------

    def set(
        self,
        key: str,
        value: Value,
        ex: Optional[float] = None,
        nx: bool = False,
        xx: bool = False,
    ) -> bool:
        """SET.  ``nx`` = only if absent, ``xx`` = only if present.

        Returns True if the value was stored.
        """
        self.ops_processed += 1
        if nx and xx:
            raise KvError("NX and XX are mutually exclusive")
        if ex is not None and ex <= 0:
            raise KvError("EX must be positive")
        exists = self._live_entry(key) is not None
        if nx and exists:
            return False
        if xx and not exists:
            return False
        expires_at = None if ex is None else self._clock() + ex
        self._data[key] = _Entry(value=str(value), expires_at=expires_at)
        return True

    def get(self, key: str) -> Optional[Value]:
        """GET: the value, or None when missing/expired."""
        self.ops_processed += 1
        entry = self._typed_entry(key, "string")
        return None if entry is None else entry.value

    def delete(self, *keys: str) -> int:
        """DEL: remove keys, returning how many existed."""
        self.ops_processed += 1
        removed = 0
        for key in keys:
            if self._live_entry(key) is not None:
                del self._data[key]
                removed += 1
        return removed

    def exists(self, *keys: str) -> int:
        """EXISTS: how many of the given keys are present."""
        self.ops_processed += 1
        return sum(1 for key in keys if self._live_entry(key) is not None)

    def incr(self, key: str, amount: int = 1) -> int:
        """INCR/INCRBY: atomic counter increment."""
        self.ops_processed += 1
        entry = self._typed_entry(key, "string")
        if entry is None:
            current = 0
            expires_at = None
        else:
            try:
                current = int(entry.value)
            except ValueError:
                raise KvError("value is not an integer") from None
            expires_at = entry.expires_at
        current += amount
        self._data[key] = _Entry(value=str(current), expires_at=expires_at)
        return current

    def decr(self, key: str, amount: int = 1) -> int:
        """DECR/DECRBY."""
        return self.incr(key, -amount)

    def append(self, key: str, suffix: Value) -> int:
        """APPEND: concatenate, returning the new length."""
        self.ops_processed += 1
        entry = self._typed_entry(key, "string")
        value = (entry.value if entry else "") + str(suffix)
        expires_at = entry.expires_at if entry else None
        self._data[key] = _Entry(value=value, expires_at=expires_at)
        return len(value)

    def strlen(self, key: str) -> int:
        """STRLEN: 0 for missing keys."""
        self.ops_processed += 1
        entry = self._typed_entry(key, "string")
        return 0 if entry is None else len(entry.value)

    # -- hash commands -------------------------------------------------------------

    def hset(self, key: str, field_name: str, value: Value) -> int:
        """HSET: set one hash field; returns 1 if the field is new."""
        self.ops_processed += 1
        entry = self._typed_entry(key, "hash")
        if entry is None:
            entry = _Entry(value={}, expires_at=None)
            self._data[key] = entry
        created = int(field_name not in entry.value)
        entry.value[field_name] = str(value)
        return created

    def hget(self, key: str, field_name: str) -> Optional[Value]:
        """HGET: one field, or None."""
        self.ops_processed += 1
        entry = self._typed_entry(key, "hash")
        if entry is None:
            return None
        return entry.value.get(field_name)

    def hgetall(self, key: str) -> Dict[str, Value]:
        """HGETALL: the whole hash ({} when missing)."""
        self.ops_processed += 1
        entry = self._typed_entry(key, "hash")
        return dict(entry.value) if entry is not None else {}

    def hdel(self, key: str, *field_names: str) -> int:
        """HDEL: remove fields, returning how many existed.

        An emptied hash disappears, as in Redis.
        """
        self.ops_processed += 1
        entry = self._typed_entry(key, "hash")
        if entry is None:
            return 0
        removed = 0
        for field_name in field_names:
            if field_name in entry.value:
                del entry.value[field_name]
                removed += 1
        if not entry.value:
            del self._data[key]
        return removed

    def hlen(self, key: str) -> int:
        """HLEN: field count (0 when missing)."""
        self.ops_processed += 1
        entry = self._typed_entry(key, "hash")
        return len(entry.value) if entry is not None else 0

    # -- list commands --------------------------------------------------------------

    def _list_entry(self, key: str, create: bool) -> Optional[_Entry]:
        entry = self._typed_entry(key, "list")
        if entry is None and create:
            entry = _Entry(value=[], expires_at=None)
            self._data[key] = entry
        return entry

    def lpush(self, key: str, *values: Value) -> int:
        """LPUSH: prepend values (leftmost ends up first); new length."""
        self.ops_processed += 1
        if not values:
            raise KvError("LPUSH needs at least one value")
        entry = self._list_entry(key, create=True)
        for value in values:
            entry.value.insert(0, str(value))
        return len(entry.value)

    def rpush(self, key: str, *values: Value) -> int:
        """RPUSH: append values; returns the new length."""
        self.ops_processed += 1
        if not values:
            raise KvError("RPUSH needs at least one value")
        entry = self._list_entry(key, create=True)
        entry.value.extend(str(v) for v in values)
        return len(entry.value)

    def lpop(self, key: str) -> Optional[Value]:
        """LPOP: remove and return the head (None when empty)."""
        self.ops_processed += 1
        entry = self._list_entry(key, create=False)
        if entry is None or not entry.value:
            return None
        value = entry.value.pop(0)
        if not entry.value:
            del self._data[key]
        return value

    def rpop(self, key: str) -> Optional[Value]:
        """RPOP: remove and return the tail."""
        self.ops_processed += 1
        entry = self._list_entry(key, create=False)
        if entry is None or not entry.value:
            return None
        value = entry.value.pop()
        if not entry.value:
            del self._data[key]
        return value

    def llen(self, key: str) -> int:
        """LLEN: list length (0 when missing)."""
        self.ops_processed += 1
        entry = self._list_entry(key, create=False)
        return len(entry.value) if entry is not None else 0

    def lrange(self, key: str, start: int, stop: int) -> List[Value]:
        """LRANGE with Redis's inclusive, negative-index semantics."""
        self.ops_processed += 1
        entry = self._list_entry(key, create=False)
        if entry is None:
            return []
        values = entry.value
        length = len(values)
        if start < 0:
            start = max(0, length + start)
        if stop < 0:
            stop = length + stop
        return list(values[start : stop + 1])

    # -- expiry -----------------------------------------------------------------

    def expire(self, key: str, seconds: float) -> bool:
        """EXPIRE: set a TTL; False if the key does not exist."""
        self.ops_processed += 1
        if seconds <= 0:
            raise KvError("expiry must be positive")
        entry = self._live_entry(key)
        if entry is None:
            return False
        entry.expires_at = self._clock() + seconds
        return True

    def persist(self, key: str) -> bool:
        """PERSIST: remove a TTL; False if none was set."""
        self.ops_processed += 1
        entry = self._live_entry(key)
        if entry is None or entry.expires_at is None:
            return False
        entry.expires_at = None
        return True

    def ttl(self, key: str) -> float:
        """TTL: seconds remaining; -2 if missing, -1 if no expiry."""
        self.ops_processed += 1
        entry = self._live_entry(key)
        if entry is None:
            return -2.0
        if entry.expires_at is None:
            return -1.0
        return entry.expires_at - self._clock()

    # -- keyspace -----------------------------------------------------------------

    def keys(self, pattern: str = "*") -> List[str]:
        """KEYS: glob-match live keys (sorted, for determinism)."""
        self.ops_processed += 1
        return sorted(
            key
            for key in list(self._data)
            if self._live_entry(key) is not None
            and fnmatch.fnmatchcase(key, pattern)
        )

    def dbsize(self) -> int:
        """DBSIZE: number of live keys."""
        self.ops_processed += 1
        return sum(1 for key in list(self._data) if self._live_entry(key))

    def flushall(self) -> None:
        """FLUSHALL."""
        self.ops_processed += 1
        self._data.clear()

    # -- command protocol ----------------------------------------------------------

    def execute(self, command: List[str]) -> Union[None, bool, int, float, str, List[str]]:
        """Execute a Redis-style command list, e.g. ``["SET", "k", "v"]``.

        This is the wire-level entry point the workload clients use.
        """
        if self.fault_gate is not None:
            self.fault_gate("execute")
        if not command:
            raise KvError("empty command")
        op = command[0].upper()
        args = command[1:]
        handlers = {
            "SET": self._cmd_set,
            "GET": lambda a: self._arity(a, 1) or self.get(a[0]),
            "DEL": lambda a: self.delete(*a) if a else self._arity(a, 1),
            "EXISTS": lambda a: self.exists(*a) if a else self._arity(a, 1),
            "INCR": lambda a: self._arity(a, 1) or self.incr(a[0]),
            "INCRBY": lambda a: self._arity(a, 2) or self.incr(a[0], int(a[1])),
            "DECR": lambda a: self._arity(a, 1) or self.decr(a[0]),
            "APPEND": lambda a: self._arity(a, 2) or self.append(a[0], a[1]),
            "STRLEN": lambda a: self._arity(a, 1) or self.strlen(a[0]),
            "EXPIRE": lambda a: self._arity(a, 2) or self.expire(a[0], float(a[1])),
            "PERSIST": lambda a: self._arity(a, 1) or self.persist(a[0]),
            "TTL": lambda a: self._arity(a, 1) or self.ttl(a[0]),
            "HSET": lambda a: self._arity(a, 3) or self.hset(a[0], a[1], a[2]),
            "HGET": lambda a: self._arity(a, 2) or self.hget(a[0], a[1]),
            "HGETALL": lambda a: self._arity(a, 1) or self.hgetall(a[0]),
            "HDEL": (
                lambda a: self.hdel(a[0], *a[1:]) if len(a) >= 2
                else self._arity(a, 2)
            ),
            "HLEN": lambda a: self._arity(a, 1) or self.hlen(a[0]),
            "LPUSH": (
                lambda a: self.lpush(a[0], *a[1:]) if len(a) >= 2
                else self._arity(a, 2)
            ),
            "RPUSH": (
                lambda a: self.rpush(a[0], *a[1:]) if len(a) >= 2
                else self._arity(a, 2)
            ),
            "LPOP": lambda a: self._arity(a, 1) or self.lpop(a[0]),
            "RPOP": lambda a: self._arity(a, 1) or self.rpop(a[0]),
            "LLEN": lambda a: self._arity(a, 1) or self.llen(a[0]),
            "LRANGE": (
                lambda a: self._arity(a, 3)
                or self.lrange(a[0], int(a[1]), int(a[2]))
            ),
            "KEYS": lambda a: self.keys(a[0] if a else "*"),
            "DBSIZE": lambda a: self.dbsize(),
            "FLUSHALL": lambda a: self.flushall(),
        }
        handler = handlers.get(op)
        if handler is None:
            raise KvError(f"unknown command {op!r}")
        return handler(args)

    @staticmethod
    def _arity(args: List[str], expected: int) -> None:
        if len(args) != expected:
            raise KvError(
                f"wrong number of arguments: expected {expected}, got {len(args)}"
            )
        return None

    def _cmd_set(self, args: List[str]):
        if len(args) < 2:
            raise KvError("SET needs a key and a value")
        key, value = args[0], args[1]
        ex: Optional[float] = None
        nx = xx = False
        rest = [token.upper() for token in args[2:]]
        i = 0
        while i < len(rest):
            token = rest[i]
            if token == "EX":
                if i + 1 >= len(rest):
                    raise KvError("EX needs a value")
                ex = float(args[2 + i + 1])
                i += 2
            elif token == "NX":
                nx = True
                i += 1
            elif token == "XX":
                xx = True
                i += 1
            else:
                raise KvError(f"unknown SET option {token!r}")
        return self.set(key, value, ex=ex, nx=nx, xx=xx)


__all__ = ["KeyValueStore", "KvError"]
