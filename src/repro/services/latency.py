"""Calibrated service-side operation latencies for the simulation layer.

When a workload function runs *for real* (:mod:`repro.runtime`) it calls
the in-process services directly.  When it runs inside the cluster
simulation, the worker instead waits out the operation's service time
plus the network round trip; this module holds the calibrated per-
operation service times (what the backend SBC spends processing one
request, excluding network).

Values are representative of the paper's backend SBCs: single-core ARM
boxes running Redis/PostgreSQL/MinIO/Kafka — fast for point ops, tens of
milliseconds for query processing and object handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

#: Service processing time per operation, seconds.
SERVICE_LATENCY: Mapping[str, float] = {
    "kv.set": 0.35e-3,
    "kv.get": 0.30e-3,
    "kv.update": 0.40e-3,
    "sql.select": 22e-3,
    "sql.update": 28e-3,
    "cos.get": 18e-3,
    "cos.put": 24e-3,
    "mq.produce": 1.4e-3,
    "mq.consume": 1.8e-3,
}


@dataclass(frozen=True)
class ServiceLatencyModel:
    """Lookup with optional uniform scaling (e.g. a loaded backend)."""

    latencies: Mapping[str, float] = None
    load_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.latencies is None:
            object.__setattr__(self, "latencies", dict(SERVICE_LATENCY))
        if self.load_factor <= 0:
            raise ValueError(f"load_factor must be positive, got {self.load_factor}")
        bad = {op: t for op, t in self.latencies.items() if t < 0}
        if bad:
            raise ValueError(f"negative latencies: {bad}")

    def service_time_s(self, operation: str) -> float:
        """Service time for one operation."""
        if operation not in self.latencies:
            raise KeyError(
                f"unknown service operation {operation!r}; "
                f"known: {sorted(self.latencies)}"
            )
        return self.latencies[operation] * self.load_factor


__all__ = ["SERVICE_LATENCY", "ServiceLatencyModel"]
