"""Response futures: the client-visible handle on one invocation.

A :class:`ResponseFuture` tracks one *call* — the client-level unit —
through a deterministic state machine::

    NEW ──► INVOKED ──► RUNNING ──► SUCCESS
              │  ▲         │   │
              │  └─────────┘   └──► ERROR
              │   (client retry)

- ``NEW``: accepted by the executor, not yet handed to the backend
  (a batching invoker buffers it, or parent futures are unresolved).
- ``INVOKED``: a backend job exists for the call.  A *client retry*
  (the backend job failed or timed out, and the
  :class:`~repro.client.retries.RetryPolicy` has budget) re-enters
  ``INVOKED`` with a fresh backend job; each hop is recorded in
  :attr:`retry_history`.
- ``RUNNING``: the monitor observed the backend attempt executing
  (opt-in; backends that cannot expose attempt starts skip it —
  the state is optional, never required, in the legal sequences).
- ``SUCCESS``/``ERROR``: terminal.  Exactly one result is delivered
  per call, however many backend attempts raced for it.

Every transition is validated against :data:`LEGAL_TRANSITIONS` and
appended to :attr:`state_log` with its simulated timestamp, so
property tests can assert that *any* interleaving of completions,
retries, and timeouts yields a legal sequence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple


class FutureState(enum.Enum):
    """Client-side lifecycle states of one call."""

    NEW = "new"
    INVOKED = "invoked"
    RUNNING = "running"
    SUCCESS = "success"
    ERROR = "error"


#: The full transition relation.  ``INVOKED → INVOKED`` and
#: ``RUNNING → INVOKED`` are client retries (a fresh backend job for
#: the same call); the terminal states admit nothing.
LEGAL_TRANSITIONS = {
    FutureState.NEW: frozenset({FutureState.INVOKED, FutureState.ERROR}),
    FutureState.INVOKED: frozenset(
        {
            FutureState.RUNNING,
            FutureState.SUCCESS,
            FutureState.ERROR,
            FutureState.INVOKED,
        }
    ),
    FutureState.RUNNING: frozenset(
        {FutureState.SUCCESS, FutureState.ERROR, FutureState.INVOKED}
    ),
    FutureState.SUCCESS: frozenset(),
    FutureState.ERROR: frozenset(),
}


def is_legal_sequence(states: List[FutureState]) -> bool:
    """Whether a recorded state sequence obeys the transition relation."""
    if not states or states[0] is not FutureState.NEW:
        return False
    return all(
        after in LEGAL_TRANSITIONS[before]
        for before, after in zip(states, states[1:])
    )


class IllegalTransition(RuntimeError):
    """A future was driven through a transition outside the relation."""


@dataclass(frozen=True)
class RetryRecord:
    """One client-side retry hop in a future's history."""

    #: 1-based retry number (the first retry is 1).
    retry: int
    #: Backend key of the attempt that failed/timed out.
    failed_key: Any
    #: Why the client retried ("failure: ..." or "timeout").
    reason: str
    #: Simulated time the retry was scheduled, and the backoff paid.
    t_scheduled: float
    backoff_s: float


class ResponseFuture:
    """Handle on one client call; resolved by the job monitor."""

    __slots__ = (
        "call_id",
        "function",
        "state",
        "state_log",
        "key",
        "keys",
        "retry_history",
        "client_retries",
        "t_created",
        "t_invoked",
        "t_done",
        "trace_id",
        "output_bytes",
        "parents",
        "_value",
        "_error",
        "_done_callbacks",
    )

    def __init__(self, call_id: int, function: str, t_created: float,
                 parents: Tuple["ResponseFuture", ...] = ()):
        self.call_id = call_id
        self.function = function
        self.state = FutureState.NEW
        #: Every state entered, with its simulated timestamp.
        self.state_log: List[Tuple[FutureState, float]] = [
            (FutureState.NEW, t_created)
        ]
        #: Current backend key (e.g. orchestrator job id), and every
        #: key this call ever launched (retries append).
        self.key: Optional[Any] = None
        self.keys: List[Any] = []
        self.retry_history: List[RetryRecord] = []
        self.client_retries = 0
        self.t_created = t_created
        self.t_invoked: Optional[float] = None
        self.t_done: Optional[float] = None
        #: Trace id of the current backend job (None when unsampled).
        self.trace_id: Optional[Any] = None
        #: Output payload size of the delivered result (drives the
        #: input billing of dependent calls).
        self.output_bytes: int = 0
        self.parents: Tuple["ResponseFuture", ...] = tuple(parents)
        self._value: Any = None
        self._error: Optional[str] = None
        self._done_callbacks: List[Callable[["ResponseFuture"], None]] = []

    # -- state machine -------------------------------------------------------

    def _transition(self, new: FutureState, now: float) -> None:
        if new not in LEGAL_TRANSITIONS[self.state]:
            raise IllegalTransition(
                f"call {self.call_id}: {self.state.value} -> {new.value}"
            )
        self.state = new
        self.state_log.append((new, now))

    def mark_invoked(self, key: Any, now: float) -> None:
        self._transition(FutureState.INVOKED, now)
        self.key = key
        self.keys.append(key)
        if self.t_invoked is None:
            self.t_invoked = now

    def mark_running(self, now: float) -> None:
        if self.state is FutureState.RUNNING or self.done:
            return
        self._transition(FutureState.RUNNING, now)

    def mark_success(self, value: Any, output_bytes: int, now: float) -> None:
        self._transition(FutureState.SUCCESS, now)
        self._value = value
        self.output_bytes = output_bytes
        self.t_done = now
        self._fire_done()

    def mark_error(self, reason: str, now: float) -> None:
        self._transition(FutureState.ERROR, now)
        self._error = reason
        self.t_done = now
        self._fire_done()

    def _fire_done(self) -> None:
        callbacks, self._done_callbacks = self._done_callbacks, []
        for callback in callbacks:
            callback(self)

    # -- inspection ----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in (FutureState.SUCCESS, FutureState.ERROR)

    @property
    def success(self) -> bool:
        return self.state is FutureState.SUCCESS

    @property
    def error(self) -> Optional[str]:
        """Terminal failure reason (None unless state is ERROR)."""
        return self._error

    @property
    def latency_s(self) -> Optional[float]:
        """Client-perceived latency: creation to resolution."""
        if self.t_done is None:
            return None
        return self.t_done - self.t_created

    def result(self, raise_on_error: bool = True) -> Any:
        """The delivered result (an invocation record, or the backend's
        native handle).  Raises :class:`FutureError` on an ERROR future
        unless ``raise_on_error`` is False, and :class:`RuntimeError`
        when the future is not resolved yet — call
        :meth:`~repro.client.executor.FunctionExecutor.wait` first."""
        if self.state is FutureState.ERROR:
            if raise_on_error:
                raise FutureError(
                    f"call {self.call_id} ({self.function}): {self._error}"
                )
            return None
        if self.state is not FutureState.SUCCESS:
            raise RuntimeError(
                f"call {self.call_id} is {self.state.value}; wait() first"
            )
        return self._value

    def add_done_callback(
        self, callback: Callable[["ResponseFuture"], None]
    ) -> None:
        """Run ``callback(future)`` at resolution (immediately if the
        future is already resolved) — the chaining primitive."""
        if self.done:
            callback(self)
        else:
            self._done_callbacks.append(callback)

    def record_retry(self, record: RetryRecord) -> None:
        self.client_retries += 1
        self.retry_history.append(record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResponseFuture {self.call_id} {self.function} "
            f"{self.state.value}>"
        )


class FutureError(RuntimeError):
    """Raised by :meth:`ResponseFuture.result` on an ERROR future."""


__all__ = [
    "FutureError",
    "FutureState",
    "IllegalTransition",
    "LEGAL_TRANSITIONS",
    "ResponseFuture",
    "RetryRecord",
    "is_legal_sequence",
]
