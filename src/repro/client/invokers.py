"""Invokers: how accepted calls become backend submissions.

The executor accepts calls; an invoker decides *when* the backend
sees them:

- :class:`SyncInvoker` submits every call immediately, one at a time
  — the simplest mapping, one heap push per call.
- :class:`BatchInvoker` (the default) buffers same-tick submissions
  and flushes them as **one** backend batch inside a kernel bulk
  window, so an SDK ``map`` of N calls rides the batched-arrival fast
  path exactly like ``orchestrator.submit_batch`` — same submission
  order, same event timing, one heap merge instead of N pushes.

Both invokers bind each submitted call back to its future through the
``bind(future, handle)`` callback the executor installs, at the
simulated instant the backend accepted it.  The executor flushes the
batching invoker before every ``wait``/``get_result`` and whenever a
chained call must observe prior submissions, so buffering is never
visible to client code.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.client.backends import CallSpec
from repro.client.futures import ResponseFuture

#: ``bind(future, handle)`` — installed by the executor.
BindCallback = Callable[[ResponseFuture, object], None]


class SyncInvoker:
    """Submit every call to the backend the moment it arrives."""

    name = "sync"

    def __init__(self, backend, bind: BindCallback):
        self.backend = backend
        self.bind = bind

    def invoke(self, future: ResponseFuture, spec: CallSpec) -> None:
        self.bind(future, self.backend.submit(spec))

    def invoke_many(
        self, pairs: List[Tuple[ResponseFuture, CallSpec]]
    ) -> None:
        for future, spec in pairs:
            self.invoke(future, spec)

    def flush(self) -> None:
        pass

    @property
    def pending(self) -> int:
        return 0


class BatchInvoker:
    """Group same-tick submissions into one backend batch."""

    name = "batch"

    def __init__(self, backend, bind: BindCallback):
        self.backend = backend
        self.bind = bind
        self._buffer: List[Tuple[ResponseFuture, CallSpec]] = []
        #: Batches flushed / calls carried (throughput stats).
        self.batches_flushed = 0
        self.calls_flushed = 0

    def invoke(self, future: ResponseFuture, spec: CallSpec) -> None:
        self._buffer.append((future, spec))

    def invoke_many(
        self, pairs: List[Tuple[ResponseFuture, CallSpec]]
    ) -> None:
        self._buffer.extend(pairs)

    def flush(self) -> None:
        """Submit the whole buffer as one backend batch, in order."""
        if not self._buffer:
            return
        buffered, self._buffer = self._buffer, []
        handles = self.backend.submit_batch([spec for _, spec in buffered])
        self.batches_flushed += 1
        self.calls_flushed += len(buffered)
        for (future, _spec), handle in zip(buffered, handles):
            self.bind(future, handle)

    @property
    def pending(self) -> int:
        return len(self._buffer)


def make_invoker(kind: str, backend, bind: BindCallback):
    """Build an invoker by name (``"batch"`` or ``"sync"``)."""
    if kind == "batch":
        return BatchInvoker(backend, bind)
    if kind == "sync":
        return SyncInvoker(backend, bind)
    raise ValueError(f"unknown invoker {kind!r} (want 'batch' or 'sync')")


__all__ = ["BatchInvoker", "BindCallback", "SyncInvoker", "make_invoker"]
