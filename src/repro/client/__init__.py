"""`repro.client` — a Lithops-style FunctionExecutor SDK.

The programming-model front door over the cluster/federation stack
(ROADMAP item 2)::

    from repro.client import FunctionExecutor
    from repro.cluster import MicroFaaSCluster

    ex = FunctionExecutor(MicroFaaSCluster(10, seed=1))
    futures = ex.map("MatMul", 100)
    done, _ = ex.wait(futures)
    records = [f.result() for f in done]

Layers: :class:`FunctionExecutor` (call_async / map / map_reduce /
wait / get_result) → invokers (sync or same-tick batching) → backend
adapters (any harness cluster, or a federation gateway) → a
:class:`JobMonitor` fed by push-style ``on_job_done`` hooks →
:class:`ResponseFuture` state machines, with an optional client-side
:class:`RetryPolicy` layered on the orchestrator's recovery stack.
"""

from repro.client.backends import (
    CallSpec,
    ClusterBackend,
    FederationBackend,
    as_backend,
)
from repro.client.executor import (
    ALL_COMPLETED,
    ALWAYS,
    ANY_COMPLETED,
    FunctionExecutor,
)
from repro.client.futures import (
    FutureError,
    FutureState,
    IllegalTransition,
    LEGAL_TRANSITIONS,
    ResponseFuture,
    RetryRecord,
    is_legal_sequence,
)
from repro.client.invokers import BatchInvoker, SyncInvoker, make_invoker
from repro.client.monitor import JobMonitor, MonitorStats
from repro.client.retries import RetryPolicy

__all__ = [
    "ALL_COMPLETED",
    "ALWAYS",
    "ANY_COMPLETED",
    "BatchInvoker",
    "CallSpec",
    "ClusterBackend",
    "FederationBackend",
    "FunctionExecutor",
    "FutureError",
    "FutureState",
    "IllegalTransition",
    "JobMonitor",
    "LEGAL_TRANSITIONS",
    "MonitorStats",
    "ResponseFuture",
    "RetryPolicy",
    "RetryRecord",
    "SyncInvoker",
    "as_backend",
    "is_legal_sequence",
    "make_invoker",
]
