"""The FunctionExecutor: a Lithops-style front door for the cluster.

One executor drives one backend (any harness-built cluster, or a
federation via its gateway) through futures::

    ex = FunctionExecutor(MicroFaaSCluster(10, seed=1))
    futures = ex.map("MatMul", 100)
    done, _ = ex.wait(futures)            # runs the simulation
    records = [f.result() for f in done]

Pieces (see ARCHITECTURE.md, "Client programming model"):

- an **invoker** turns accepted calls into backend submissions — the
  default :class:`~repro.client.invokers.BatchInvoker` groups
  same-tick submissions into one `submit_batch` bulk window;
- the **monitor** receives pushed resolutions through the backend's
  ``on_job_done`` hook and resolves futures — nothing polls;
- a client :class:`~repro.client.retries.RetryPolicy` relaunches
  failed/timed-out calls as fresh backend jobs (same idempotency
  key; first resolution wins, duplicates are counted, delivered work
  is never double-counted);
- **futures-as-inputs chaining**: ``call_async(fn, parents=[...])``
  invokes when every parent resolves, billing the parents' output
  bytes as extra input through the backend transfer model.

Determinism: with the default (no retry policy, no RUNNING tracking)
the SDK schedules zero extra simulation events and draws no RNG, so
an SDK-driven ``map`` is bit-identical to the equivalent
``submit_batch`` replay; retry jitter, when enabled, is hash-derived
per call id.  Client trace spans (``client_submit`` / ``client_wait``
/ ``client_retry``) nest as annotations into the
:mod:`repro.obs` span tree of each traced job.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

from repro.client.backends import CallSpec, as_backend
from repro.client.futures import ResponseFuture, RetryRecord
from repro.client.invokers import make_invoker
from repro.client.monitor import JobMonitor
from repro.client.retries import RetryPolicy
from repro.obs import trace as obs
from repro.sim.kernel import SimulationError

#: ``wait(return_when=...)`` modes (concurrent.futures vocabulary).
ALL_COMPLETED = "ALL_COMPLETED"
ANY_COMPLETED = "ANY_COMPLETED"
ALWAYS = "ALWAYS"

_RETURN_WHEN = frozenset({ALL_COMPLETED, ANY_COMPLETED, ALWAYS})


class FunctionExecutor:
    """Futures-based executor over one cluster/federation backend."""

    def __init__(
        self,
        backend,
        invoker: str = "batch",
        retries: Optional[RetryPolicy] = None,
        track_running: bool = False,
        executor_id: int = 0,
    ):
        self.backend = as_backend(backend)
        self.env = self.backend.env
        self.retries = retries
        self.executor_id = executor_id
        self.monitor = JobMonitor(
            self.env, self.backend, on_failure=self._on_call_failure
        )
        if (retries is not None and retries.call_timeout_s is not None) or (
            track_running
        ):
            self.monitor.configure_ticks(
                timeout_s=(
                    retries.call_timeout_s if retries is not None else None
                ),
                tick_s=(
                    retries.monitor_tick_s if retries is not None else 0.5
                ),
                track_running=track_running,
            )
        self.invoker = make_invoker(invoker, self.backend, self._bind)
        #: Every future this executor created, in call order.
        self.futures: List[ResponseFuture] = []
        self._next_call_id = 0
        self._specs = {}

    # -- binding -------------------------------------------------------------

    def _bind(self, future: ResponseFuture, handle) -> None:
        """A backend job now exists for the call: advance the future to
        INVOKED, start monitoring its key, and annotate its trace."""
        now = self.env.now
        key = self.backend.key_of(handle)
        future.mark_invoked(key, now)
        future.trace_id = self.backend.trace_id_of(handle)
        self.monitor.track(future, key)
        if future.trace_id is not None:
            if future.client_retries:
                self.backend.annotate(
                    future.trace_id, obs.CLIENT_RETRY, now,
                    attrs={
                        "call_id": future.call_id,
                        "retry": future.client_retries,
                    },
                )
            else:
                self.backend.annotate(
                    future.trace_id, obs.CLIENT_SUBMIT, now,
                    attrs={"call_id": future.call_id},
                )

    def _spec(
        self,
        future: ResponseFuture,
        function: str,
        extra_input_bytes: int,
        geo: Optional[str],
        priority: int,
    ) -> CallSpec:
        spec = CallSpec(
            function=function,
            extra_input_bytes=extra_input_bytes,
            idempotency_key=(
                f"client/{self.executor_id}/{future.call_id}"
            ),
            geo=geo,
            priority=priority,
        )
        self._specs[future.call_id] = spec
        return spec

    # -- call surface --------------------------------------------------------

    def call_async(
        self,
        function: str,
        *,
        parents: Sequence[ResponseFuture] = (),
        geo: Optional[str] = None,
        priority: int = 1,
    ) -> ResponseFuture:
        """Accept one call; returns its future immediately.

        With ``parents``, the call invokes at the simulated instant
        the last parent resolves, and the parents' output bytes are
        billed as extra input (the minimal DAG primitive).  A failed
        parent fails the call without invoking it.
        """
        future = ResponseFuture(
            self._next_call_id, function, self.env.now,
            parents=tuple(parents),
        )
        self._next_call_id += 1
        self.futures.append(future)
        if parents:
            if not self.backend.supports_chaining:
                raise ValueError(
                    f"{self.backend.kind} backend does not support "
                    "futures-as-inputs chaining"
                )
            self._chain(future, tuple(parents), geo, priority)
        else:
            self.invoker.invoke(
                future, self._spec(future, function, 0, geo, priority)
            )
        return future

    def _chain(
        self,
        future: ResponseFuture,
        parents: Tuple[ResponseFuture, ...],
        geo: Optional[str],
        priority: int,
    ) -> None:
        state = {"pending": len(parents)}

        def parent_done(parent: ResponseFuture) -> None:
            if future.done:
                return  # an earlier parent already failed the call
            if not parent.success:
                self.monitor.resolve_error(
                    future,
                    f"parent call {parent.call_id} failed: {parent.error}",
                )
                return
            state["pending"] -= 1
            if state["pending"] == 0:
                # Invoke *now*, at the resolution instant — chained
                # calls bypass the batching buffer so the dependency
                # fires in simulated time, not at the next flush.
                extra = sum(p.output_bytes for p in parents)
                spec = self._spec(
                    future, future.function, extra, geo, priority
                )
                self._bind(future, self.backend.submit(spec))

        for parent in parents:
            parent.add_done_callback(parent_done)

    def map(
        self,
        functions: Union[str, Iterable[str]],
        count: Optional[int] = None,
        *,
        geo: Optional[str] = None,
        priority: int = 1,
    ) -> List[ResponseFuture]:
        """Fan out: one call per function name.

        ``map("MatMul", 100)`` issues 100 invocations of one function;
        ``map(["FloatOps", "AES128", ...])`` issues one per listed
        name, in order.  Over the default batching invoker the whole
        fan-out reaches the backend as a single bulk-window batch.
        """
        if isinstance(functions, str):
            if count is None:
                raise ValueError("map(name, count) needs a count")
            names = [functions] * count
        else:
            if count is not None:
                raise ValueError("count only applies to a single name")
            names = list(functions)
        pairs = []
        for name in names:
            future = ResponseFuture(self._next_call_id, name, self.env.now)
            self._next_call_id += 1
            self.futures.append(future)
            pairs.append(
                (future, self._spec(future, name, 0, geo, priority))
            )
        self.invoker.invoke_many(pairs)
        return [future for future, _spec in pairs]

    def map_reduce(
        self,
        map_functions: Union[str, Iterable[str]],
        reduce_function: str,
        count: Optional[int] = None,
        *,
        geo: Optional[str] = None,
        priority: int = 1,
    ) -> ResponseFuture:
        """Fan out, then chain one reduce call on every map future.

        Returns the reduce future; its ``parents`` are the map
        futures.  The reduce call invokes when the last map resolves,
        with every map output billed into its input transfer.
        """
        maps = self.map(map_functions, count, geo=geo, priority=priority)
        return self.call_async(
            reduce_function, parents=maps, geo=geo, priority=priority
        )

    # -- wait surface --------------------------------------------------------

    def wait(
        self,
        futures: Optional[Sequence[ResponseFuture]] = None,
        return_when: str = ALL_COMPLETED,
        timeout: Optional[float] = None,
    ) -> Tuple[List[ResponseFuture], List[ResponseFuture]]:
        """Run the simulation until the wait condition holds.

        ``return_when``:

        - ``ALL_COMPLETED`` (default) — every waited future resolved;
        - ``ANY_COMPLETED`` — at least one resolved;
        - ``ALWAYS`` — never advances the simulation; returns the
          current partition (after flushing the invoker).

        ``timeout`` (simulated seconds) bounds the wait; on expiry the
        partition is returned as-is.  Returns ``(done, not_done)``,
        both in the order the futures were passed (or created, when
        ``futures`` is None — the default waits on every call this
        executor ever accepted).
        """
        if return_when not in _RETURN_WHEN:
            raise ValueError(f"unknown return_when {return_when!r}")
        waited = list(futures) if futures is not None else list(self.futures)
        self.invoker.flush()
        now = self.env.now
        for future in waited:
            if not future.done and future.trace_id is not None:
                self.backend.annotate(
                    future.trace_id, obs.CLIENT_WAIT, now,
                    attrs={
                        "call_id": future.call_id,
                        "return_when": return_when,
                    },
                )
        if return_when == ALWAYS or not waited:
            return self._partition(waited)
        target = 1 if return_when == ANY_COMPLETED else len(waited)
        deadline = None if timeout is None else self.env.now + timeout
        env = self.env
        while sum(1 for f in waited if f.done) < target:
            event = self.monitor.group_event(waited, target)
            if deadline is not None:
                remaining = deadline - env.now
                if remaining <= 0:
                    break
                event = env.any_of([event, env.timeout(remaining)])
            try:
                env.run(until=event)
            except SimulationError:
                # The event queue drained with the condition unmet —
                # nothing left in the simulation can resolve these
                # futures (e.g. a chained call whose parents are not
                # being driven).  Surface the partition as-is.
                break
            if deadline is not None and env.now >= deadline:
                break
        return self._partition(waited)

    @staticmethod
    def _partition(
        waited: List[ResponseFuture],
    ) -> Tuple[List[ResponseFuture], List[ResponseFuture]]:
        done = [f for f in waited if f.done]
        not_done = [f for f in waited if not f.done]
        return done, not_done

    def get_result(
        self,
        futures: Union[ResponseFuture, Sequence[ResponseFuture], None] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Wait for and return results.

        One future in → its result; a sequence (or None = every call)
        in → the list of results, in order.  Raises
        :class:`~repro.client.futures.FutureError` if any waited call
        ended in ERROR.
        """
        single = isinstance(futures, ResponseFuture)
        waited = [futures] if single else futures
        done, not_done = self.wait(
            waited, return_when=ALL_COMPLETED, timeout=timeout
        )
        if not_done:
            raise TimeoutError(
                f"{len(not_done)} of {len(done) + len(not_done)} calls "
                "unresolved after wait"
            )
        if single:
            return futures.result()
        targets = list(waited) if waited is not None else list(self.futures)
        return [future.result() for future in targets]

    def drain(self) -> None:
        """Run until the backend itself is idle (late duplicate
        attempts included), so energy/trace windows seal.  Use after
        ``wait`` when a recovery policy may still have hedges in
        flight."""
        self.invoker.flush()
        event = self.backend.drain_event()
        if not event.triggered:
            self.env.run(until=event)

    # -- client retries ------------------------------------------------------

    def _on_call_failure(self, future: ResponseFuture, reason: str) -> None:
        """Monitor hook: a backend job failed or timed out."""
        policy = self.retries
        if policy is None or not policy.should_retry(future.client_retries):
            self.monitor.resolve_error(future, reason)
            return
        retry = future.client_retries + 1
        delay = policy.backoff_s(retry, future.call_id)
        future.record_retry(
            RetryRecord(
                retry=retry,
                failed_key=future.key,
                reason=reason,
                t_scheduled=self.env.now,
                backoff_s=delay,
            )
        )
        self.env.process(
            self._retry_later(future, delay),
            name=f"client-retry-{future.call_id}",
        )

    def _retry_later(self, future: ResponseFuture, delay: float):
        if delay > 0:
            yield self.env.timeout(delay)
        if future.done:
            return  # a duplicate of the original delivered meanwhile
        spec = self._specs[future.call_id]
        self._bind(future, self.backend.submit(spec))

    # -- stats ---------------------------------------------------------------

    @property
    def stats(self):
        """The monitor's lifetime counters."""
        return self.monitor.stats


__all__ = [
    "ALL_COMPLETED",
    "ALWAYS",
    "ANY_COMPLETED",
    "FunctionExecutor",
]
