"""The job monitor: push-driven tracking of in-flight calls.

One :class:`JobMonitor` per executor.  It subscribes to the backend's
``on_job_done`` hook at construction — results are *pushed* into the
monitor at the simulated instant they resolve; nothing ever polls
``result_snapshot``.  The monitor:

- maps every backend key (each client retry launches a fresh key) to
  its future, delivering exactly the first resolution per call and
  counting later ones as suppressed duplicates;
- hands failures to the executor's retry logic instead of resolving
  the future, so a call only reaches ERROR when its client retry
  budget is spent;
- wakes ``wait()`` through one-shot resolution events (no busy loop:
  each ``wait`` group arms callbacks on exactly the futures it
  covers);
- optionally runs a tick process (only when the retry policy enables
  timeouts or RUNNING detection is requested — otherwise the monitor
  schedules **zero** simulation events) that times out overdue calls
  and surfaces RUNNING transitions from backend attempt starts;
- keeps throughput/progress stats over everything it tracked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.client.futures import FutureState, ResponseFuture
from repro.sim.kernel import Environment, Event


@dataclass
class MonitorStats:
    """Lifetime counters for one executor's monitor."""

    calls_tracked: int = 0
    resolved: int = 0
    succeeded: int = 0
    failed: int = 0
    #: Late resolutions of keys whose call already resolved (a client
    #: retry raced its original and both delivered).
    duplicates_suppressed: int = 0
    #: Client-side timeouts the tick scan declared.
    timeouts: int = 0
    #: First/last resolution times (simulated) for throughput.
    t_first_resolved: Optional[float] = None
    t_last_resolved: Optional[float] = None

    @property
    def in_flight(self) -> int:
        return self.calls_tracked - self.resolved

    def progress(self) -> float:
        """Resolved fraction of everything tracked so far."""
        if self.calls_tracked == 0:
            return 1.0
        return self.resolved / self.calls_tracked

    def throughput_per_min(self) -> Optional[float]:
        """Resolutions per minute over the observed resolution window."""
        if (
            self.t_first_resolved is None
            or self.t_last_resolved is None
            or self.t_last_resolved <= self.t_first_resolved
        ):
            return None
        window = self.t_last_resolved - self.t_first_resolved
        return self.resolved * 60.0 / window


class JobMonitor:
    """Tracks in-flight calls via backend completion callbacks."""

    def __init__(self, env: Environment, backend,
                 on_failure: Callable[[ResponseFuture, str], None]):
        self.env = env
        self.backend = backend
        #: Executor hook: decide retry-vs-ERROR for a failed call.
        #: (The monitor resolves successes itself.)
        self.on_failure = on_failure
        self._futures: Dict[Any, ResponseFuture] = {}
        self._in_flight: Dict[Any, ResponseFuture] = {}
        #: When each in-flight key was invoked (client timeouts are
        #: per backend job, so retries re-arm the clock).
        self._invoked_at: Dict[Any, float] = {}
        self.stats = MonitorStats()
        self._tick_running = False
        self._track_running = False
        self._timeout_s: Optional[float] = None
        self._tick_s = 0.5
        backend.connect(self._on_backend_done)

    # -- tracking ------------------------------------------------------------

    def track(self, future: ResponseFuture, key: Any) -> None:
        """Watch one backend key on behalf of ``future``.  Every client
        retry of a call tracks its fresh key here too; the first key to
        resolve wins the call."""
        self._futures[key] = future
        self._in_flight[key] = future
        self._invoked_at[key] = self.env.now
        self.stats.calls_tracked += 1
        if (self._timeout_s is not None or self._track_running) and (
            not self._tick_running
        ):
            self._tick_running = True
            self.env.process(self._tick(), name="client-monitor")

    def configure_ticks(
        self,
        timeout_s: Optional[float],
        tick_s: float,
        track_running: bool,
    ) -> None:
        """Arm the periodic scan (called once by the executor when its
        retry policy wants timeouts, or RUNNING detection is on)."""
        self._timeout_s = timeout_s
        self._tick_s = tick_s
        self._track_running = track_running

    # -- resolution push -----------------------------------------------------

    def _on_backend_done(
        self, key: Any, ok: bool, value: Any, reason: Optional[str],
        output_bytes: int,
    ) -> None:
        future = self._futures.get(key)
        if future is None:
            return  # not one of ours (another executor on the backend)
        self._in_flight.pop(key, None)
        self._invoked_at.pop(key, None)
        if future.done:
            self.stats.duplicates_suppressed += 1
            return
        if ok:
            self._resolve(future, value, output_bytes)
        else:
            # The executor decides: client retry (future re-enters
            # INVOKED with a fresh key) or terminal ERROR.
            self.on_failure(future, reason or "failed")

    def _resolve(self, future: ResponseFuture, value: Any,
                 output_bytes: int) -> None:
        now = self.env.now
        future.mark_success(value, output_bytes, now)
        self._note_resolved(now, succeeded=True)

    def resolve_error(self, future: ResponseFuture, reason: str) -> None:
        """Terminal failure (called by the executor once retries are
        spent, or when a chained call's parent failed)."""
        now = self.env.now
        future.mark_error(reason, now)
        self._note_resolved(now, succeeded=False)

    def _note_resolved(self, now: float, succeeded: bool) -> None:
        stats = self.stats
        stats.resolved += 1
        if succeeded:
            stats.succeeded += 1
        else:
            stats.failed += 1
        if stats.t_first_resolved is None:
            stats.t_first_resolved = now
        stats.t_last_resolved = now

    def forget(self, key: Any) -> None:
        """Stop watching a key (its call timed out client-side; a late
        resolution will still be counted as a duplicate)."""
        self._in_flight.pop(key, None)
        self._invoked_at.pop(key, None)

    # -- wait support --------------------------------------------------------

    def group_event(
        self, futures: List[ResponseFuture], target: int
    ) -> Event:
        """Event firing once ``target`` of ``futures`` are resolved
        (counting the already-resolved).  ``target`` must be
        achievable; callers clamp it to ``len(futures)``."""
        event = Event(self.env)
        done = sum(1 for future in futures if future.done)
        if done >= target:
            event.succeed(done)
            return event
        remaining = target - done
        state = {"remaining": remaining}

        def on_done(_future, _state=state, _event=event):
            _state["remaining"] -= 1
            if _state["remaining"] == 0 and not _event.triggered:
                _event.succeed(target)

        for future in futures:
            if not future.done:
                future.add_done_callback(on_done)
        return event

    # -- periodic scan -------------------------------------------------------

    def _tick(self):
        """Timeout + RUNNING scan; runs only while calls are in flight
        and only when armed (a default executor schedules nothing)."""
        try:
            while self._in_flight:
                yield self.env.timeout(self._tick_s)
                now = self.env.now
                if self._track_running:
                    for key, future in self._in_flight.items():
                        if future.state is FutureState.INVOKED:
                            started = self.backend.running_since(key)
                            if started is not None:
                                future.mark_running(now)
                if self._timeout_s is not None:
                    overdue = [
                        (key, future)
                        for key, future in self._in_flight.items()
                        if not future.done
                        and now - self._invoked_at[key] >= self._timeout_s
                    ]
                    for key, future in overdue:
                        self.forget(key)
                        self.stats.timeouts += 1
                        self.on_failure(future, "timeout")
        finally:
            # Re-armed by the next track() if more work arrives.
            self._tick_running = False


__all__ = ["JobMonitor", "MonitorStats"]
