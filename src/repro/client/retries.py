"""Client-side retry policy, layered on top of the recovery stack.

The orchestrator's :class:`~repro.core.policies.RecoveryPolicy`
already retries *attempts* of one logical job (crash resubmission,
per-attempt timeouts, hedging) and delivers exactly one result.  The
client :class:`RetryPolicy` sits a layer above: when a *call*'s
backend job resolves as a terminal failure (retry budget exhausted,
deadline abandoned, shed at a gateway) — or exceeds the client's own
``call_timeout_s`` — the executor launches a *fresh backend job* for
the same call, after an exponential backoff with deterministic jitter
(the shared :func:`repro.core.backoff.backoff_delay_s`, salt
``"client-backoff"``).

Layering contract:

- every backend job of one call carries the same client idempotency
  key, and the monitor maps all of them to the one future — the first
  resolution wins and later ones are counted as suppressed
  duplicates, so client retries never double-count delivered work;
- jitter is hash-derived from the call id, never drawn from a shared
  RNG — a client with retries enabled perturbs nothing while no
  retry fires, and identical runs retry identically;
- the default policy (``None`` on the executor) schedules no monitor
  ticks and no retries at all: the SDK adds **zero** events to a
  clean run, which is what keeps SDK-driven replays bit-identical to
  the seed's ``submit_batch`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.backoff import backoff_delay_s


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry knobs (times in simulated seconds)."""

    #: Fresh backend jobs launched after the first, per call.
    max_retries: int = 2
    #: Exponential backoff between client retries.
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    backoff_max_s: float = 8.0
    #: Jitter as a fraction of the computed backoff (0 disables).
    backoff_jitter: float = 0.2
    #: Give up on a backend job this long after its invocation and
    #: retry it client-side (``None`` disables the timeout scan — the
    #: monitor then schedules no tick process at all).
    call_timeout_s: Optional[float] = None
    #: Monitor scan period for timeout/RUNNING detection.
    monitor_tick_s: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff times cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.call_timeout_s is not None and self.call_timeout_s <= 0:
            raise ValueError("call timeout must be positive")
        if self.monitor_tick_s <= 0:
            raise ValueError("monitor tick must be positive")

    def should_retry(self, retries_so_far: int) -> bool:
        return retries_so_far < self.max_retries

    def backoff_s(self, retry: int, call_id: int) -> float:
        """Backoff before client retry number ``retry`` (1-based) of
        ``call_id`` — deterministic, identical across runs."""
        return backoff_delay_s(
            retry,
            base_s=self.backoff_base_s,
            factor=self.backoff_factor,
            max_s=self.backoff_max_s,
            jitter=self.backoff_jitter,
            key=call_id,
            salt="client-backoff",
        )


__all__ = ["RetryPolicy"]
