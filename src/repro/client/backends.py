"""Backend adapters: one invocation surface over every cluster shape.

The executor never talks to a cluster directly; it talks to a backend
adapter with four duties:

- **submit** one call (optionally with extra input bytes for chained
  intermediate data, billed through the backend's transfer model);
- **submit a batch** of calls in one kernel bulk window, so SDK-driven
  fan-out rides the same batched-arrival fast path as
  :meth:`~repro.core.orchestrator.Orchestrator.submit_batch`;
- **push resolutions** to the job monitor via the backend's
  ``on_job_done`` hook (never polled);
- expose enough metadata for the monitor (attempt start times for
  RUNNING detection, trace annotation, output sizes for chaining).

Two adapters cover the whole stack: :class:`ClusterBackend` wraps any
:class:`~repro.cluster.harness.ClusterHarness` (MicroFaaS,
Conventional, Hybrid), and :class:`FederationBackend` wraps a
:class:`~repro.federation.gateway.FederatedCluster` via its gateway.
:func:`as_backend` picks the right adapter from a bare object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.workloads.profiles import profile_for

#: Resolution pushed to the monitor:
#: ``callback(key, ok, value, failure_reason, output_bytes)``.
DoneCallback = Callable[[Any, bool, Any, Optional[str], int], None]


@dataclass(frozen=True)
class CallSpec:
    """One backend submission, as the invoker carries it."""

    function: str
    #: Intermediate data from resolved parent futures, added to the
    #: job's input payload (billed through the transfer model).
    extra_input_bytes: int = 0
    #: Client idempotency key (stamped on the backend job so every
    #: client retry of the call shares one logical identity).
    idempotency_key: Optional[str] = None
    #: Federation-only routing hints (ignored by cluster backends).
    geo: Optional[str] = None
    priority: int = 1


class ClusterBackend:
    """Adapter over any harness-built cluster (SBC, VM, or hybrid)."""

    kind = "cluster"
    #: Chained calls may add parent output bytes to a job's input.
    supports_chaining = True

    def __init__(self, cluster):
        self.cluster = cluster
        self.env = cluster.env
        self.orchestrator = cluster.orchestrator

    def connect(self, callback: DoneCallback) -> None:
        """Route orchestrator job resolutions into the monitor."""

        def bridge(job, record):
            callback(
                job.job_id,
                record is not None,
                record,
                job.failure,
                job.output_bytes,
            )

        self.orchestrator.on_job_done(bridge)

    def _make_job(self, spec: CallSpec):
        job = self.orchestrator.make_job(spec.function)
        if spec.extra_input_bytes:
            job.input_bytes += spec.extra_input_bytes
        if spec.idempotency_key is not None:
            job.idempotency_key = spec.idempotency_key
        return job

    def submit(self, spec: CallSpec) -> Any:
        """Submit one call now; returns the backend job."""
        return self.orchestrator.submit(self._make_job(spec))

    def submit_batch(self, specs: List[CallSpec]) -> List[Any]:
        """Submit calls in one kernel bulk window (heap-merged once),
        exactly like :meth:`Orchestrator.submit_batch` — N same-tick
        SDK calls cost the batched-arrival fast path, not N pushes."""
        env = self.env
        env.begin_bulk()
        try:
            return [
                self.orchestrator.submit(self._make_job(spec))
                for spec in specs
            ]
        finally:
            env.end_bulk()

    # -- monitor metadata ----------------------------------------------------

    def key_of(self, handle) -> Any:
        return handle.job_id

    def trace_id_of(self, handle) -> Optional[Any]:
        return handle.trace_id

    def running_since(self, key) -> Optional[float]:
        """When the job's current attempt started executing (None while
        queued, or once the job is evicted)."""
        job = self.orchestrator.jobs.get(key)
        return job.t_started if job is not None else None

    def annotate(self, trace_id, name: str, now: float, attrs=None) -> None:
        self.orchestrator.tracer.annotate(trace_id, name, now, attrs=attrs)

    def drain_event(self):
        """Backend-level drain (used by study runners to let late
        duplicate attempts finish so energy windows seal)."""
        return self.orchestrator.wait_all()


class FederationBackend:
    """Adapter over a federated cluster's gateway front door."""

    kind = "federation"
    #: The gateway builds regional jobs itself; intermediate-data
    #: billing is a region-internal concern the front door cannot
    #: reach, so chained calls are rejected with a clear error.
    supports_chaining = False

    def __init__(self, federation, default_geo: Optional[str] = None):
        self.federation = federation
        self.env = federation.env
        self.default_geo = (
            default_geo
            if default_geo is not None
            else federation.regions[0].geo
        )

    def connect(self, callback: DoneCallback) -> None:
        def bridge(fed):
            callback(
                fed.fed_id,
                fed.delivered,
                fed,
                "shed" if fed.shed else None,
                profile_for(fed.function).output_bytes,
            )

        self.federation.on_job_done(bridge)

    def submit(self, spec: CallSpec) -> Any:
        if spec.extra_input_bytes:
            raise ValueError(
                "futures-as-inputs chaining is not supported over the "
                "federation gateway (intermediate data cannot be billed "
                "through a region's transfer model from the front door)"
            )
        geo = spec.geo if spec.geo is not None else self.default_geo
        return self.federation.submit(spec.function, geo, spec.priority)

    def submit_batch(self, specs: List[CallSpec]) -> List[Any]:
        # The gateway pays per-job WAN ingress processes; there is no
        # bulk window to ride, so a batch is an ordered loop.
        return [self.submit(spec) for spec in specs]

    # -- monitor metadata ----------------------------------------------------

    def key_of(self, handle) -> Any:
        return handle.fed_id

    def trace_id_of(self, handle) -> Optional[Any]:
        return None  # regional traces live behind the WAN

    def running_since(self, key) -> Optional[float]:
        return None  # attempt starts are region-internal

    def annotate(self, trace_id, name: str, now: float, attrs=None) -> None:
        pass

    def drain_event(self):
        return self.federation.wait_all()


def as_backend(target):
    """Coerce a cluster-ish object into a backend adapter.

    Accepts an existing adapter (anything with ``connect`` and
    ``submit_batch``), a :class:`~repro.cluster.harness.ClusterHarness`
    (or subclass), or a
    :class:`~repro.federation.gateway.FederatedCluster`.
    """
    if hasattr(target, "connect") and hasattr(target, "key_of"):
        return target  # already an adapter
    if hasattr(target, "orchestrator") and hasattr(target, "env"):
        return ClusterBackend(target)
    if hasattr(target, "regions") and hasattr(target, "submit"):
        return FederationBackend(target)
    raise TypeError(f"cannot build a client backend over {target!r}")


__all__ = [
    "CallSpec",
    "ClusterBackend",
    "DoneCallback",
    "FederationBackend",
    "as_backend",
]
