"""Queueing models of the MicroFaaS cluster.

A worker's *service time* for one invocation is its full occupancy:
boot (1.51 s) + working + overhead.  The mix over the 17 calibrated
functions gives the first two moments; per-invocation jitter adds its
lognormal second moment.

Two routing disciplines map to two classic models:

- **random sampling** (the paper's policy): each of ``c`` workers is an
  independent M/G/1 queue fed ``λ/c`` — waits follow
  Pollaczek-Khinchine and blow up early because busy boards keep
  receiving jobs while others sleep;
- **least-loaded** (≈ join-shortest-queue): close to a single M/G/c
  queue — Erlang C with the Allen-Cunneen second-moment correction.

Both are validated against full cluster simulations in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.workloads.base import ALL_FUNCTION_NAMES
from repro.workloads.profiles import PROFILES

#: Matches the simulation's ARM-side overhead model.
_SESSION_S = 28e-3
_GOODPUT_BPS = 90e6
_RTT_S = 2 * (120e-6 + 60e-6 + 20e-6)
_BOOT_S = 1.51


def service_moments(
    functions: Sequence[str] = tuple(ALL_FUNCTION_NAMES),
    jitter_sigma: float = 0.06,
) -> Tuple[float, float]:
    """(E[S], E[S^2]) of one invocation's worker occupancy.

    Functions are drawn uniformly; jitter multiplies the work phase by a
    mean-one lognormal with ``E[J^2] = exp(sigma^2)``.
    """
    if not functions:
        raise ValueError("need at least one function")
    if jitter_sigma < 0:
        raise ValueError("jitter sigma cannot be negative")
    second_factor = math.exp(jitter_sigma**2)
    first = 0.0
    second = 0.0
    for name in functions:
        profile = PROFILES[name]
        payload = profile.input_bytes + profile.output_bytes
        overhead = _SESSION_S + payload * 8 / _GOODPUT_BPS + _RTT_S
        fixed = _BOOT_S + overhead
        work = profile.work_arm_s
        # S = fixed + work * J with E[J] = 1.
        mean = fixed + work
        mean_square = (
            fixed**2 + 2 * fixed * work + work**2 * second_factor
        )
        first += mean
        second += mean_square
    return first / len(functions), second / len(functions)


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang C: P(an arrival waits) for M/M/c at offered load ``a``.

    ``offered_load`` is ``lambda * E[S]`` in erlangs; must be below
    ``servers`` for stability.
    """
    if servers < 1:
        raise ValueError("need at least one server")
    if offered_load < 0:
        raise ValueError("offered load cannot be negative")
    if offered_load >= servers:
        raise ValueError(
            f"unstable: offered load {offered_load:.3f} >= {servers} servers"
        )
    # Sum a^k/k! computed iteratively for numeric safety.
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= offered_load / k
        total += term
    term *= offered_load / servers
    tail = term * servers / (servers - offered_load)
    return tail / (total + tail)


@dataclass(frozen=True)
class ClusterQueueModel:
    """Analytic latency model of an N-worker MicroFaaS cluster."""

    workers: int
    functions: Sequence[str] = tuple(ALL_FUNCTION_NAMES)
    jitter_sigma: float = 0.06

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")

    @property
    def moments(self) -> Tuple[float, float]:
        return service_moments(self.functions, self.jitter_sigma)

    def utilization(self, arrival_rate_per_s: float) -> float:
        """rho = lambda E[S] / c."""
        mean, _ = self.moments
        return arrival_rate_per_s * mean / self.workers

    def capacity_per_s(self) -> float:
        """Saturation throughput (rho = 1)."""
        mean, _ = self.moments
        return self.workers / mean

    def random_split_wait_s(self, arrival_rate_per_s: float) -> float:
        """Mean queue wait under the paper's random-sampling policy.

        Each worker is M/G/1 at ``lambda/c``; Pollaczek-Khinchine:
        ``Wq = lambda_i E[S^2] / (2 (1 - rho))``.
        """
        rho = self._check_stable(arrival_rate_per_s)
        mean, second = self.moments
        per_worker_rate = arrival_rate_per_s / self.workers
        return per_worker_rate * second / (2 * (1 - rho))

    def central_queue_wait_s(self, arrival_rate_per_s: float) -> float:
        """Mean queue wait under least-loaded routing (~ M/G/c).

        Allen-Cunneen: ``Wq(M/G/c) ~= Wq(M/M/c) * (1 + C_s^2) / 2``.
        """
        rho = self._check_stable(arrival_rate_per_s)
        mean, second = self.moments
        scv = (second - mean**2) / mean**2
        offered = arrival_rate_per_s * mean
        p_wait = erlang_c(self.workers, offered)
        mmc_wait = p_wait * mean / (self.workers * (1 - rho))
        return mmc_wait * (1 + scv) / 2

    def imbalance_tax(self, arrival_rate_per_s: float) -> float:
        """Random-sampling wait over least-loaded wait at this load."""
        central = self.central_queue_wait_s(arrival_rate_per_s)
        if central == 0:
            return float("inf")
        return self.random_split_wait_s(arrival_rate_per_s) / central

    def mean_latency_s(
        self, arrival_rate_per_s: float, policy: str = "least-loaded"
    ) -> float:
        """Mean end-to-end latency: queue wait plus service."""
        mean, _ = self.moments
        if policy == "least-loaded":
            wait = self.central_queue_wait_s(arrival_rate_per_s)
        elif policy == "random-sampling":
            wait = self.random_split_wait_s(arrival_rate_per_s)
        else:
            raise KeyError(f"no analytic model for policy {policy!r}")
        return wait + mean

    def _check_stable(self, arrival_rate_per_s: float) -> float:
        if arrival_rate_per_s < 0:
            raise ValueError("arrival rate cannot be negative")
        rho = self.utilization(arrival_rate_per_s)
        if rho >= 1.0:
            raise ValueError(
                f"unstable: utilization {rho:.3f} >= 1 "
                f"(capacity {self.capacity_per_s():.3f}/s)"
            )
        return rho


__all__ = ["ClusterQueueModel", "erlang_c", "service_moments"]
