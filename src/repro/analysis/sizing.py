"""SLO-driven fleet sizing.

Answers the operator's question: *how many boards do I need so that
mean end-to-end latency stays under X seconds at arrival rate λ?* —
using the analytic queue model, with simulation validation available in
the tests.  Because each MicroFaaS invocation pays the 1.51 s boot, the
floor on achievable latency is the mean service time itself (~3 s);
SLOs below that are rejected as infeasible.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.queueing import ClusterQueueModel


def size_for_slo(
    arrival_rate_per_s: float,
    slo_latency_s: float,
    policy: str = "least-loaded",
    max_workers: int = 2000,
    jitter_sigma: float = 0.06,
) -> int:
    """Smallest worker count meeting a mean-latency SLO at a given load.

    Raises
    ------
    ValueError
        If the SLO is below the service-time floor, or no fleet up to
        ``max_workers`` meets it.
    """
    if arrival_rate_per_s <= 0:
        raise ValueError("arrival rate must be positive")
    if slo_latency_s <= 0:
        raise ValueError("SLO must be positive")
    if max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    floor = ClusterQueueModel(workers=1, jitter_sigma=jitter_sigma).moments[0]
    if slo_latency_s <= floor:
        raise ValueError(
            f"SLO {slo_latency_s:.2f} s is below the service floor "
            f"{floor:.2f} s (every invocation pays the 1.51 s clean boot)"
        )
    for workers in range(1, max_workers + 1):
        model = ClusterQueueModel(workers=workers, jitter_sigma=jitter_sigma)
        if model.utilization(arrival_rate_per_s) >= 0.999:
            continue  # unstable: need more workers
        if model.mean_latency_s(arrival_rate_per_s, policy) <= slo_latency_s:
            return workers
    raise ValueError(
        f"no fleet up to {max_workers} workers meets {slo_latency_s:.2f} s "
        f"at {arrival_rate_per_s:.2f} jobs/s under {policy}"
    )


__all__ = ["size_for_slo"]
