"""Analytic performance models, validated against the simulator.

- :mod:`repro.analysis.queueing` — the MicroFaaS cluster as a queueing
  system: Pollaczek-Khinchine for the paper's random-sampling policy
  (c independent M/G/1 queues) and Erlang-C/Allen-Cunneen for
  least-loaded routing (≈ one M/G/c queue).  Quantifies analytically
  the queue-imbalance tax the scheduling ablation measures.
- :mod:`repro.analysis.sizing` — SLO-driven fleet sizing: the smallest
  worker count whose predicted latency meets a target at a given
  arrival rate.
"""

from repro.analysis.queueing import (
    ClusterQueueModel,
    erlang_c,
    service_moments,
)
from repro.analysis.sizing import size_for_slo

__all__ = [
    "ClusterQueueModel",
    "erlang_c",
    "service_moments",
    "size_for_slo",
]
