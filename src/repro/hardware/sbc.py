"""Single-board computer worker-node model.

An SBC is a passive hardware model: it owns a power-state machine and a
spec sheet, and exposes the state transitions that the cluster's worker
process and the orchestrator's GPIO lines drive (power on/off, boot,
busy/IO phases).  It deliberately contains no scheduling logic — the
paper's point is that the worker is dumb, single-tenant hardware.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hardware.power import PowerState, PowerStateMachine
from repro.hardware.specs import BEAGLEBONE_BLACK, SbcSpec


#: Per-spec state→watts tables, built once: every board of a fleet
#: shares its spec, and rebuilding the enum-keyed dict per board was a
#: measurable slice of 100k-worker cold-build time.  The state machine
#: copies the table, so sharing the template is safe.
_STATE_WATTS_CACHE: dict = {}


def _state_watts_for(power) -> dict:
    try:
        cached = _STATE_WATTS_CACHE.get(power)
    except TypeError:  # unhashable custom power spec
        cached = None
    if cached is not None:
        return cached
    table = {
        PowerState.OFF: power.off,
        PowerState.BOOT: power.boot,
        PowerState.IDLE: power.idle,
        PowerState.CPU_BUSY: power.cpu_busy,
        PowerState.IO_WAIT: power.io_wait,
    }
    try:
        _STATE_WATTS_CACHE[power] = table
    except TypeError:
        pass
    return table


class SingleBoardComputer:
    """A bare-metal SBC worker node (default: BeagleBone Black).

    Parameters
    ----------
    clock:
        Zero-argument callable returning current simulated time.
    spec:
        Hardware spec sheet.
    node_id:
        Identifier within the cluster.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        spec: SbcSpec = BEAGLEBONE_BLACK,
        node_id: int = 0,
    ):
        self.spec = spec
        self.node_id = node_id
        self._clock = clock
        self.psm = PowerStateMachine(
            clock,
            state_watts=_state_watts_for(spec.power),
            initial_state=PowerState.OFF,
        )
        self.boot_count = 0
        self.jobs_completed = 0
        self.ip_address: Optional[str] = None
        #: True when the board has booted and run no code since — the
        #: clean-state guarantee a fresh tenant requires (Sec. III-a).
        self.clean = False
        #: Active DVFS step, or None at nominal frequency.  Workers
        #: stretch execute-phase CPU time by ``1 / perf_scale`` when set.
        self.dvfs_step = None

    # -- power control (driven by GPIO / worker process) ----------------------

    @property
    def state(self) -> PowerState:
        return self.psm.state

    @property
    def is_powered(self) -> bool:
        return self.psm.state is not PowerState.OFF

    def power_on(self) -> None:
        """Assert the PWR_BUT line: the board enters its boot sequence."""
        if self.is_powered:
            raise RuntimeError(f"node {self.node_id} is already powered on")
        self.boot_count += 1
        self.psm.set_state(PowerState.BOOT)

    def boot_complete(self) -> None:
        """Boot finished; the worker idles awaiting a job."""
        self._require(PowerState.BOOT)
        self.clean = True
        self.psm.set_state(PowerState.IDLE)

    def begin_reboot(self) -> None:
        """Warm reboot between jobs (clean-state guarantee, Sec. III-a)."""
        if self.psm.state is PowerState.OFF:
            raise RuntimeError(f"node {self.node_id} is off; use power_on()")
        self.boot_count += 1
        self.clean = False
        self.psm.set_state(PowerState.BOOT)

    def power_off(self) -> None:
        """Cut power (energy-proportional idle, Sec. III-b)."""
        self.clean = False
        self.psm.set_state(PowerState.OFF)

    # -- DVFS / power capping --------------------------------------------------

    def apply_dvfs(self, step) -> None:
        """Clock the board down (or back up) to ``step``.

        Active-state draws scale by the step's ``power_scale``; standby,
        boot, and idle draws are frequency-independent (the boot chain
        runs before the governor, standby power is leakage).  The shared
        per-spec watts template is never mutated — each capped board
        gets its own scaled copy.
        """
        base = _state_watts_for(self.spec.power)
        scaled = dict(base)
        scaled[PowerState.CPU_BUSY] = base[PowerState.CPU_BUSY] * step.power_scale
        scaled[PowerState.IO_WAIT] = base[PowerState.IO_WAIT] * step.power_scale
        self.psm.rescale(scaled)
        self.dvfs_step = step

    def clear_dvfs(self) -> None:
        """Return to nominal frequency."""
        if self.dvfs_step is None:
            return
        self.psm.rescale(_state_watts_for(self.spec.power))
        self.dvfs_step = None

    # -- execution phases ------------------------------------------------------

    def start_compute(self) -> None:
        """The CPU is executing function code."""
        self._require(PowerState.IDLE, PowerState.IO_WAIT, PowerState.CPU_BUSY)
        self.clean = False
        self.psm.set_state(PowerState.CPU_BUSY)

    def start_io_wait(self) -> None:
        """The function is blocked on network/service I/O."""
        self._require(PowerState.IDLE, PowerState.CPU_BUSY, PowerState.IO_WAIT)
        self.clean = False
        self.psm.set_state(PowerState.IO_WAIT)

    def finish_job(self) -> None:
        """A job's result has been returned to the orchestrator."""
        self.jobs_completed += 1
        self.psm.set_state(PowerState.IDLE)

    # -- helpers ---------------------------------------------------------------

    @property
    def watts(self) -> float:
        """Instantaneous power draw."""
        return self.psm.watts

    @property
    def trace(self):
        """The node's power trace."""
        return self.psm.trace

    def _require(self, *states: PowerState) -> None:
        if self.psm.state not in states:
            raise RuntimeError(
                f"node {self.node_id}: invalid transition from {self.psm.state}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SBC #{self.node_id} {self.spec.name} state={self.state.value} "
            f"boots={self.boot_count} jobs={self.jobs_completed}>"
        )


__all__ = ["SingleBoardComputer"]
