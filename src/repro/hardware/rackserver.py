"""Rack-server (virtualization host) model.

The rack server hosts the conventional cluster's microVMs.  Its power
draw follows the concave utilization curve of
:class:`~repro.hardware.power.UtilizationPowerModel`; the hypervisor
(:mod:`repro.virt`) reports how many physical cores are busy, and the
server records the resulting wattage on its power trace.
"""

from __future__ import annotations

from typing import Callable

from repro.hardware.power import PowerTrace, UtilizationPowerModel
from repro.hardware.specs import RackServerSpec, THINKMATE_RAX


class RackServer:
    """A conventional x86 rack server acting as a virtualization host."""

    def __init__(
        self,
        clock: Callable[[], float],
        spec: RackServerSpec = THINKMATE_RAX,
        powered_on: bool = True,
    ):
        self.spec = spec
        self._clock = clock
        self._powered = powered_on
        self.power_model = UtilizationPowerModel(
            idle_watts=spec.idle_watts,
            loaded_watts=spec.loaded_watts,
            exponent=spec.power_exponent,
        )
        self._busy_cores = 0.0
        initial = spec.idle_watts if powered_on else 0.0
        self.trace = PowerTrace(initial_time=clock(), initial_watts=initial)
        # watts-per-busy-count memo: the hypervisor reports integer core
        # counts on every quantum, so the power curve is evaluated for a
        # handful of distinct values millions of times.  Cleared on any
        # power-state change.
        self._watts_by_busy: dict = {}
        #: Active DVFS step, or None at nominal frequency.  VM workers
        #: stretch execute-phase CPU time by ``1 / perf_scale`` when set.
        self.dvfs_step = None

    @property
    def is_powered(self) -> bool:
        return self._powered

    @property
    def cores(self) -> int:
        return self.spec.cpu.cores

    @property
    def busy_cores(self) -> float:
        return self._busy_cores

    @property
    def utilization(self) -> float:
        """CPU utilization in [0, 1]."""
        return min(1.0, self._busy_cores / self.cores)

    @property
    def watts(self) -> float:
        """Instantaneous power draw."""
        if not self._powered:
            return 0.0
        return self.power_model.watts(self.utilization)

    def set_busy_cores(self, busy: float) -> None:
        """Report that ``busy`` physical cores are executing vCPUs."""
        if busy < 0:
            raise ValueError(f"negative busy core count: {busy}")
        if busy > self.cores + 1e-9:
            raise ValueError(
                f"busy={busy} exceeds physical core count {self.cores}"
            )
        self._busy_cores = busy
        watts = self._watts_by_busy.get(busy)
        if watts is None:
            watts = self.watts
            self._watts_by_busy[busy] = watts
        self.trace.record(self._clock(), watts)

    def apply_dvfs(self, step) -> None:
        """Clock the host down (or back up) to ``step``.

        Only the dynamic range scales — idle draw is dominated by fans,
        disks, and DRAM refresh that a frequency governor cannot touch,
        which is exactly the non-proportionality the paper targets.
        """
        self.power_model = UtilizationPowerModel(
            idle_watts=self.spec.idle_watts,
            loaded_watts=self.spec.idle_watts
            + (self.spec.loaded_watts - self.spec.idle_watts)
            * step.power_scale,
            exponent=self.spec.power_exponent,
        )
        self.dvfs_step = step
        self._watts_by_busy.clear()
        if self._powered:
            self.trace.record(self._clock(), self.watts)

    def clear_dvfs(self) -> None:
        """Return to nominal frequency."""
        if self.dvfs_step is None:
            return
        self.power_model = UtilizationPowerModel(
            idle_watts=self.spec.idle_watts,
            loaded_watts=self.spec.loaded_watts,
            exponent=self.spec.power_exponent,
        )
        self.dvfs_step = None
        self._watts_by_busy.clear()
        if self._powered:
            self.trace.record(self._clock(), self.watts)

    def power_off(self) -> None:
        """Cut power to the whole host (rare in conventional clouds)."""
        self._powered = False
        self._busy_cores = 0.0
        self._watts_by_busy.clear()
        self.trace.record(self._clock(), 0.0)

    def power_on(self) -> None:
        """Restore power; the host returns to idle draw."""
        self._powered = True
        self._watts_by_busy.clear()
        self.trace.record(self._clock(), self.watts)

    def max_vm_count(self, vm_ram_bytes: int) -> int:
        """RAM-limited VM capacity (hosts saturate on memory, Sec. V)."""
        return self.spec.max_vm_count(vm_ram_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RackServer {self.spec.name} busy={self._busy_cores:.2f}/"
            f"{self.cores} {self.watts:.1f} W>"
        )


__all__ = ["RackServer"]
