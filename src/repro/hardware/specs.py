"""Immutable hardware spec sheets for the evaluation platforms.

All numbers trace back to the paper:

- BeagleBone Black: Sec. IV-B (TI Sitara AM3358, 1 GHz single-core
  Cortex-A8, 512 MB DDR3, 4 GB eMMC, 10/100 Ethernet; $52.50 retail) and
  the appendix power assumptions (1.96 W loaded, 0.128 W powered-down).
- Thinkmate RAX evaluation host: Sec. V (12-core AMD Opteron 6172 at
  2.1 GHz, 16 GB RAM) with the appendix's 150 W loaded / 60 W idle draws.
- Dell PowerEdge R6515: the appendix's $2,011 "modern mid-range rack
  server" used for TCO.
- Cisco Catalyst 2960S-48LPS: the appendix's $500 refurbished 48-port ToR
  switch drawing 40.87 W.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CpuSpec:
    """A CPU spec sheet."""

    model: str
    architecture: str  # "arm" or "x86"
    cores: int
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_hz}")
        if self.architecture not in ("arm", "x86"):
            raise ValueError(f"unknown architecture {self.architecture!r}")


@dataclass(frozen=True)
class NicSpec:
    """A network interface spec.

    ``autonegotiation_s`` is the time the standard Ethernet link
    auto-negotiation handshake takes on link-up; the paper's worker OS
    patches drivers to skip it (Fig. 1, change F).
    ``phy_reset_s`` is the avoidable PHY hardware reset (change G).
    """

    name: str
    bandwidth_bps: float
    autonegotiation_s: float = 2.5
    phy_reset_s: float = 0.6
    efficiency: float = 0.94  # achievable fraction of line rate (TCP goodput)

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")

    @property
    def goodput_bps(self) -> float:
        """Achievable application-level throughput."""
        return self.bandwidth_bps * self.efficiency


@dataclass(frozen=True)
class SbcPowerDraw:
    """Per-state power draw of an SBC, in watts.

    ``off`` is residual standby draw when "fully powered down" (the
    appendix's 0.128 W P_ss-idle).  The working-state draws are calibrated
    so a fully busy worker averages the appendix's 1.96 W P_ss.
    """

    off: float
    boot: float
    idle: float
    cpu_busy: float
    io_wait: float

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ValueError(f"negative power for state {name!r}: {value}")


@dataclass(frozen=True)
class SbcSpec:
    """A single-board computer spec sheet."""

    name: str
    cpu: CpuSpec
    ram_bytes: int
    storage_bytes: int
    nic: NicSpec
    power: SbcPowerDraw
    unit_cost_usd: float
    #: CPU-performance scaling factor relative to one x86 vCPU of the
    #: evaluation host (<1 means slower).  Workload profiles are
    #: calibrated for the BeagleBone Black; other boards' work times
    #: scale by the ratio of relative speeds.
    relative_speed: float = 1.0
    #: Multiplier on the calibrated 1.51 s worker-OS boot (boards with
    #: heavier firmware boot slower despite the same OS).
    boot_time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.ram_bytes <= 0 or self.storage_bytes <= 0:
            raise ValueError("RAM and storage must be positive")
        if self.unit_cost_usd < 0:
            raise ValueError("cost cannot be negative")
        if self.relative_speed <= 0:
            raise ValueError("relative speed must be positive")
        if self.boot_time_scale <= 0:
            raise ValueError("boot time scale must be positive")


@dataclass(frozen=True)
class RackServerSpec:
    """A rack server spec sheet with a concave utilization→power curve.

    Conventional servers are famously *not* energy-proportional: power
    rises steeply at low utilization and flattens towards the loaded draw
    (Fan et al. 2007; Jiang et al. 2017).  We model instantaneous power as

        ``P(u) = idle + (loaded - idle) * u ** power_exponent``

    with ``u`` the CPU utilization in ``[0, 1]`` and ``power_exponent < 1``
    giving the concave shape.  The exponent is calibrated so that the
    six-VM operating point of the paper (211.7 func/min) draws the power
    implied by its measured 32.0 J/function.
    """

    name: str
    cpu: CpuSpec
    ram_bytes: int
    idle_watts: float
    loaded_watts: float
    power_exponent: float
    unit_cost_usd: float
    #: Time to reboot (the paper cites >= 55 s for bare-metal rack servers).
    reboot_s: float = 55.0
    #: RAM reserved for the host OS / hypervisor.
    host_reserved_bytes: int = 2 * 1024**3

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.loaded_watts < self.idle_watts:
            raise ValueError("need 0 <= idle_watts <= loaded_watts")
        if not 0 < self.power_exponent <= 1:
            raise ValueError(
                f"power_exponent must be in (0, 1], got {self.power_exponent}"
            )

    def max_vm_count(self, vm_ram_bytes: int) -> int:
        """How many VMs of ``vm_ram_bytes`` fit in the host's free RAM."""
        if vm_ram_bytes <= 0:
            raise ValueError("vm_ram_bytes must be positive")
        return max(0, (self.ram_bytes - self.host_reserved_bytes) // vm_ram_bytes)


@dataclass(frozen=True)
class DvfsStep:
    """One frequency step of a platform's DVFS ladder.

    ``perf_scale`` multiplies CPU throughput (execute-phase CPU seconds
    stretch by ``1 / perf_scale``); ``power_scale`` multiplies the
    active-state (dynamic) power draw.  Because dynamic power falls
    roughly with the square of frequency/voltage, real ladders have
    ``power_scale < perf_scale``, which is what makes down-clocking a
    net energy win per function despite the longer service time.
    """

    frequency_hz: float
    perf_scale: float
    power_scale: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if not 0 < self.perf_scale <= 1:
            raise ValueError(
                f"perf_scale must be in (0, 1], got {self.perf_scale}"
            )
        if not 0 < self.power_scale <= 1:
            raise ValueError(
                f"power_scale must be in (0, 1], got {self.power_scale}"
            )


@dataclass(frozen=True)
class DvfsCurve:
    """A platform's watts/perf ladder, fastest step first.

    ``step_for_cap`` implements the governor decision: the fastest step
    whose scaled peak draw fits under a power cap.
    """

    steps: tuple

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a DVFS curve needs at least one step")
        freqs = [step.frequency_hz for step in self.steps]
        if freqs != sorted(freqs, reverse=True):
            raise ValueError("steps must be ordered fastest first")

    @property
    def nominal(self) -> DvfsStep:
        """The full-speed step."""
        return self.steps[0]

    def step_for_cap(self, cap_watts: float, peak_watts: float) -> DvfsStep:
        """Fastest step whose scaled peak fits ``cap_watts``.

        Falls back to the slowest step when even that exceeds the cap —
        a governor can throttle, not halt.
        """
        if cap_watts <= 0:
            raise ValueError(f"cap must be positive, got {cap_watts}")
        for step in self.steps:
            if peak_watts * step.power_scale <= cap_watts + 1e-12:
                return step
        return self.steps[-1]


@dataclass(frozen=True)
class SwitchSpec:
    """A top-of-rack Ethernet switch spec sheet."""

    name: str
    ports: int
    watts: float
    unit_cost_usd: float
    port_bandwidth_bps: float = 1e9
    #: Store-and-forward latency per hop, seconds.
    forwarding_latency_s: float = 20e-6

    def __post_init__(self) -> None:
        if self.ports < 1:
            raise ValueError("switch needs at least one port")
        if self.watts < 0 or self.unit_cost_usd < 0:
            raise ValueError("watts and cost must be non-negative")


#: Fast Ethernet as found on the BeagleBone Black.  The Cortex-A8 cannot
#: quite sustain line rate in software (TCP checksumming competes with the
#: application), hence the conservative efficiency.
FAST_ETHERNET = NicSpec(
    name="10/100 Fast Ethernet",
    bandwidth_bps=100e6,
    autonegotiation_s=2.5,
    phy_reset_s=0.6,
    efficiency=0.90,
)

#: Gigabit Ethernet with virtio/bridge path as used by the microVMs.
GIGABIT_ETHERNET = NicSpec(
    name="Gigabit Ethernet",
    bandwidth_bps=1e9,
    autonegotiation_s=2.5,
    phy_reset_s=0.4,
    efficiency=0.94,
)

BEAGLEBONE_BLACK = SbcSpec(
    name="BeagleBone Black",
    cpu=CpuSpec(
        model="TI Sitara AM3358 (ARM Cortex-A8)",
        architecture="arm",
        cores=1,
        frequency_hz=1.0e9,
    ),
    ram_bytes=512 * 1024**2,
    storage_bytes=4 * 1024**3,
    nic=FAST_ETHERNET,
    power=SbcPowerDraw(
        off=0.128,  # appendix P_ss-idle
        boot=1.90,
        idle=1.05,
        cpu_busy=2.20,
        io_wait=1.20,
    ),
    unit_cost_usd=52.50,
    relative_speed=0.45,
)

#: A Raspberry-Pi-Compute-Module-class worker (Sec. III names it as the
#: other candidate SBC): faster quad-capable silicon run single-core for
#: the single-tenant model, at higher draw and heavier boot firmware.
RASPBERRY_PI_CM = SbcSpec(
    name="Raspberry Pi Compute Module 4 (1 core used)",
    cpu=CpuSpec(
        model="BCM2711 (ARM Cortex-A72)",
        architecture="arm",
        cores=1,
        frequency_hz=1.5e9,
    ),
    ram_bytes=1024 * 1024**2,
    storage_bytes=8 * 1024**3,
    nic=GIGABIT_ETHERNET,
    power=SbcPowerDraw(
        off=0.20,
        boot=3.40,
        idle=2.00,
        cpu_busy=4.40,
        io_wait=2.30,
    ),
    unit_cost_usd=60.0,
    relative_speed=0.95,
    boot_time_scale=1.25,  # GPU-first firmware boot chain
)

THINKMATE_RAX = RackServerSpec(
    name="Thinkmate RAX (AMD Opteron 6172)",
    cpu=CpuSpec(
        model="AMD Opteron 6172",
        architecture="x86",
        cores=12,
        frequency_hz=2.1e9,
    ),
    ram_bytes=16 * 1024**3,
    idle_watts=60.0,
    loaded_watts=150.0,
    power_exponent=0.547,
    unit_cost_usd=2011.0,
    reboot_s=55.0,
)

#: The TCO appendix prices a PowerEdge R6515 as the representative
#: "modern mid-range rack server" and assumes it performs like the
#: evaluation host.
DELL_POWEREDGE_R6515 = RackServerSpec(
    name="Dell PowerEdge R6515 (AMD EPYC 7232P)",
    cpu=CpuSpec(
        model="AMD EPYC 7232P",
        architecture="x86",
        cores=8,
        frequency_hz=3.1e9,
    ),
    ram_bytes=16 * 1024**3,
    idle_watts=60.0,
    loaded_watts=150.0,
    power_exponent=0.547,
    unit_cost_usd=2011.0,
)

CATALYST_2960S = SwitchSpec(
    name="Cisco Catalyst 2960S-48LPS",
    ports=48,
    watts=40.87,
    unit_cost_usd=500.0,
)

#: 24-port managed switch used in the physical testbed (Sec. IV-B).
TESTBED_SWITCH = SwitchSpec(
    name="24-port managed GigE switch",
    ports=24,
    watts=18.0,
    unit_cost_usd=150.0,
)

#: DVFS ladders.  Every ladder uses ``power_scale = perf_scale ** 2``
#: (the voltage-squared term of CMOS dynamic power), so each step down
#: trades throughput for a strictly larger cut in active power — the
#: property that makes the energy-vs-p99 frontier of the power-cap
#: sweep monotone.
BBB_DVFS = DvfsCurve(
    steps=(
        DvfsStep(frequency_hz=1.0e9, perf_scale=1.0, power_scale=1.0),
        DvfsStep(frequency_hz=0.8e9, perf_scale=0.8, power_scale=0.64),
        DvfsStep(frequency_hz=0.6e9, perf_scale=0.6, power_scale=0.36),
    )
)

RPI_CM_DVFS = DvfsCurve(
    steps=(
        DvfsStep(frequency_hz=1.5e9, perf_scale=1.0, power_scale=1.0),
        DvfsStep(frequency_hz=1.2e9, perf_scale=0.8, power_scale=0.64),
        DvfsStep(frequency_hz=0.9e9, perf_scale=0.6, power_scale=0.36),
    )
)

RAX_DVFS = DvfsCurve(
    steps=(
        DvfsStep(frequency_hz=2.1e9, perf_scale=1.0, power_scale=1.0),
        DvfsStep(frequency_hz=1.68e9, perf_scale=0.8, power_scale=0.64),
        DvfsStep(frequency_hz=1.26e9, perf_scale=0.6, power_scale=0.36),
    )
)

#: spec name -> ladder.  Keyed by name (specs are frozen and hashable,
#: but callers sometimes construct tweaked copies that should still
#: resolve to their platform's ladder).
DVFS_CURVES = {
    BEAGLEBONE_BLACK.name: BBB_DVFS,
    RASPBERRY_PI_CM.name: RPI_CM_DVFS,
    THINKMATE_RAX.name: RAX_DVFS,
    DELL_POWEREDGE_R6515.name: RAX_DVFS,
}


def dvfs_curve_for(spec) -> DvfsCurve:
    """The DVFS ladder for a board or server spec.

    Unknown hardware gets a degenerate single-step ladder at its rated
    frequency — cappable only down to nominal, never below.
    """
    curve = DVFS_CURVES.get(spec.name)
    if curve is not None:
        return curve
    return DvfsCurve(
        steps=(
            DvfsStep(
                frequency_hz=spec.cpu.frequency_hz,
                perf_scale=1.0,
                power_scale=1.0,
            ),
        )
    )


__all__ = [
    "BBB_DVFS",
    "BEAGLEBONE_BLACK",
    "CATALYST_2960S",
    "RASPBERRY_PI_CM",
    "CpuSpec",
    "DELL_POWEREDGE_R6515",
    "DVFS_CURVES",
    "DvfsCurve",
    "DvfsStep",
    "FAST_ETHERNET",
    "GIGABIT_ETHERNET",
    "NicSpec",
    "RackServerSpec",
    "RAX_DVFS",
    "RPI_CM_DVFS",
    "SbcPowerDraw",
    "SbcSpec",
    "SwitchSpec",
    "TESTBED_SWITCH",
    "THINKMATE_RAX",
    "dvfs_curve_for",
]
