"""Power-state machines, power traces, and server power curves.

Everything energy-related in the reproduction flows through
:class:`PowerTrace`: a piecewise-constant record of instantaneous power.
State machines append to a trace whenever a device changes state; the
energy accounting layer (:mod:`repro.energy`) integrates traces, and the
:class:`~repro.hardware.meter.PowerMeter` samples them the way a wall-plug
meter would.
"""

from __future__ import annotations

import bisect
import enum
import math
from array import array
from typing import Iterable, Mapping, Optional, Sequence


class PowerState(enum.Enum):
    """Operating states of a worker device."""

    OFF = "off"
    BOOT = "boot"
    IDLE = "idle"
    CPU_BUSY = "cpu_busy"
    IO_WAIT = "io_wait"


class PowerTrace:
    """A piecewise-constant power signal ``P(t)``.

    The trace is a sorted sequence of ``(time, watts)`` change points; the
    power between change points is the wattage of the most recent point.
    Appending at a time equal to the last change point overwrites it (the
    device changed state twice in the same instant).
    """

    def __init__(self, initial_time: float = 0.0, initial_watts: float = 0.0):
        if initial_watts < 0:
            raise ValueError(f"negative power: {initial_watts}")
        # Packed double arrays, not lists: a worker flips state several
        # times per job, so million-invocation runs hold millions of
        # change points — 8 bytes each here vs ~32 for boxed floats.
        self._times: array = array("d", [float(initial_time)])
        self._watts: array = array("d", [float(initial_watts)])
        # Autocompaction (off by default): when enabled, the trace folds
        # its oldest change points into a running energy prefix so RSS
        # stays bounded on 10⁸-event runs.  The fold replays the exact
        # left-to-right segment additions of :meth:`energy_joules`, so a
        # full-range query over a compacted trace returns bit-identical
        # floats; queries that start or end inside the folded region are
        # no longer answerable and raise.
        self._compact_limit: Optional[int] = None
        self._folded = False
        self._folded_joules = 0.0
        self._origin_time = float(initial_time)

    def __len__(self) -> int:
        return len(self._times)

    def enable_autocompact(self, max_points: int = 65536) -> None:
        """Bound the trace to ``max_points`` retained change points.

        Once the trace grows past the limit, all but the most recent
        point fold into a running energy prefix.  After the first fold,
        only queries spanning the full trace (``start`` at or before the
        trace origin, ``end`` at or after the newest retained point's
        predecessor) are supported.
        """
        if max_points < 2:
            raise ValueError(f"need max_points >= 2, got {max_points}")
        self._compact_limit = max_points

    def _fold(self) -> None:
        times = self._times
        watts = self._watts
        last = len(times) - 1
        total = self._folded_joules
        for index in range(last):
            total += watts[index] * (times[index + 1] - times[index])
        self._folded_joules = total
        self._times = array("d", [times[last]])
        self._watts = array("d", [watts[last]])
        self._folded = True

    @property
    def change_points(self) -> list[tuple[float, float]]:
        """The raw ``(time, watts)`` change points."""
        return list(zip(self._times, self._watts))

    @property
    def start_time(self) -> float:
        return self._times[0]

    @property
    def last_time(self) -> float:
        return self._times[-1]

    def record(self, time: float, watts: float) -> None:
        """Record that power changed to ``watts`` at ``time``."""
        if watts < 0:
            raise ValueError(f"negative power: {watts}")
        last = self._times[-1]
        if time < last:
            raise ValueError(f"non-monotonic trace: {time} < {last}")
        if time == last:
            self._watts[-1] = watts
            return
        if watts == self._watts[-1]:
            return  # no change; keep the trace compact
        self._times.append(time)
        self._watts.append(watts)
        if (
            self._compact_limit is not None
            and len(self._times) > self._compact_limit
        ):
            self._fold()

    def power_at(self, time: float) -> float:
        """Instantaneous power at ``time`` (0 before the trace starts)."""
        if time < self._times[0]:
            if self._folded and time >= self._origin_time:
                raise ValueError(
                    "power_at() inside the compacted region of an "
                    "autocompacted trace"
                )
            return 0.0
        index = bisect.bisect_right(self._times, time) - 1
        return self._watts[index]

    def energy_joules(self, start: float, end: float) -> float:
        """Exact energy over ``[start, end]`` by piecewise integration."""
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        if end == start:
            return 0.0
        if self._folded:
            # Only full-span queries survive compaction: the folded
            # prefix seeds the accumulator and integration resumes at
            # the retained boundary, replaying the exact additions the
            # uncompacted trace would have performed.
            if start > self._origin_time or end < self._times[0]:
                raise ValueError(
                    "autocompacted trace supports only full-range "
                    f"energy queries (folded through t={self._times[0]})"
                )
            total = self._folded_joules
            index = 0
            t = self._times[0]
            while t < end:
                seg_end = (
                    self._times[index + 1]
                    if index + 1 < len(self._times)
                    else end
                )
                seg_end = min(seg_end, end)
                total += self._watts[index] * (seg_end - t)
                t = seg_end
                index += 1
            return total
        total = 0.0
        lo = max(start, self._times[0])
        if lo >= end:
            return 0.0
        index = bisect.bisect_right(self._times, lo) - 1
        t = lo
        while t < end:
            seg_end = (
                self._times[index + 1] if index + 1 < len(self._times) else end
            )
            seg_end = min(seg_end, end)
            total += self._watts[index] * (seg_end - t)
            t = seg_end
            index += 1
        return total

    def average_watts(self, start: float, end: float) -> float:
        """Mean power over ``[start, end]``."""
        if end <= start:
            raise ValueError(f"need end > start, got [{start}, {end}]")
        return self.energy_joules(start, end) / (end - start)


def combine_traces(
    traces: Iterable[PowerTrace],
) -> PowerTrace:
    """Sum several power traces into one aggregate trace.

    The aggregate has a change point wherever any constituent changes.
    Useful for modelling a whole cluster plugged into one meter.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("need at least one trace")
    times = sorted({t for trace in traces for t, _ in trace.change_points})
    start = times[0]
    combined = PowerTrace(
        initial_time=start,
        initial_watts=sum(trace.power_at(start) for trace in traces),
    )
    for t in times[1:]:
        combined.record(t, sum(trace.power_at(t) for trace in traces))
    return combined


#: Enum members and a zeroed per-state accumulator template, computed
#: once: a 100k-worker cluster constructs one state machine per board,
#: and per-instance enum iteration plus five member hashes each was a
#: measurable slice of cold-build time.  ``.copy()`` of the template
#: reuses stored hashes, so instances pay no enum hashing at all.
_ALL_STATES = tuple(PowerState)
_ZERO_TIME_IN_STATE = {state: 0.0 for state in _ALL_STATES}


class PowerStateMachine:
    """Maps device states to wattages and records the resulting trace.

    Parameters
    ----------
    clock:
        Zero-argument callable returning current (simulated) time.
    state_watts:
        Mapping from :class:`PowerState` to watts.
    initial_state:
        State at construction time.
    """

    def __init__(
        self,
        clock,
        state_watts: Mapping[PowerState, float],
        initial_state: PowerState = PowerState.OFF,
    ):
        watts = dict(state_watts)
        if not _ZERO_TIME_IN_STATE.keys() <= watts.keys():
            missing = [s for s in _ALL_STATES if s not in watts]
            raise ValueError(f"missing wattages for states: {missing}")
        self._clock = clock
        self._state_watts = watts
        self._state = initial_state
        self.trace = PowerTrace(
            initial_time=clock(), initial_watts=watts[initial_state]
        )
        self._state_entered_at = clock()
        self._time_in_state: dict[PowerState, float] = (
            _ZERO_TIME_IN_STATE.copy()
        )

    @property
    def state(self) -> PowerState:
        return self._state

    @property
    def watts(self) -> float:
        """Current instantaneous draw."""
        return self._state_watts[self._state]

    def set_state(self, state: PowerState) -> None:
        """Transition to ``state``, recording the change on the trace."""
        now = self._clock()
        self._time_in_state[self._state] += now - self._state_entered_at
        self._state_entered_at = now
        self._state = state
        self.trace.record(now, self._state_watts[state])

    def time_in_state(self, state: PowerState) -> float:
        """Cumulative seconds spent in ``state`` so far."""
        total = self._time_in_state[state]
        if state is self._state:
            total += self._clock() - self._state_entered_at
        return total

    def rescale(self, state_watts: Mapping[PowerState, float]) -> None:
        """Swap the state→watts table in place (DVFS step change).

        The device stays in its current state; only its draw changes, so
        the trace gets a change point at the new wattage without any
        time-in-state bookkeeping.  The mapping is copied — callers may
        pass a shared template.
        """
        watts = dict(state_watts)
        if not _ZERO_TIME_IN_STATE.keys() <= watts.keys():
            missing = [s for s in _ALL_STATES if s not in watts]
            raise ValueError(f"missing wattages for states: {missing}")
        self._state_watts = watts
        self.trace.record(self._clock(), watts[self._state])


class PowerCap:
    """A power-cap governor: clamp a device's peak draw to a budget.

    The governor owns no hardware — it resolves a cap in watts against a
    platform's DVFS ladder (:class:`~repro.hardware.specs.DvfsCurve`)
    and hands back the step to apply.  ``scope`` distinguishes a
    per-worker clamp from a whole-cluster budget split evenly across the
    powered devices.
    """

    def __init__(self, cap_watts: float, scope: str = "worker"):
        if cap_watts <= 0:
            raise ValueError(f"cap must be positive, got {cap_watts}")
        if scope not in ("worker", "cluster"):
            raise ValueError(f"unknown scope {scope!r}")
        self.cap_watts = cap_watts
        self.scope = scope

    def per_device_watts(self, device_count: int) -> float:
        """The cap each device sees under this governor."""
        if device_count < 1:
            raise ValueError("need at least one device")
        if self.scope == "cluster":
            return self.cap_watts / device_count
        return self.cap_watts

    def resolve(self, curve, peak_watts: float, device_count: int = 1):
        """Pick the DVFS step for a device with nominal ``peak_watts``."""
        return curve.step_for_cap(
            self.per_device_watts(device_count), peak_watts
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PowerCap {self.cap_watts:.2f} W/{self.scope}>"


class UtilizationPowerModel:
    """Concave utilization→power curve for a rack server.

    ``P(u) = idle + (loaded - idle) * u**exponent`` with ``u`` clamped to
    ``[0, 1]``.  ``exponent < 1`` reproduces the well-documented
    non-energy-proportional behaviour of conventional servers: most of the
    dynamic power range is spent by the time utilization reaches ~40 %.
    """

    def __init__(self, idle_watts: float, loaded_watts: float, exponent: float):
        if idle_watts < 0 or loaded_watts < idle_watts:
            raise ValueError("need 0 <= idle_watts <= loaded_watts")
        if not 0 < exponent <= 1:
            raise ValueError(f"exponent must be in (0, 1], got {exponent}")
        self.idle_watts = idle_watts
        self.loaded_watts = loaded_watts
        self.exponent = exponent

    def watts(self, utilization: float) -> float:
        """Instantaneous power at CPU ``utilization`` in [0, 1]."""
        u = min(1.0, max(0.0, utilization))
        if u == 0.0:
            return self.idle_watts
        return self.idle_watts + (self.loaded_watts - self.idle_watts) * math.pow(
            u, self.exponent
        )

    def utilization_for_watts(self, watts: float) -> float:
        """Inverse of :meth:`watts` (clamped)."""
        if watts <= self.idle_watts:
            return 0.0
        if watts >= self.loaded_watts:
            return 1.0
        frac = (watts - self.idle_watts) / (self.loaded_watts - self.idle_watts)
        return math.pow(frac, 1.0 / self.exponent)

    def dynamic_range(self) -> float:
        """Barroso-Hölzle dynamic range: (loaded - idle) / loaded."""
        if self.loaded_watts == 0:
            return 0.0
        return (self.loaded_watts - self.idle_watts) / self.loaded_watts


__all__ = [
    "PowerCap",
    "PowerState",
    "PowerStateMachine",
    "PowerTrace",
    "UtilizationPowerModel",
    "combine_traces",
]
