"""Application-specific accelerators for SBC workers (Sec. VI).

The paper's future work proposes closing MicroFaaS's performance gap
with "application-specific hardware accelerators" — e.g. a
cryptographic engine for CascSHA, or the Gigabit NIC upgrade the
Sec. V discussion mentions for COSGet.  This module models an
accelerator as a per-function speedup with a power and unit-cost tax,
and rewrites the calibrated workload profiles accordingly so the
cluster simulation and the TCO model can evaluate the trade.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.workloads.profiles import PROFILES, FunctionProfile


@dataclass(frozen=True)
class AcceleratorSpec:
    """An add-on accelerator for the worker SBC."""

    name: str
    #: Function name -> speedup factor on the ARM work time (>1 = faster).
    speedups: Mapping[str, float]
    #: Extra draw while the accelerated function computes, watts.
    active_watts: float
    #: Added unit cost per board, USD.
    unit_cost_usd: float

    def __post_init__(self) -> None:
        if not self.speedups:
            raise ValueError("accelerator accelerates nothing")
        bad = {f: s for f, s in self.speedups.items() if s < 1.0}
        if bad:
            raise ValueError(f"speedups below 1.0: {bad}")
        if self.active_watts < 0 or self.unit_cost_usd < 0:
            raise ValueError("power and cost must be non-negative")

    def accelerates(self, function: str) -> bool:
        return function in self.speedups


#: A crypto engine in the style of the AM335x-class SHA/AES blocks.
CRYPTO_ACCELERATOR = AcceleratorSpec(
    name="crypto-engine",
    speedups={"CascSHA": 8.0, "CascMD5": 5.0, "AES128": 10.0},
    active_watts=0.35,
    unit_cost_usd=8.0,
)

#: A regex/stream co-processor (DPI-style), for the text workloads.
REGEX_ACCELERATOR = AcceleratorSpec(
    name="regex-engine",
    speedups={"RegExSearch": 6.0, "RegExMatch": 4.0},
    active_watts=0.25,
    unit_cost_usd=6.0,
)


def accelerated_profiles(
    accelerator: AcceleratorSpec,
    base: Mapping[str, FunctionProfile] = None,
) -> Dict[str, FunctionProfile]:
    """Rewrite profiles with the accelerator applied on the ARM side.

    The accelerated portion of the work is the CPU phase (the engine
    offloads computation, not I/O waits); the x86 baseline is untouched.
    """
    base = PROFILES if base is None else base
    out: Dict[str, FunctionProfile] = {}
    for name, profile in base.items():
        if not accelerator.accelerates(name):
            out[name] = profile
            continue
        speedup = accelerator.speedups[name]
        cpu_s = profile.work_arm_s * profile.cpu_fraction_arm / speedup
        io_s = profile.work_arm_s * (1 - profile.cpu_fraction_arm)
        new_work = cpu_s + io_s
        out[name] = dataclasses.replace(
            profile,
            work_arm_s=new_work,
            cpu_fraction_arm=cpu_s / new_work if new_work > 0 else 0.0,
        )
    return out


def accelerated_unit_cost(
    base_cost_usd: float, accelerator: AcceleratorSpec
) -> float:
    """Board cost with the accelerator fitted (for the TCO model)."""
    if base_cost_usd < 0:
        raise ValueError("base cost cannot be negative")
    return base_cost_usd + accelerator.unit_cost_usd


__all__ = [
    "AcceleratorSpec",
    "CRYPTO_ACCELERATOR",
    "REGEX_ACCELERATOR",
    "accelerated_profiles",
    "accelerated_unit_cost",
]
