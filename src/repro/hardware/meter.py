"""WattsUp-Pro-style sampling power meter.

The paper measures each cluster's total energy with a *WattsUp Pro* wall
meter.  The meter samples instantaneous power at 1 Hz and accumulates
energy as ``sum(sample * interval)``.  This module reproduces those
measurement semantics as a simulation process so that "measured" energy
in our experiments carries the same quantization the physical meter
would introduce.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.sim.kernel import Environment, Interrupt


class PowerMeter:
    """Samples a power signal at a fixed interval and integrates energy.

    Parameters
    ----------
    env:
        Simulation environment.
    watts_fn:
        Zero-argument callable returning instantaneous watts of the
        metered equipment (e.g. the sum over a cluster's nodes).
    interval_s:
        Sampling interval; the WattsUp Pro logs once per second.
    """

    def __init__(
        self,
        env: Environment,
        watts_fn: Callable[[], float],
        interval_s: float = 1.0,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.env = env
        self.watts_fn = watts_fn
        self.interval_s = interval_s
        self.samples: List[Tuple[float, float]] = []
        self._energy_joules = 0.0
        self._process = None
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

    def start(self) -> None:
        """Begin sampling now."""
        if self._process is not None:
            raise RuntimeError("meter already started")
        self._started_at = self.env.now
        self._process = self.env.process(self._run(), name="power-meter")

    def stop(self) -> None:
        """Stop sampling."""
        if self._process is None:
            raise RuntimeError("meter was never started")
        if self._stopped_at is None:
            self._stopped_at = self.env.now
            if self._process.is_alive:
                self._process.interrupt("stop")

    def _run(self):
        # Each sample is taken at the *end* of its interval and charged
        # for the whole interval, matching an accumulating wall meter.
        try:
            while True:
                yield self.env.timeout(self.interval_s)
                watts = float(self.watts_fn())
                self.samples.append((self.env.now, watts))
                self._energy_joules += watts * self.interval_s
        except Interrupt:
            return

    # -- readings --------------------------------------------------------------

    @property
    def energy_joules(self) -> float:
        """Accumulated energy reading (left-rectangle integration)."""
        return self._energy_joules

    @property
    def sample_count(self) -> int:
        return len(self.samples)

    @property
    def duration_s(self) -> float:
        """Metered wall time so far."""
        if self._started_at is None:
            return 0.0
        end = self._stopped_at if self._stopped_at is not None else self.env.now
        return end - self._started_at

    def average_watts(self) -> float:
        """Mean of the recorded samples."""
        if not self.samples:
            raise RuntimeError("no samples recorded")
        return sum(w for _, w in self.samples) / len(self.samples)

    def peak_watts(self) -> float:
        """Highest recorded sample."""
        if not self.samples:
            raise RuntimeError("no samples recorded")
        return max(w for _, w in self.samples)


__all__ = ["PowerMeter"]
