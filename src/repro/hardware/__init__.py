"""Hardware models: SBC and rack-server specs, power states, metering.

This package models the physical substrate of the paper's two test
clusters:

- :mod:`repro.hardware.specs` — immutable spec sheets for the BeagleBone
  Black SBC, the Thinkmate RAX rack server (AMD Opteron 6172), the Dell
  PowerEdge R6515 used in the TCO analysis, and the Cisco Catalyst ToR
  switch.
- :mod:`repro.hardware.power` — power-state machines producing
  piecewise-constant power traces, plus the concave utilization→power
  curve of a non-energy-proportional rack server.
- :mod:`repro.hardware.sbc` — a single-board computer with GPIO-driven
  power control (the paper's worker node).
- :mod:`repro.hardware.rackserver` — the virtualization host.
- :mod:`repro.hardware.meter` — a WattsUp-Pro-style sampling power meter.
"""

from repro.hardware.meter import PowerMeter
from repro.hardware.power import (
    PowerState,
    PowerStateMachine,
    PowerTrace,
    UtilizationPowerModel,
    combine_traces,
)
from repro.hardware.rackserver import RackServer
from repro.hardware.sbc import SingleBoardComputer
from repro.hardware.specs import (
    BEAGLEBONE_BLACK,
    CATALYST_2960S,
    DELL_POWEREDGE_R6515,
    THINKMATE_RAX,
    CpuSpec,
    NicSpec,
    RackServerSpec,
    SbcPowerDraw,
    SbcSpec,
    SwitchSpec,
)

__all__ = [
    "BEAGLEBONE_BLACK",
    "CATALYST_2960S",
    "CpuSpec",
    "DELL_POWEREDGE_R6515",
    "NicSpec",
    "PowerMeter",
    "PowerState",
    "PowerStateMachine",
    "PowerTrace",
    "RackServer",
    "RackServerSpec",
    "SbcPowerDraw",
    "SbcSpec",
    "SingleBoardComputer",
    "SwitchSpec",
    "THINKMATE_RAX",
    "UtilizationPowerModel",
    "combine_traces",
]
