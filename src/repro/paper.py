"""Every number the paper publishes, in one place.

Tests, benchmarks, and experiments compare against these constants so
the provenance of each expectation is explicit.  Section references are
to Byrne et al., "MicroFaaS: Energy-efficient Serverless on Bare-metal
Single-board Computers," DATE 2022.
"""

from __future__ import annotations

from types import MappingProxyType

# -- Sec. IV-A: worker OS ----------------------------------------------------

#: Final boot times of the optimized worker OS, seconds.
BOOT_ARM_S = 1.51
BOOT_X86_S = 0.96
#: Sec. III-a: rack servers take 55+ s to reboot; SBCs < 2 s.
RACK_SERVER_REBOOT_S = 55.0
SBC_REBOOT_LIMIT_S = 2.0

# -- Sec. IV-B / V: clusters ---------------------------------------------------

MICROFAAS_WORKERS = 10
CONVENTIONAL_VMS = 6
HOST_CORES = 12
HOST_RAM_BYTES = 16 * 1024**3
VM_RAM_BYTES = 512 * 1024**2

#: Measured cluster capacities, functions per minute.
MICROFAAS_FUNC_PER_MIN = 200.6
CONVENTIONAL_FUNC_PER_MIN = 211.7

#: Measured energy per function, joules; and the headline ratio.
MICROFAAS_J_PER_FUNC = 5.7
CONVENTIONAL_J_PER_FUNC = 32.0
ENERGY_EFFICIENCY_RATIO = 5.6
#: Fig. 4: the conventional cluster's peak efficiency at saturation.
CONVENTIONAL_PEAK_J_PER_FUNC = 16.1

#: Sec. V: of the 17 functions, MicroFaaS runs this many faster, and
#: this many more at better than half the conventional speed.
FIG3_FASTER_ON_MICROFAAS = 4
FIG3_ABOVE_HALF_SPEED = 9

# -- Appendix: cost model ---------------------------------------------------------

SERVER_COST_USD = 2011.0
SBC_COST_USD = 52.50
SWITCH_COST_USD = 500.0
SWITCH_PORTS = 48
SWITCH_WATTS = 40.87
CABLE_USD_PER_NODE = 1.80
PUE = 1.3
SPUE = 1.2
ELECTRICITY_USD_PER_KWH = 0.10
SERVER_LOADED_WATTS = 150.0
SERVER_IDLE_WATTS = 60.0
SBC_LOADED_WATTS = 1.96
SBC_IDLE_WATTS = 0.128
RACK_SERVERS = 41
RACK_SBCS = 989
RACK_SBC_SWITCHES = 21
#: The energy horizon consistent with all four Table II energy cells:
#: 5 years of 8,640-hour (360-day) years.
TCO_LIFETIME_HOURS = 43_200.0

#: Table II, to the dollar: (scenario, deployment) ->
#: (compute, network, energy, total).
TABLE2_USD = MappingProxyType(
    {
        ("ideal", "conventional"): (82_451, 574, 41_676, 124_701),
        ("ideal", "microfaas"): (51_923, 12_280, 17_884, 82_087),
        ("realistic", "conventional"): (86_791, 574, 29_242, 116_607),
        ("realistic", "microfaas"): (54_655, 12_280, 11_778, 78_713),
    }
)

#: Sec. V: the TCO savings range.
TCO_SAVINGS_IDEAL = 0.342
TCO_SAVINGS_REALISTIC = 0.325

# -- Footnote 4: reliability -------------------------------------------------------

SBC_MTBF_HOURS = 2_320_456.0
SERVER_BOARD_MTBF_HOURS = 234_708.0

__all__ = [name for name in dir() if name.isupper()]
