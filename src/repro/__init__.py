"""MicroFaaS reproduction library.

A full-system reproduction of *MicroFaaS: Energy-efficient Serverless on
Bare-metal Single-board Computers* (Byrne et al., DATE 2022): the
orchestration platform, the SBC and rack-server hardware models, the worker
OS boot pipeline, the virtualization substrate, the backend services, the
17-function workload suite, and the full evaluation (Figs. 1/3/4/5,
Tables I/II, and the headline throughput/energy numbers).

Public API highlights
---------------------
- :mod:`repro.cluster` — build and run the MicroFaaS and conventional
  clusters in simulation.
- :mod:`repro.runtime` — run the 17 workload functions *for real* on a
  thread-based local FaaS platform.
- :mod:`repro.experiments` — regenerate every table and figure.
- :mod:`repro.tco` — the Cui et al. total-cost-of-ownership model.
"""

__version__ = "1.0.0"

__all__ = [
    "bootos",
    "cluster",
    "core",
    "energy",
    "experiments",
    "hardware",
    "net",
    "obs",
    "runtime",
    "services",
    "sim",
    "tco",
    "virt",
    "workloads",
]
