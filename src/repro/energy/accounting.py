"""Energy breakdowns and unit helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.core.telemetry import InvocationRecord
from repro.hardware.power import PowerState
from repro.hardware.sbc import SingleBoardComputer

JOULES_PER_KWH = 3.6e6


def joules_to_kwh(joules: float) -> float:
    """Convert joules to kilowatt-hours."""
    return joules / JOULES_PER_KWH


def kwh_to_joules(kwh: float) -> float:
    """Convert kilowatt-hours to joules."""
    return kwh * JOULES_PER_KWH


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy attributed to each worker power state, in joules."""

    by_state: Mapping[str, float]

    def __post_init__(self) -> None:
        bad = {k: v for k, v in self.by_state.items() if v < 0}
        if bad:
            raise ValueError(f"negative energies: {bad}")

    @property
    def total_joules(self) -> float:
        return sum(self.by_state.values())

    def fraction(self, state: str) -> float:
        """Share of total energy spent in ``state``."""
        total = self.total_joules
        if total == 0:
            return 0.0
        return self.by_state.get(state, 0.0) / total


def sbc_state_breakdown(
    sbcs: Iterable[SingleBoardComputer],
) -> EnergyBreakdown:
    """Attribute a fleet's energy to power states via time-in-state.

    Uses each board's state-residency counters and per-state wattages, so
    it answers "where did the joules go" questions: how much was boot
    tax, how much was useful compute, how much leaked while off.
    """
    totals: Dict[str, float] = {state.value: 0.0 for state in PowerState}
    for sbc in sbcs:
        draws = {
            PowerState.OFF: sbc.spec.power.off,
            PowerState.BOOT: sbc.spec.power.boot,
            PowerState.IDLE: sbc.spec.power.idle,
            PowerState.CPU_BUSY: sbc.spec.power.cpu_busy,
            PowerState.IO_WAIT: sbc.spec.power.io_wait,
        }
        for state in PowerState:
            totals[state.value] += sbc.psm.time_in_state(state) * draws[state]
    return EnergyBreakdown(by_state=totals)


def per_platform_joules(cluster, start: float, end: float) -> Dict[str, float]:
    """Energy attributed to each worker platform over a window.

    Works on any harness-built cluster: each pool integrates its own
    metered hardware's power trace (per-board meters for SBCs, the wall
    meter for a VM host), so on a hybrid cluster this splits the bill
    between the ``arm`` and ``x86`` fleets.  Shared fabric switches are
    cluster-level and not attributed to either platform.
    """
    totals: Dict[str, float] = {}
    for platform, joules in cluster.pool_energy_joules(start, end):
        totals[platform] = totals.get(platform, 0.0) + joules
    return totals


def per_function_active_joules(
    records: Iterable[InvocationRecord],
    sbcs: Iterable[SingleBoardComputer],
) -> Dict[str, float]:
    """Trace-integrated joules per function over each record's service
    window (``t_started`` to ``t_completed``) on its worker's board.

    This is the record-level ground truth the per-span attribution in
    :mod:`repro.obs.energy` reconciles against: a delivered attempt's
    boot + transfer + execute spans tile exactly that window, so their
    energies must sum to this integral.  Only per-board-metered workers
    (SBCs) can be attributed; records from other platforms are skipped.
    """
    traces = {sbc.node_id: sbc.trace for sbc in sbcs}
    totals: Dict[str, float] = {}
    for record in records:
        trace = traces.get(record.worker_id)
        if trace is None:
            continue
        joules = trace.energy_joules(record.t_started, record.t_completed)
        totals[record.function] = totals.get(record.function, 0.0) + joules
    return totals


__all__ = [
    "EnergyBreakdown",
    "JOULES_PER_KWH",
    "joules_to_kwh",
    "kwh_to_joules",
    "per_function_active_joules",
    "per_platform_joules",
    "sbc_state_breakdown",
]
