"""The energy control plane: online attribution, forecasts, signals.

The measurement layer (:mod:`repro.energy.accounting`,
:mod:`repro.obs.energy`) answers "where did the joules go" *after* a
run.  This module turns the same trace arithmetic into state the
platform can consult *while the run is in flight*:

- :class:`EnergyLedger` — double-entry per-invocation attribution,
  updated incrementally from the orchestrator's job-transition path.
  Each per-board-metered worker carries a billing cursor; a delivered
  attempt bills its service window (``t_started`` → ``t_completed``, the
  same window :func:`repro.energy.accounting.per_function_active_joules`
  integrates post-hoc) to its function and tenant, the gap since the
  previous bill goes to the shared ``idle`` overhead pool, and crashed
  or duplicate attempts bill to ``wasted`` — never double-counted.  By
  construction the billed segments partition each covered trace, so
  invocation + overhead joules reconcile against the metered total to
  float-accumulation error (≤1e-9 in the test suite).
- :class:`ArrivalForecast` — EWMA rate estimate over fixed sampling
  ticks, with idle-detection reset, feeding predictive warm-pool sizing.
- :class:`WarmingAccount` — the explicit joules-spent-warming vs
  cold-boots-avoided balance sheet a warm pool settles.
- :class:`CarbonSignal` — a deterministic time-varying carbon-intensity
  (or price) curve per region; optional noise is pre-sampled from a
  named RNG stream at construction, so reading the signal mid-run draws
  nothing.

Everything here is opt-in: an orchestrator without a ledger, a warm
pool without a forecast, and a scheduler without signals behave
bit-identically to the pre-control-plane platform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

TAU = 2.0 * math.pi


@dataclass(frozen=True)
class ReconciliationReport:
    """One conservation check: metered vs attributed joules."""

    metered_joules: float
    attributed_joules: float

    @property
    def residual_joules(self) -> float:
        return self.metered_joules - self.attributed_joules

    def ok(self, tolerance_j: float = 1e-9) -> bool:
        return abs(self.residual_joules) <= tolerance_j


class EnergyLedger:
    """Online double-entry energy attribution over per-board meters.

    Scope: workers with their own power trace (SBCs).  A microVM is
    metered at the host wall shared with its siblings, so per-guest
    attribution is not physically meaningful — exactly the limitation
    :func:`repro.energy.accounting.per_function_active_joules` has.

    The orchestrator drives the ledger from its completion/failure/
    recovery paths; nothing here advances simulated time or draws RNG,
    so attaching a ledger never perturbs a run.
    """

    def __init__(self, clock):
        self._clock = clock
        self._traces: Dict[int, object] = {}
        self._cursor: Dict[int, float] = {}
        #: Delivered active joules per function (service windows).
        self.function_joules: Dict[str, float] = {}
        #: Joules per tenant: delivered *and* wasted attempts — a
        #: tenant's crashes and lost hedges burn its budget too.
        self.tenant_joules: Dict[str, float] = {}
        #: Shared overhead pools: ``idle`` (boot/idle/off time between
        #: attempts) and ``wasted`` (crashed or duplicate attempts).
        self.overhead_joules: Dict[str, float] = {"idle": 0.0, "wasted": 0.0}
        self.attempts_billed = 0
        self.wasted_attempts = 0

    # -- wiring ----------------------------------------------------------------

    def register_worker(self, worker_id: int, trace) -> None:
        """Cover one worker's power trace, billing from its origin."""
        if worker_id in self._traces:
            raise ValueError(f"worker {worker_id} already registered")
        self._traces[worker_id] = trace
        self._cursor[worker_id] = trace.start_time

    def register_cluster(self, cluster) -> int:
        """Cover every per-board-metered worker of a harness-built
        cluster; returns how many boards are now covered."""
        count = 0
        for pool in cluster.pools:
            for sbc in getattr(pool, "sbcs", ()):
                self.register_worker(sbc.node_id, sbc.trace)
                count += 1
        return count

    @property
    def covered_worker_ids(self):
        return sorted(self._traces)

    # -- billing (orchestrator hooks) ------------------------------------------

    def bill_attempt(self, job, t_end: float, delivered: bool) -> None:
        """Bill one finished attempt's service window.

        ``delivered=True`` books the window to the job's function (and
        tenant); duplicates and crashed attempts book to ``wasted``.
        The idle gap between the previous bill and this window goes to
        the ``idle`` pool either way.  Unmetered workers (VM guests,
        remote shard workers) are ignored.
        """
        if job.worker_id is None or job.t_started is None:
            return
        trace = self._traces.get(job.worker_id)
        if trace is None:
            return
        start = job.t_started
        cursor = self._cursor[job.worker_id]
        if start >= cursor:
            if start > cursor:
                self.overhead_joules["idle"] += trace.energy_joules(
                    cursor, start
                )
        else:
            # An interim settle() billed part of this running attempt's
            # window to idle; reclaim it so the invocation keeps its
            # exact post-hoc window and nothing is counted twice.
            self.overhead_joules["idle"] -= trace.energy_joules(start, cursor)
        window_j = trace.energy_joules(start, t_end)
        if delivered:
            self.function_joules[job.function] = (
                self.function_joules.get(job.function, 0.0) + window_j
            )
        else:
            self.overhead_joules["wasted"] += window_j
            self.wasted_attempts += 1
        tenant = getattr(job, "tenant", None)
        if tenant is not None:
            self.tenant_joules[tenant] = (
                self.tenant_joules.get(tenant, 0.0) + window_j
            )
        self._cursor[job.worker_id] = max(cursor, t_end)
        self.attempts_billed += 1

    def bill_crashed_attempt(self, job, t_end: float) -> None:
        """Bill a crashed attempt (worker died mid-job) as wasted.

        Called *before* ``reset_for_retry`` clears the attempt's
        ``t_started``/``worker_id``; queued attempts that never started
        have no window and bill nothing.
        """
        self.bill_attempt(job, t_end, delivered=False)

    # -- settlement / queries --------------------------------------------------

    def settle(self, end: float) -> None:
        """Bill every covered worker's unattributed tail up to ``end``
        into the ``idle`` pool (energy of an attempt still in flight is
        reclaimed when that attempt lands — see :meth:`bill_attempt`)."""
        for worker_id, trace in self._traces.items():
            cursor = self._cursor[worker_id]
            if end > cursor:
                self.overhead_joules["idle"] += trace.energy_joules(
                    cursor, end
                )
                self._cursor[worker_id] = end

    def attributed_joules(self) -> float:
        """Everything billed so far: invocations plus overhead pools."""
        return sum(self.function_joules.values()) + sum(
            self.overhead_joules.values()
        )

    def metered_joules(self, end: float) -> float:
        """Ground truth: covered traces integrated from their origin."""
        return sum(
            trace.energy_joules(trace.start_time, end)
            for trace in self._traces.values()
        )

    def reconcile(self, end: Optional[float] = None) -> ReconciliationReport:
        """Settle tails through ``end`` (default: now) and report the
        conservation check.  Callable mid-flight: in-flight attempts'
        energy sits in ``idle`` until they land."""
        if end is None:
            end = self._clock()
        self.settle(end)
        return ReconciliationReport(
            metered_joules=self.metered_joules(end),
            attributed_joules=self.attributed_joules(),
        )


class ArrivalForecast:
    """EWMA arrival-rate forecast over fixed sampling ticks.

    Feed one instantaneous rate per tick; read ``rate_hat``.  The first
    observation seeds the estimate (no cold-start bias toward zero), and
    ``idle_ticks_to_reset`` consecutive zero ticks snap the forecast to
    zero — a plain EWMA decays geometrically and would hold a warm pool
    open long after traffic stops.
    """

    def __init__(self, alpha: float = 0.5, idle_ticks_to_reset: int = 2):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if idle_ticks_to_reset < 1:
            raise ValueError("idle_ticks_to_reset must be >= 1")
        self.alpha = alpha
        self.idle_ticks_to_reset = idle_ticks_to_reset
        self.rate_hat = 0.0
        self.observations = 0
        self._zero_streak = 0

    def observe(self, instant_rate: float) -> float:
        """Fold one tick's observed rate in; returns the new forecast."""
        if instant_rate < 0:
            raise ValueError(f"negative rate: {instant_rate}")
        if instant_rate == 0:
            self._zero_streak += 1
        else:
            self._zero_streak = 0
        if self._zero_streak >= self.idle_ticks_to_reset:
            self.rate_hat = 0.0
        elif self.observations == 0:
            self.rate_hat = instant_rate
        else:
            self.rate_hat = (
                self.alpha * instant_rate
                + (1.0 - self.alpha) * self.rate_hat
            )
        self.observations += 1
        return self.rate_hat


@dataclass(frozen=True)
class WarmingAccount:
    """The warm pool's balance sheet: joules spent idling warm boards
    vs the boot energy those warm claims avoided."""

    joules_spent_warming: float
    cold_boots_avoided: int
    #: Energy of one avoided boot (boot draw × boot time) on the
    #: warmable platform.
    boot_joules_each: float

    @property
    def joules_saved_booting(self) -> float:
        return self.cold_boots_avoided * self.boot_joules_each

    @property
    def net_joules(self) -> float:
        """Positive when warming saved more boot energy than it burned
        keeping boards idle."""
        return self.joules_saved_booting - self.joules_spent_warming


class CarbonSignal:
    """A deterministic time-varying carbon-intensity (or price) curve.

    ``cost_at(now)`` is a diurnal sinusoid around ``base`` plus an
    optional piecewise-constant noise table.  The noise is pre-sampled
    at construction from a named RNG stream, so reading the signal
    mid-run draws nothing — routing decisions stay bit-identical no
    matter how often anyone looks.
    """

    def __init__(
        self,
        base: float,
        amplitude: float = 0.0,
        period_s: float = 86400.0,
        phase_s: float = 0.0,
        noise_steps=(),
        noise_step_s: float = 3600.0,
    ):
        if base < 0:
            raise ValueError(f"negative base cost: {base}")
        if amplitude < 0 or amplitude > base:
            raise ValueError("amplitude must be in [0, base]")
        if period_s <= 0 or noise_step_s <= 0:
            raise ValueError("periods must be positive")
        self.base = base
        self.amplitude = amplitude
        self.period_s = period_s
        self.phase_s = phase_s
        self.noise_steps = tuple(noise_steps)
        self.noise_step_s = noise_step_s

    @classmethod
    def from_stream(
        cls,
        streams,
        name: str,
        base: float,
        amplitude: float = 0.0,
        period_s: float = 86400.0,
        phase_s: float = 0.0,
        noise: float = 0.0,
        noise_slots: int = 24,
        noise_step_s: float = 3600.0,
    ) -> "CarbonSignal":
        """Pre-sample a noisy signal from a named stream family.

        All ``noise_slots`` offsets are drawn here, from the spawned
        ``carbon-<name>`` stream — nothing shared with the simulation's
        streams, nothing drawn later.
        """
        spawned = streams.spawn(f"carbon-{name}")
        steps = tuple(
            spawned.uniform(f"slot-{slot}", -noise, noise)
            for slot in range(noise_slots)
        )
        return cls(
            base=base,
            amplitude=amplitude,
            period_s=period_s,
            phase_s=phase_s,
            noise_steps=steps if noise > 0 else (),
            noise_step_s=noise_step_s,
        )

    def cost_at(self, now: float) -> float:
        """Signal value at simulated time ``now`` (clamped to >= 0)."""
        value = self.base + self.amplitude * math.sin(
            TAU * (now + self.phase_s) / self.period_s
        )
        if self.noise_steps:
            slot = int(now // self.noise_step_s) % len(self.noise_steps)
            value += self.noise_steps[slot]
        return max(0.0, value)


__all__ = [
    "ArrivalForecast",
    "CarbonSignal",
    "EnergyLedger",
    "ReconciliationReport",
    "WarmingAccount",
]
