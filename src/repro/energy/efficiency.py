"""Energy-efficiency metrics (the Fig. 4 quantities)."""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple

from repro.cluster.result import ClusterResult


def joules_per_function(result: ClusterResult) -> float:
    """The paper's headline metric for one run."""
    return result.joules_per_function


def efficiency_ratio(
    conventional: ClusterResult, microfaas: ClusterResult
) -> float:
    """How many times more energy the conventional cluster burns per
    function (the paper reports 5.6x)."""
    return conventional.joules_per_function / microfaas.joules_per_function


def peak_efficiency(
    points: Sequence[Tuple[int, float]],
) -> Tuple[int, float]:
    """Best (lowest J/function) point of a VM sweep.

    ``points`` are ``(vm_count, joules_per_function)`` pairs; returns the
    pair at the sweep's efficiency peak (the paper finds 16.1 J/func
    once the host saturates).
    """
    if not points:
        raise ValueError("empty sweep")
    for vm_count, jpf in points:
        if vm_count < 1 or jpf <= 0:
            raise ValueError(f"invalid sweep point ({vm_count}, {jpf})")
    return min(points, key=lambda p: p[1])


def per_function_energy_j(
    boot_s: float = 1.51,
    power_boot_w: float = 1.90,
    power_cpu_w: float = 2.20,
    power_io_w: float = 1.20,
) -> "dict[str, float]":
    """Analytic per-function MicroFaaS energy from the calibrated profiles.

    Splits each invocation into boot, CPU, and I/O phases at the SBC's
    per-state draws (overhead transfer time is I/O).  The mix-weighted
    mean of the result is the published 5.7 J/function; individual
    functions range from ~3 J (MQProduce) to ~11 J (MatMul).
    """
    from repro.workloads.base import ALL_FUNCTION_NAMES
    from repro.workloads.profiles import PROFILES

    session_s, goodput = 28e-3, 90e6
    energies = {}
    for name in ALL_FUNCTION_NAMES:
        profile = PROFILES[name]
        payload = profile.input_bytes + profile.output_bytes
        overhead_s = session_s + payload * 8 / goodput
        cpu_s = profile.work_arm_s * profile.cpu_fraction_arm
        io_s = profile.work_arm_s - cpu_s + overhead_s
        energies[name] = (
            boot_s * power_boot_w + cpu_s * power_cpu_w + io_s * power_io_w
        )
    return energies


__all__ = [
    "efficiency_ratio",
    "joules_per_function",
    "peak_efficiency",
    "per_function_energy_j",
]
