"""Energy-proportionality analysis (Fig. 5).

Fig. 5 plots average cluster power against the number of *active*
workers: the SBC cluster's line passes near the origin and rises
linearly (each active board adds ~1.96 W; sleeping boards draw 0.128 W),
while the VM host starts at a 60 W idle floor and rises concavely.  The
metrics here quantify that contrast: the idle intercept, a linearity
R-squared, and Barroso-Hölzle-style proportionality indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.hardware.specs import (
    BEAGLEBONE_BLACK,
    RackServerSpec,
    SbcSpec,
    THINKMATE_RAX,
)
from repro.hardware.power import UtilizationPowerModel
from repro.workloads.base import ALL_FUNCTION_NAMES
from repro.workloads.profiles import PROFILES


@dataclass(frozen=True)
class ProportionalitySeries:
    """One Fig. 5 line: power vs. active worker count."""

    label: str
    worker_counts: Tuple[int, ...]
    watts: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.worker_counts) != len(self.watts):
            raise ValueError("mismatched series lengths")
        if any(w < 0 for w in self.watts):
            raise ValueError("negative power")

    @property
    def idle_watts(self) -> float:
        """Power at zero active workers (the Fig. 5 intercept)."""
        for count, watts in zip(self.worker_counts, self.watts):
            if count == 0:
                return watts
        raise ValueError("series has no zero-worker point")

    @property
    def peak_watts(self) -> float:
        return max(self.watts)


def _mean_busy_sbc_watts(spec: SbcSpec) -> float:
    """Average draw of one fully busy SBC over the 17-function mix."""
    boot_s = 1.51
    total_time = 0.0
    total_energy = 0.0
    for name in ALL_FUNCTION_NAMES:
        profile = PROFILES[name]
        cpu_s = profile.work_arm_s * profile.cpu_fraction_arm
        io_s = profile.work_arm_s - cpu_s
        time = boot_s + profile.work_arm_s
        energy = (
            boot_s * spec.power.boot
            + cpu_s * spec.power.cpu_busy
            + io_s * spec.power.io_wait
        )
        total_time += time
        total_energy += energy
    return total_energy / total_time


def sbc_cluster_power_series(
    cluster_size: int = 10,
    spec: SbcSpec = BEAGLEBONE_BLACK,
) -> ProportionalitySeries:
    """Fig. 5's SBC line: n boards busy, the rest powered down."""
    if cluster_size < 1:
        raise ValueError("cluster_size must be >= 1")
    busy = _mean_busy_sbc_watts(spec)
    counts = tuple(range(cluster_size + 1))
    watts = tuple(
        n * busy + (cluster_size - n) * spec.power.off for n in counts
    )
    return ProportionalitySeries(
        label=f"{cluster_size}x SBC (MicroFaaS)",
        worker_counts=counts,
        watts=watts,
    )


def vm_host_power_series(
    max_vms: int = 12,
    spec: RackServerSpec = THINKMATE_RAX,
) -> ProportionalitySeries:
    """Fig. 5's VM line: n active VMs on one rack server.

    Each active VM contributes its mean vCPU demand (the calibrated
    1.287 CPU-s per 1.70 s cycle); the host's concave curve maps the
    resulting utilization to watts.
    """
    if max_vms < 1:
        raise ValueError("max_vms must be >= 1")
    model = UtilizationPowerModel(
        spec.idle_watts, spec.loaded_watts, spec.power_exponent
    )
    per_vm_busy_cores = 1.287 / (6 * 60 / 211.7)  # mean vCPU occupancy
    counts = tuple(range(max_vms + 1))
    watts = tuple(
        model.watts(n * per_vm_busy_cores / spec.cpu.cores) for n in counts
    )
    return ProportionalitySeries(
        label=f"microVMs on {spec.name}",
        worker_counts=counts,
        watts=watts,
    )


def linearity_r_squared(series: ProportionalitySeries) -> float:
    """R-squared of a least-squares line through the series."""
    xs = series.worker_counts
    ys = series.watts
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("degenerate x values")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot


def proportionality_score(series: ProportionalitySeries) -> float:
    """Area-based energy-proportionality score (Wong & Annavaram style).

    1.0 means power tracks load exactly (the ideal line from the origin
    to peak); 0.0 means power is flat at peak regardless of load.
    Computed as ``1 - (A_actual - A_ideal) / A_flat-ideal-gap`` over the
    normalized load axis, clamped to [0, 1].
    """
    xs = series.worker_counts
    ys = series.watts
    if len(xs) < 2:
        raise ValueError("need at least two points")
    peak = series.peak_watts
    if peak == 0:
        raise ValueError("series never draws power")
    max_x = max(xs)
    if max_x == 0:
        raise ValueError("series has no load axis")
    # Trapezoidal areas of the normalized curves.
    def area(values):
        total = 0.0
        for (x0, y0), (x1, y1) in zip(
            zip(xs, values), list(zip(xs, values))[1:]
        ):
            total += (y0 + y1) / 2 * (x1 - x0) / max_x
        return total

    actual = area([y / peak for y in ys])
    ideal = area([x / max_x for x in xs])
    flat = 1.0  # constant-at-peak curve
    if flat == ideal:
        return 1.0
    score = 1.0 - (actual - ideal) / (flat - ideal)
    return min(1.0, max(0.0, score))


def proportionality_index(series: ProportionalitySeries) -> float:
    """1 - idle/peak: 1.0 is perfectly energy-proportional.

    The MicroFaaS cluster scores ~0.99 (boards off draw almost nothing);
    a conventional host scores ~0.6 at best (60 W idle out of 150 W).
    """
    peak = series.peak_watts
    if peak == 0:
        raise ValueError("series never draws power")
    return 1.0 - series.idle_watts / peak


__all__ = [
    "ProportionalitySeries",
    "linearity_r_squared",
    "proportionality_index",
    "proportionality_score",
    "sbc_cluster_power_series",
    "vm_host_power_series",
]
