"""Energy accounting and analysis.

- :mod:`repro.energy.accounting` — per-state energy breakdowns from
  power traces, unit helpers.
- :mod:`repro.energy.efficiency` — J/function metrics, efficiency
  ratios, and the peak-efficiency search behind Fig. 4.
- :mod:`repro.energy.proportionality` — energy-proportionality metrics
  and the power-vs-active-workers series of Fig. 5.
- :mod:`repro.energy.controlplane` — the online side: the per-invocation
  :class:`EnergyLedger`, arrival forecasts for predictive warm pools,
  warming balance sheets, and carbon/price signals.
"""

from repro.energy.accounting import (
    EnergyBreakdown,
    joules_to_kwh,
    kwh_to_joules,
    sbc_state_breakdown,
)
from repro.energy.controlplane import (
    ArrivalForecast,
    CarbonSignal,
    EnergyLedger,
    ReconciliationReport,
    WarmingAccount,
)
from repro.energy.efficiency import (
    efficiency_ratio,
    joules_per_function,
    peak_efficiency,
)
from repro.energy.proportionality import (
    ProportionalitySeries,
    linearity_r_squared,
    proportionality_index,
    sbc_cluster_power_series,
    vm_host_power_series,
)

__all__ = [
    "ArrivalForecast",
    "CarbonSignal",
    "EnergyBreakdown",
    "EnergyLedger",
    "ProportionalitySeries",
    "ReconciliationReport",
    "WarmingAccount",
    "efficiency_ratio",
    "joules_per_function",
    "joules_to_kwh",
    "kwh_to_joules",
    "linearity_r_squared",
    "peak_efficiency",
    "proportionality_index",
    "sbc_cluster_power_series",
    "sbc_state_breakdown",
    "vm_host_power_series",
]
