"""Calibration solver for the per-function workload profiles.

Solves the per-function work times and CPU fractions so the paper's
aggregate statements hold exactly:

- 10-SBC MicroFaaS cluster:   200.6 func/min  => mean ARM cycle 2.9910 s
  (boot 1.51 s  =>  mean ARM work+overhead 1.4810 s)
- 6-VM conventional cluster:  211.7 func/min  => mean x86 cycle 1.7006 s
  (boot 0.96 s  =>  mean x86 work+overhead 0.7406 s)
- MicroFaaS energy: 5.7 J/function  => solves the mean ARM CPU fraction
- Conventional power at 6 VMs: 32.0 J/func * 211.7/60 = 112.9 W
  => mean x86 CPU per cycle 1.287 s (with the 0.547 power exponent)
- Fig. 3 shape: 4 of 17 faster on MicroFaaS, 4 slower than half speed.

Run:  python tools/calibrate_profiles.py
Paste the printed table into src/repro/workloads/profiles.py.
"""

# Draft relative work times (ms) and payload sizes.  The solver rescales
# the work columns to hit the cluster-level means.
FUNCTIONS = [
    # name, work_arm, work_x86, in_bytes, out_bytes, cpu_frac_arm, cpu_frac_x86, svc
    ("FloatOps",    1150,  600,    100,   120, 0.96, 0.96, None),
    ("CascSHA",     1800,  280,    200,   150, 0.96, 0.96, None),
    ("CascMD5",      500,  260,    200,   120, 0.96, 0.96, None),
    ("MatMul",      2700,  900,    150,   100, 0.96, 0.96, None),
    ("HTMLGen",      280,  150,  24000, 31000, 0.96, 0.96, None),
    ("AES128",      1600,  500,    650,   180, 0.96, 0.96, None),
    ("Decompress",   330,  180,  60000,   150, 0.96, 0.96, None),
    ("RegExSearch",  560,  300, 250000,    80, 0.96, 0.96, None),
    ("RegExMatch",   220,  120,  30000,    60, 0.96, 0.96, None),
    ("RedisInsert",  150,  190,   1500,    80, 0.18, 0.14, "kv.set"),
    ("RedisUpdate",  160,  200,   2500,    60, 0.18, 0.14, "kv.update"),
    ("SQLSelect",    260,  210,    120,  4000, 0.22, 0.18, "sql.select"),
    ("SQLUpdate",    280,  230,    130,    60, 0.22, 0.18, "sql.update"),
    ("COSGet",      1900,  700,    120,   200, 0.62, 0.30, "cos.get"),
    ("COSPut",       750,  400,  24700,   150, 0.55, 0.28, "cos.put"),
    ("MQProduce",     90,  120,    400,    80, 0.20, 0.15, "mq.produce"),
    ("MQConsume",    100,  135,    150,   300, 0.20, 0.15, "mq.consume"),
]

BOOT_ARM, BOOT_X86 = 1.51, 0.96
BOOT_CPU_X86 = 0.758
TARGET_CYCLE_ARM = 10 * 60 / 200.6     # 2.9910 s
TARGET_CYCLE_X86 = 6 * 60 / 211.7      # 1.7006 s
TARGET_CPU_X86_CYCLE = 1.287           # from the 112.9 W / 6 VM point
TARGET_J_PER_FUNC_ARM = 5.7
P_BOOT, P_CPU, P_IO = 1.90, 2.20, 1.20  # SBC power states, W

# Overhead model (matches repro.net calibration).
SESSION_ARM, SESSION_X86 = 28e-3, 16e-3
GOODPUT_ARM, GOODPUT_X86 = 90e6, 940e6
LAT_ARM = 2 * (120e-6 + 60e-6 + 20e-6)    # worker<->orchestrator RTT
LAT_X86 = 2 * (280e-6 + 60e-6 + 20e-6)


def overhead(in_b, out_b, session, goodput, lat):
    return session + (in_b + out_b) * 8 / goodput + lat


def main():
    ovh_arm = [
        overhead(f[3], f[4], SESSION_ARM, GOODPUT_ARM, LAT_ARM)
        for f in FUNCTIONS
    ]
    ovh_x86 = [
        overhead(f[3], f[4], SESSION_X86, GOODPUT_X86, LAT_X86)
        for f in FUNCTIONS
    ]
    n = len(FUNCTIONS)
    mean_ovh_arm = sum(ovh_arm) / n
    mean_ovh_x86 = sum(ovh_x86) / n

    target_work_arm = (TARGET_CYCLE_ARM - BOOT_ARM) - mean_ovh_arm
    target_work_x86 = (TARGET_CYCLE_X86 - BOOT_X86) - mean_ovh_x86
    draft_arm = [f[1] / 1000 for f in FUNCTIONS]
    draft_x86 = [f[2] / 1000 for f in FUNCTIONS]
    scale_arm = target_work_arm / (sum(draft_arm) / n)
    scale_x86 = target_work_x86 / (sum(draft_x86) / n)
    work_arm = [w * scale_arm for w in draft_arm]
    work_x86 = [w * scale_x86 for w in draft_x86]

    # Solve x86 CPU fractions: scale network-bound fractions so the mean
    # CPU per cycle hits the 6-VM power calibration point.
    target_work_cpu_x86 = TARGET_CPU_X86_CYCLE - BOOT_CPU_X86
    cpu_idx = [i for i, f in enumerate(FUNCTIONS) if f[7] is None]
    net_idx = [i for i, f in enumerate(FUNCTIONS) if f[7] is not None]
    fixed = sum(work_x86[i] * FUNCTIONS[i][6] for i in cpu_idx)
    variable = sum(work_x86[i] * FUNCTIONS[i][6] for i in net_idx)
    k_x86 = (n * target_work_cpu_x86 - fixed) / variable
    frac_x86 = [
        FUNCTIONS[i][6] * (k_x86 if i in net_idx else 1.0) for i in range(n)
    ]

    # Solve ARM CPU fractions from the 5.7 J/function energy target.
    mean_work_arm = sum(work_arm) / n
    # E = boot*Pboot + ovh*Pio + cpu*Pcpu + (work-cpu)*Pio = 5.7
    target_cpu_arm = (
        TARGET_J_PER_FUNC_ARM
        - BOOT_ARM * P_BOOT
        - mean_ovh_arm * P_IO
        - mean_work_arm * P_IO
    ) / (P_CPU - P_IO)
    fixed = sum(work_arm[i] * FUNCTIONS[i][5] for i in cpu_idx)
    variable = sum(work_arm[i] * FUNCTIONS[i][5] for i in net_idx)
    k_arm = (n * target_cpu_arm - fixed) / variable
    frac_arm = [
        FUNCTIONS[i][5] * (k_arm if i in net_idx else 1.0) for i in range(n)
    ]

    print(f"# scale_arm={scale_arm:.4f} scale_x86={scale_x86:.4f} "
          f"k_x86={k_x86:.4f} k_arm={k_arm:.4f}")
    print(f"# mean ovh arm={mean_ovh_arm*1000:.2f}ms x86={mean_ovh_x86*1000:.2f}ms")
    print(f"# mean cycle arm={BOOT_ARM + mean_work_arm + mean_ovh_arm:.4f} "
          f"(target {TARGET_CYCLE_ARM:.4f})")
    print(f"# mean cycle x86={BOOT_X86 + sum(work_x86)/n + mean_ovh_x86:.4f} "
          f"(target {TARGET_CYCLE_X86:.4f})")
    mean_cpu_cycle = BOOT_CPU_X86 + sum(
        w * f for w, f in zip(work_x86, frac_x86)
    ) / n
    print(f"# mean x86 cpu/cycle={mean_cpu_cycle:.4f} (target {TARGET_CPU_X86_CYCLE})")
    energy = (
        BOOT_ARM * P_BOOT
        + mean_ovh_arm * P_IO
        + sum(w * f for w, f in zip(work_arm, frac_arm)) / n * P_CPU
        + sum(w * (1 - f) for w, f in zip(work_arm, frac_arm)) / n * P_IO
    )
    print(f"# ARM J/function={energy:.4f} (target {TARGET_J_PER_FUNC_ARM})")

    faster = slower_half = 0
    print()
    for i, f in enumerate(FUNCTIONS):
        total_arm = work_arm[i] + ovh_arm[i]
        total_x86 = work_x86[i] + ovh_x86[i]
        ratio = total_arm / total_x86
        faster += ratio < 1
        slower_half += ratio > 2
        svc = f"\"{f[7]}\"" if f[7] else "None"
        print(
            f'    "{f[0]}": FunctionProfile(\n'
            f'        name="{f[0]}",\n'
            f"        work_arm_s={work_arm[i]:.6f},\n"
            f"        work_x86_s={work_x86[i]:.6f},\n"
            f"        cpu_fraction_arm={min(1.0, frac_arm[i]):.4f},\n"
            f"        cpu_fraction_x86={min(1.0, frac_x86[i]):.4f},\n"
            f"        input_bytes={f[3]},\n"
            f"        output_bytes={f[4]},\n"
            f"        service_op={svc},\n"
            f"    ),  # ratio {ratio:.2f}"
        )
    print(f"\n# faster on MicroFaaS: {faster} (want 4); "
          f"slower than half: {slower_half} (want 4)")


if __name__ == "__main__":
    main()
