"""Compare a pytest-benchmark JSON run against a committed baseline.

The repo pins its performance story with committed baselines
(``BENCH_kernel.json``, ``BENCH_build.json``, ``BENCH_scale.json``) and
this tool turns a fresh ``--benchmark-json`` run into a regression
verdict: each benchmark's mean is matched to the baseline by name and
must stay within a tolerance band.

Benchmarks are matched on their fully-qualified name.  Benchmarks
present on only one side are reported but never fail the run (suites
grow; baselines are regenerated deliberately).  Baselines may also
carry a top-level ``extra_runs`` object (e.g. the 10^8-invocation
megatrace wall-clock, measured outside pytest-benchmark); those are
printed for context and never compared — a CI runner's wall-clock is
not the baseline machine's.

Run::

    python tools/bench_compare.py BENCH_build.json fresh.json
    python tools/bench_compare.py BENCH_build.json fresh.json --tolerance 0.5
    python tools/bench_compare.py BENCH_build.json fresh.json --warn-only

Exits 0 when every matched benchmark is inside the band (or with
``--warn-only``, always); 1 when any regression exceeds it.  The wide
default band (+100%) reflects that wall-clock on shared CI runners
swings hard; the trajectory matters, not the third decimal.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict:
    """Map fullname -> mean seconds from a pytest-benchmark JSON file."""
    with open(path) as handle:
        payload = json.load(handle)
    means = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats", {})
        if name and "mean" in stats:
            means[name] = stats["mean"]
    return means


def load_extra_runs(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle).get("extra_runs", {})


def compare(
    baseline: dict, current: dict, tolerance: float
) -> "tuple[list, list, list]":
    """Split matched benchmarks into (ok, regressions, unmatched).

    A regression is ``current > baseline * (1 + tolerance)``.  Getting
    faster is never a failure — it is the expected direction.
    """
    ok, regressions, unmatched = [], [], []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline or name not in current:
            unmatched.append((name, "baseline" if name in current else "current"))
            continue
        base, now = baseline[name], current[name]
        ratio = now / base if base > 0 else float("inf")
        row = (name, base, now, ratio)
        if now > base * (1.0 + tolerance):
            regressions.append(row)
        else:
            ok.append(row)
    return ok, regressions, unmatched


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare pytest-benchmark JSON against a baseline"
    )
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("current", help="fresh --benchmark-json output")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.0,
        help="allowed slowdown as a fraction of the baseline mean "
        "(default 1.0 = may take up to 2x the baseline)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but always exit 0 (CI trend mode)",
    )
    args = parser.parse_args(argv)

    ok, regressions, unmatched = compare(
        load_benchmarks(args.baseline),
        load_benchmarks(args.current),
        args.tolerance,
    )

    for name, base, now, ratio in ok:
        print(f"  ok        {name}: {base:.4f}s -> {now:.4f}s ({ratio:.2f}x)")
    for name, side in unmatched:
        print(f"  unmatched {name} (missing from {side})")
    for name, base, now, ratio in regressions:
        print(
            f"  REGRESSED {name}: {base:.4f}s -> {now:.4f}s "
            f"({ratio:.2f}x, band is {1.0 + args.tolerance:.2f}x)"
        )

    extra = load_extra_runs(args.baseline)
    if extra:
        print("  baseline extra runs (informational):")
        for name, info in sorted(extra.items()):
            print(f"    {name}: {json.dumps(info, sort_keys=True)}")

    matched = len(ok) + len(regressions)
    verdict = "within band" if not regressions else "REGRESSIONS FOUND"
    print(
        f"{verdict}: {len(ok)}/{matched} matched benchmarks inside "
        f"{1.0 + args.tolerance:.2f}x band"
    )
    if regressions and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
