"""Schema-check an exported Chrome trace-event JSON file.

Thin CLI over :func:`repro.obs.export.validate_chrome_trace_file` — the
check the CI trace-smoke job runs on every emitted trace: required
fields on each event, non-negative and monotonically non-decreasing
timestamps, and every child span contained in its parent's interval.

Run:  python tools/validate_trace.py artifacts/trace.json
Exits 0 on a clean file, 1 with one problem per line otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate a Chrome trace-event JSON export"
    )
    parser.add_argument("path", help="trace file written by --trace")
    parser.add_argument(
        "--summary",
        action="store_true",
        help="also print event/trace counts on success",
    )
    args = parser.parse_args(argv)

    try:
        from repro.obs.export import validate_chrome_trace_file
    except ModuleNotFoundError:  # run from a checkout without PYTHONPATH
        sys.path.insert(0, _SRC)
        from repro.obs.export import validate_chrome_trace_file

    problems = validate_chrome_trace_file(args.path)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args.path}: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    if args.summary:
        with open(args.path) as handle:
            events = json.load(handle)["traceEvents"]
        spans = [e for e in events if e.get("ph") != "M"]
        traces = {e["args"]["trace_id"] for e in spans}
        print(
            f"{args.path}: OK — {len(spans)} span events "
            f"across {len(traces)} traces"
        )
    else:
        print(f"{args.path}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
