"""Setup shim.

All project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package (pip falls back to the legacy ``setup.py develop`` path when no
``[build-system]`` table is present).
"""

from setuptools import setup

setup()
